//! The server conformance suite: `comptest serve` must be a transparent
//! multiplexer, never a different engine.
//!
//! Each test boots a real daemon on a loopback socket and drives it
//! through the wire [`Client`], proving the service contract end to end:
//!
//! * **byte-identity** — a served verdict's report is the exact
//!   `CampaignResult` rendering a local `SerialExecutor` produces for
//!   the same matrix, per granularity × cache off/cold/warm, and on the
//!   shared async executor;
//! * **fairness** — a burst of campaigns multiplexed onto one shared
//!   single-worker pool makes progress on *every* campaign (lane
//!   round-robin, no starvation): when the first verdict lands, every
//!   other campaign has already executed work;
//! * **disconnect survival** — dropping a watching connection mid-stream
//!   neither kills nor stalls the campaign; any later connection fetches
//!   the verdict by id;
//! * **cancel over the wire** — a queued campaign cancels without ever
//!   launching (`cancelled`, empty report); a running campaign drains
//!   cooperatively into a `done` verdict with a nonzero cancelled-job
//!   count that stays fetchable.

use std::net::{SocketAddr, TcpListener};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use comptest::prelude::*;
use comptest::server::{CampaignSpec, Client, ExecutorChoice, Fetched, Frame, ServeConfig, Server};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Minimal scoped temp directory (no tempfile crate in the container).
struct TempDir {
    path: std::path::PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "comptest-server-conformance-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("temp dir");
        Self { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A daemon on a loopback socket, drained on drop.
struct TestServer {
    server: Server,
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start(cfg: ServeConfig) -> Self {
        let server = Server::new(cfg).expect("server builds");
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("local addr");
        let run = server.clone();
        let thread = std::thread::spawn(move || run.run(listener).expect("serve loop"));
        Self {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.server.begin_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn stand_paths() -> Vec<String> {
    ["stand_a.stand", "stand_b.stand"]
        .iter()
        .map(|name| comptest::asset(name).display().to_string())
        .collect()
}

/// Writes `n` clones of the paper's stand A with distinct names into
/// `dir`, returning their paths. Widening the stand axis is how the
/// cancellation/fairness tests get a deterministically *long* campaign
/// (hundreds of jobs on one worker) out of the fixed bundled suites.
fn cloned_stand_paths(dir: &TempDir, n: usize) -> Vec<String> {
    let template =
        std::fs::read_to_string(comptest::asset("stand_a.stand")).expect("stand template");
    (0..n)
        .map(|i| {
            let path = dir.path.join(format!("stand_{i:02}.stand"));
            let body = template.replace("name = HIL-A", &format!("name = HIL-{i:02}"));
            std::fs::write(&path, body).expect("write cloned stand");
            path.display().to_string()
        })
        .collect()
}

/// The local reference: the same matrix run directly on the serial
/// executor — the byte-identity anchor every served verdict must match.
fn reference(
    granularity: Granularity,
    paths: &[String],
) -> (String, (usize, usize, usize, usize), bool) {
    let suites = comptest::load_bundled_suites().expect("bundled suites");
    let entries = comptest::bundled_entries(&suites);
    let stands: Vec<TestStand> = paths
        .iter()
        .map(|p| TestStand::load(p).expect("stand loads"))
        .collect();
    let refs: Vec<&TestStand> = stands.iter().collect();
    let outcome = Campaign::new(&entries, &refs)
        .granularity(granularity)
        .launch(&SerialExecutor)
        .expect("reference launch")
        .join()
        .expect("reference join");
    (
        outcome.result.to_string(),
        outcome.result.totals(),
        outcome.result.all_green(),
    )
}

fn spec_for(paths: &[String], granularity: Granularity, cache: bool) -> CampaignSpec {
    CampaignSpec {
        stands: paths.to_vec(),
        granularity,
        cache,
        ..CampaignSpec::default()
    }
}

fn spec(granularity: Granularity, cache: bool) -> CampaignSpec {
    spec_for(&stand_paths(), granularity, cache)
}

// ---------------------------------------------------------------------------
// Byte-identity
// ---------------------------------------------------------------------------

#[test]
fn served_verdicts_are_byte_identical_to_local_execution() {
    let scratch = TempDir::new("identity");
    let mut cfg = ServeConfig::new(comptest::assets_dir());
    cfg.workers = 2;
    cfg.max_active = 2;
    cfg.cache_dir = Some(scratch.path.join("cache"));
    let ts = TestServer::start(cfg);

    for granularity in [Granularity::Cell, Granularity::Test] {
        let (want_report, want_totals, want_green) = reference(granularity, &stand_paths());
        // cache off, cold cache, warm cache — every mode must merge the
        // exact bytes the local serial reference produces.
        for (label, cache) in [("off", false), ("cold", true), ("warm", true)] {
            let mut client = ts.client();
            let (_, verdict) = client
                .submit_and_watch(&spec(granularity, cache), |_| {})
                .expect("served campaign");
            assert_eq!(verdict.state, "done", "{granularity:?}/{label}");
            assert_eq!(verdict.report, want_report, "{granularity:?}/{label}");
            let got_totals = (
                verdict.passed as usize,
                verdict.failed as usize,
                verdict.errored as usize,
                verdict.not_runnable as usize,
            );
            assert_eq!(got_totals, want_totals, "{granularity:?}/{label}");
            assert_eq!(verdict.all_green, want_green, "{granularity:?}/{label}");
            assert_eq!(verdict.cancelled, 0, "{granularity:?}/{label}");
        }
        // The shared async executor serves the same bytes too.
        let mut async_spec = spec(granularity, false);
        async_spec.executor = ExecutorChoice::Async;
        let mut client = ts.client();
        let (_, verdict) = client
            .submit_and_watch(&async_spec, |_| {})
            .expect("async served campaign");
        assert_eq!(verdict.report, want_report, "{granularity:?}/async");
    }
}

// ---------------------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------------------

#[test]
fn burst_of_campaigns_progresses_on_every_campaign() {
    // One shared worker, four concurrently active campaigns: only lane
    // round-robin can interleave them. When the first verdict lands,
    // every other campaign must already have executed jobs — under a
    // starving FIFO the later submissions would still be at zero.
    let scratch = TempDir::new("fairness");
    let paths = cloned_stand_paths(&scratch, 6);
    let mut cfg = ServeConfig::new(comptest::assets_dir());
    cfg.workers = 1;
    cfg.max_active = 4;
    let ts = TestServer::start(cfg);

    let mut submitter = ts.client();
    let ids: Vec<_> = (0..4)
        .map(|_| {
            submitter
                .submit(&spec_for(&paths, Granularity::Cell, false))
                .expect("submit")
        })
        .collect();

    // Wait for the first campaign (any of them) to finish.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    for &id in &ids {
        let rx = ts.server.subscribe(id).expect("subscribe");
        let done_tx = done_tx.clone();
        std::thread::spawn(move || {
            for msg in rx {
                if let comptest::server::HubMsg::Done(_) = msg {
                    let _ = done_tx.send(id);
                }
            }
        });
    }
    let first_done = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("some campaign finishes");

    let mut probe = ts.client();
    for &id in &ids {
        if id == first_done {
            continue;
        }
        let metrics = probe.metrics(id).expect("metrics frame");
        let executed = metrics
            .field("counters")
            .and_then(|c| c.field("jobs_executed"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        assert!(
            executed >= 1,
            "campaign {id} starved: 0 jobs executed when {first_done} already finished"
        );
    }

    // The burst still drains to four complete, correct verdicts.
    let (want_report, ..) = reference(Granularity::Cell, &paths);
    for &id in &ids {
        let verdict = wait_ready(&mut probe, id);
        assert_eq!(verdict.state, "done");
        assert_eq!(verdict.report, want_report);
    }
}

// ---------------------------------------------------------------------------
// Disconnect survival
// ---------------------------------------------------------------------------

fn wait_ready(
    client: &mut Client,
    id: comptest::server::CampaignId,
) -> comptest::server::ResultFrame {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match client.fetch(id).expect("fetch") {
            Fetched::Ready(verdict) => return verdict,
            Fetched::Pending(_) => {
                assert!(Instant::now() < deadline, "campaign {id} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn campaign_survives_client_disconnect_and_is_fetchable_by_id() {
    let mut cfg = ServeConfig::new(comptest::assets_dir());
    cfg.workers = 1;
    let ts = TestServer::start(cfg);

    // Client A submits with streaming, reads exactly one event, then
    // vanishes mid-stream.
    let id = {
        let mut a = ts.client();
        let mut watch_spec = spec(Granularity::Test, false);
        watch_spec.watch = true;
        a.send(&Frame::Submit(watch_spec)).expect("send submit");
        let Frame::Submitted { id } = a.recv().expect("submitted") else {
            panic!("expected submitted frame");
        };
        assert!(
            matches!(a.recv().expect("first event"), Frame::Event { .. }),
            "expected a streamed event before disconnecting"
        );
        id
        // `a` drops here: connection gone, campaign still running.
    };

    // Client B (a different connection) fetches the verdict by id.
    let mut b = ts.client();
    let verdict = wait_ready(&mut b, id);
    let (want_report, ..) = reference(Granularity::Test, &stand_paths());
    assert_eq!(verdict.state, "done");
    assert_eq!(verdict.report, want_report);

    // And a late watcher still gets the full replayed stream + result.
    let mut late = ts.client();
    let mut events = 0usize;
    let replayed = late.watch(id, |_| events += 1).expect("late watch");
    assert_eq!(replayed.report, want_report);
    assert!(
        events > 0,
        "late watcher should receive the replayed events"
    );
}

// ---------------------------------------------------------------------------
// Cancel over the wire
// ---------------------------------------------------------------------------

#[test]
fn wire_cancel_hits_queued_and_running_campaigns() {
    // max_active = 1 serialises campaigns, so the second submission is
    // deterministically still queued when the cancel arrives.
    let scratch = TempDir::new("cancel");
    // A wide stand axis makes the running campaign long (hundreds of
    // jobs on one worker), so the mid-run cancel lands with plenty of
    // jobs still pending.
    let paths = cloned_stand_paths(&scratch, 24);
    let mut cfg = ServeConfig::new(comptest::assets_dir());
    cfg.workers = 1;
    cfg.max_active = 1;
    let ts = TestServer::start(cfg);

    let mut client = ts.client();
    let running = client
        .submit(&spec_for(&paths, Granularity::Test, false))
        .expect("submit running");
    let queued = client
        .submit(&spec_for(&paths, Granularity::Test, false))
        .expect("submit queued");

    // Queued cancel: resolves terminal without ever launching.
    client.cancel(queued).expect("cancel queued");
    let Fetched::Ready(verdict) = client.fetch(queued).expect("fetch cancelled") else {
        panic!("cancelled campaign must be terminal immediately");
    };
    assert_eq!(verdict.state, "cancelled");
    assert!(verdict.report.is_empty(), "never launched, no report");

    // Running cancel: wait until the campaign demonstrably streams, then
    // trip it; the drained verdict keeps the deterministic finished
    // prefix and accounts for the skipped jobs.
    let mut watcher = ts.client();
    watcher.send(&Frame::Watch { id: running }).expect("watch");
    assert!(
        matches!(watcher.recv().expect("first event"), Frame::Event { .. }),
        "campaign should be streaming before the cancel"
    );
    client.cancel(running).expect("cancel running");
    let verdict = wait_ready(&mut client, running);
    assert_eq!(
        verdict.state, "done",
        "running cancel still joins a verdict"
    );
    assert!(
        verdict.cancelled > 0,
        "a mid-run cancel must skip at least one job"
    );

    // Both terminal states are visible in the campaign table.
    let rows = client.status().expect("status");
    let state_of = |id| {
        rows.iter()
            .find(|row| row.id == id)
            .map(|row| row.state.clone())
    };
    assert_eq!(state_of(running).as_deref(), Some("done"));
    assert_eq!(state_of(queued).as_deref(), Some("cancelled"));
}
