//! Experiment E7 (test-quality half): fault-injection campaigns over the
//! ECU library. The paper's motivation — sheets preserve knowledge about
//! past bugs — is only real if the sheets actually detect injected bugs.

use comptest::core::faultcamp::run_fault_campaign;
use comptest::dut::ecus::{central_lock, interior_light, power_window, wiper};
use comptest::dut::{Behavior, Device, ElectricalConfig};
use comptest::prelude::*;
use comptest_model::SimTime;

fn build_device(ecu: &str, cfg: ElectricalConfig, fault: Option<&FaultKind>) -> Device {
    let behavior: Box<dyn Behavior + Send> = match ecu {
        "interior_light" => Box::new(interior_light::InteriorLight::new()),
        "wiper" => Box::new(wiper::Wiper::new()),
        "power_window" => Box::new(power_window::PowerWindow::new()),
        "central_lock" => Box::new(central_lock::CentralLock::new()),
        other => panic!("unknown ecu {other}"),
    };
    let behavior: Box<dyn Behavior + Send> = match fault {
        Some(f) if !f.is_device_level() => Box::new(FaultyBehavior::new(behavior, vec![f.clone()])),
        _ => behavior,
    };
    let mut device = match ecu {
        "interior_light" => interior_light::device_with(cfg, behavior),
        "wiper" => wiper::device_with(cfg, behavior),
        "power_window" => power_window::device_with(cfg, behavior),
        "central_lock" => central_lock::device_with(cfg, behavior),
        other => panic!("unknown ecu {other}"),
    };
    if let Some(f) = fault {
        if f.is_device_level() {
            assert!(f.apply_to_device(&mut device));
        }
    }
    device
}

fn cfg_for(stand: &TestStand) -> ElectricalConfig {
    let mut cfg = ElectricalConfig::default();
    if let Some(u) = stand.env().get("ubatt") {
        cfg.ubatt = u;
    }
    cfg
}

#[test]
fn interior_light_faults_are_fully_covered() {
    let wb = Workbook::load(comptest::asset("interior_light.cts")).unwrap();
    let stand = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let cfg = cfg_for(&stand);
    let faults = vec![
        FaultKind::StuckOutput {
            port: "lamp",
            value: comptest::dut::PortValue::Bool(true),
        },
        FaultKind::StuckOutput {
            port: "lamp",
            value: comptest::dut::PortValue::Bool(false),
        },
        FaultKind::InvertedOutput { port: "lamp" },
        FaultKind::IgnoredInput { port: "door_fl" },
        FaultKind::IgnoredInput { port: "night" },
        // The paper's 280 s / 25 s rows exist precisely to catch these two:
        FaultKind::TimerScale { factor: 1.5 },
        FaultKind::TimerScale { factor: 0.5 },
        FaultKind::DropCanFrame {
            frame: interior_light::NIGHT_FRAME,
        },
        FaultKind::OutputDelay {
            port: "lamp",
            delay: SimTime::from_secs(1),
        },
    ];
    let result = run_fault_campaign(
        &wb.suite,
        &stand,
        |fault| build_device("interior_light", cfg, fault),
        &faults,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(
        result.coverage(),
        1.0,
        "the paper suite catches every fault:\n{result}"
    );
    // The timer faults must be caught by the long test specifically.
    let timer_fast = result
        .runs
        .iter()
        .find(|r| r.fault == "timer_x1.5")
        .unwrap();
    assert!(timer_fast
        .detected_by
        .contains(&"interior_illumination".to_owned()));
}

#[test]
fn fault_coverage_across_the_ecu_library() {
    let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let cfg = cfg_for(&stand);

    let cases: Vec<(&str, Vec<FaultKind>)> = vec![
        (
            "wiper",
            vec![
                FaultKind::StuckOutput {
                    port: "motor",
                    value: comptest::dut::PortValue::Bool(true),
                },
                FaultKind::InvertedOutput { port: "motor" },
                FaultKind::IgnoredInput { port: "stalk" },
                FaultKind::IgnoredInput { port: "wash" },
                FaultKind::TimerScale { factor: 3.0 },
            ],
        ),
        (
            "power_window",
            vec![
                FaultKind::StuckOutput {
                    port: "motor_up",
                    value: comptest::dut::PortValue::Bool(false),
                },
                FaultKind::InvertedOutput { port: "motor_down" },
                FaultKind::IgnoredInput { port: "pinch" },
                FaultKind::IgnoredInput { port: "btn_down" },
            ],
        ),
        (
            "central_lock",
            vec![
                FaultKind::StuckOutput {
                    port: "actuator",
                    value: comptest::dut::PortValue::Bool(true),
                },
                FaultKind::IgnoredInput { port: "crash" },
                FaultKind::IgnoredInput { port: "unlock_cmd" },
                FaultKind::DropCanFrame {
                    frame: central_lock::CMD_FRAME,
                },
                FaultKind::TimerScale { factor: 0.25 },
            ],
        ),
    ];

    for (ecu, faults) in cases {
        let wb = Workbook::load(comptest::asset(&format!("{ecu}.cts"))).unwrap();
        let result = run_fault_campaign(
            &wb.suite,
            &stand,
            |fault| build_device(ecu, cfg, fault),
            &faults,
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{ecu}: {e}"));
        assert!(
            result.coverage() >= 0.8,
            "{ecu} suite should catch most faults:\n{result}"
        );
    }
}

#[test]
fn continuous_sampling_strictly_increases_detection() {
    // Ablation: a short output delay escapes end-of-step sampling on the
    // quick suites but is caught by continuous monitoring. Continuous
    // sampling is only sound for tests whose expected outputs are stable
    // for the whole step, so `auto_relock` (which legitimately transitions
    // mid-step at t = 60.5 s) is excluded — exactly the semantic trade-off
    // DESIGN.md §7 documents.
    let mut wb = Workbook::load(comptest::asset("central_lock.cts")).unwrap();
    wb.suite.tests.retain(|t| t.name != "auto_relock");
    let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let cfg = cfg_for(&stand);
    let fault = FaultKind::OutputDelay {
        port: "actuator",
        delay: SimTime::from_millis(300),
    };

    let end_of_step = run_fault_campaign(
        &wb.suite,
        &stand,
        |f| build_device("central_lock", cfg, f),
        std::slice::from_ref(&fault),
        &ExecOptions::default(),
    )
    .unwrap();
    assert!(
        !end_of_step.runs[0].detected,
        "0.3 s delay hides from 0.5 s steps sampled at the end:\n{end_of_step}"
    );

    let continuous = run_fault_campaign(
        &wb.suite,
        &stand,
        |f| build_device("central_lock", cfg, f),
        std::slice::from_ref(&fault),
        &ExecOptions {
            sample: SampleMode::Continuous {
                interval: SimTime::from_millis(100),
            },
            ..ExecOptions::default()
        },
    );
    // Continuous sampling may reject the *reference* run if a legitimate
    // transition happens mid-step; for this suite it does not, so the fault
    // must be caught.
    let continuous = continuous.expect("reference run passes under continuous sampling");
    assert!(continuous.runs[0].detected, "{continuous}");
}
