//! `comptest serve` drain conformance: a shutdown signal must not race
//! in-flight connection frames.
//!
//! The regression this pins: `Server::run` used to stop the accept loop
//! and drain the moment SIGTERM latched, so a `submit` that was already
//! dispatched on a connection thread could lose the race — the process
//! (whose `main` exits when `run` returns) tore down before the
//! `submitted` response flushed, and the client never learned its
//! campaign's id even though the campaign was admitted. `run` now waits
//! (bounded) for every in-flight frame to finish before draining.
//!
//! This lives in its own integration-test binary on purpose: the signal
//! latch ([`signals::trigger`]) is a process-global one-way flag with no
//! reset, so the race can be staged exactly once per process.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use comptest::server::{signals, CampaignSpec, Client, Fetched, Frame, ServeConfig, Server};

#[test]
fn submit_racing_a_sigterm_still_gets_its_response_and_a_verdict() {
    let server = Server::new(ServeConfig::new(comptest::assets_dir())).expect("server builds");
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr");
    let run_server = server.clone();
    let run_thread = std::thread::spawn(move || run_server.run(listener));

    let mut client = Client::connect(addr).expect("connect");
    let spec = CampaignSpec {
        stands: vec![comptest::asset("stand_a.stand").display().to_string()],
        ..CampaignSpec::default()
    };
    // Stage the race: the submit frame is on the wire (or mid-dispatch on
    // its connection thread) when the shutdown signal latches.
    client.send(&Frame::Submit(spec)).expect("send submit");
    signals::trigger();

    // The drained server must not leave the client hanging: within the
    // admission grace it either answers `submitted` (frame dispatched
    // before the drain) or a clean `error` refusal — never a dead socket.
    let id = match client.recv().expect("submit response survives the drain") {
        Frame::Submitted { id } => Some(id),
        Frame::Error { .. } => None,
        other => panic!("unexpected submit response: {other:?}"),
    };

    // `run` returns once admissions and campaigns drain — and it must
    // actually return (an unbounded admission wait would hang here).
    let deadline = Instant::now() + Duration::from_secs(30);
    while !run_thread.is_finished() {
        assert!(Instant::now() < deadline, "run() did not drain in time");
        std::thread::sleep(Duration::from_millis(20));
    }
    run_thread
        .join()
        .expect("run thread")
        .expect("serve loop exits cleanly");

    // An admitted campaign must have drained to a stored terminal
    // verdict: accepted-then-vanished is exactly the lost-work mode the
    // admission gate exists to prevent. The connection thread outlives
    // `run`, so the same socket can fetch it.
    if let Some(id) = id {
        match client.fetch(id).expect("fetch after drain") {
            Fetched::Ready(verdict) => {
                assert!(
                    verdict.state == "done" || verdict.state == "cancelled",
                    "admitted campaign drained to a non-terminal state {:?}",
                    verdict.state
                );
            }
            Fetched::Pending(state) => {
                panic!("campaign still {state:?} after a full drain")
            }
        }
        // And the verdict is in the store, not just on the wire.
        assert!(
            matches!(server.fetch(id), Frame::Result(_)),
            "store lost the admitted campaign's verdict"
        );
    }
}
