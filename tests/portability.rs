//! Experiments E3/T3 and E4/T4: resource descriptions, the connection
//! matrix, and the paper's central portability claim — including the error
//! message when a stand cannot serve a script.

use comptest::core::portability::check_portability;
use comptest::prelude::*;

#[test]
fn portability_matrix_over_three_stands() {
    let wb = Workbook::load(comptest::asset("interior_light.cts")).unwrap();
    let a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let mini = TestStand::load(comptest::asset("stand_minimal.stand")).unwrap();

    let report = check_portability(&wb.suite, &[&a, &b, &mini]).unwrap();
    assert_eq!(report.rows.len(), 9, "3 tests × 3 stands");
    // Full stands run everything.
    assert!(report.for_stand("HIL-A").all(|r| r.ok));
    assert!(report.for_stand("SUPPLIER-B").all(|r| r.ok));
    // The minimal stand (no DVM, no CAN) runs nothing.
    assert!(report.for_stand("MINI").all(|r| !r.ok));
    assert!((report.portability() - 2.0 / 3.0).abs() < 1e-9);

    // The error message names the method and signal, like the paper's
    // interpreter would.
    let failing = report.for_stand("MINI").next().unwrap();
    let err = failing.error.as_ref().unwrap();
    assert!(
        err.contains("no resource for") || err.contains("Statement"),
        "unhelpful error: {err}"
    );
}

#[test]
fn scripts_are_bit_identical_across_stands() {
    // Portability claim at the artifact level: the XML handed to stand A is
    // byte-for-byte the XML handed to stand B — nothing stand-specific
    // leaks into the test definition.
    let wb = Workbook::load(comptest::asset("interior_light.cts")).unwrap();
    let script = generate(&wb.suite, "interior_illumination").unwrap();
    let xml_for_a = script.to_xml();
    let xml_for_b = script.to_xml();
    assert_eq!(xml_for_a, xml_for_b);
    // And both stands can plan that identical artifact.
    let a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let reparsed = TestScript::parse_xml(&xml_for_a).unwrap();
    assert!(plan(&reparsed, &a).is_ok());
    assert!(plan(&reparsed, &b).is_ok());
}

#[test]
fn stand_b_resolves_bounds_with_its_own_supply() {
    // The same script measures against 13.8 V on stand B: the planned
    // bounds must scale with the stand's ubatt, not the authoring stand's.
    use comptest::stand::Action;
    use comptest_model::StatusBound;
    let wb = Workbook::load(comptest::asset("interior_light.cts")).unwrap();
    let script = generate(&wb.suite, "interior_illumination").unwrap();
    let b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let plan_b = plan(&script, &b).unwrap();
    let mut saw_ho = false;
    for step in &plan_b.steps {
        for action in &step.actions {
            if let Action::Check(check) = action {
                if let StatusBound::Numeric { hi, .. } = check.bound {
                    if (hi - 1.1 * 13.8).abs() < 1e-9 {
                        saw_ho = true;
                    }
                }
            }
        }
    }
    assert!(
        saw_ho,
        "Ho's u_max must evaluate to 1.1 × 13.8 V on stand B"
    );
}

#[test]
fn greedy_allocation_is_strictly_weaker() {
    // Ablation (DESIGN.md §7): on the paper stand, a workload needing the
    // big decade later fails under greedy allocation but succeeds with
    // rerouting.
    use comptest::stand::{plan_with, AllocOptions};
    use comptest_model::MethodRegistry;

    let xml = r#"<?xml version="1.0"?>
<testscript name="reroute_demo" suite="x" version="1">
  <signals>
    <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
    <signal name="ds_fr" kind="pin:DS_FR" direction="input"/>
  </signals>
  <step nr="0" dt="0.1">
    <signal name="ds_fl"><put_r r="100" r_min="90" r_max="110"/></signal>
  </step>
  <step nr="1" dt="0.1">
    <signal name="ds_fr"><put_r r="500000" r_min="400000" r_max="600000"/></signal>
  </step>
</testscript>"#;
    let script = TestScript::parse_xml(xml).unwrap();
    let a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let registry = MethodRegistry::builtin();

    assert!(
        plan_with(&script, &a, AllocOptions { reroute: true }, &registry).is_ok(),
        "rerouting moves ds_fl onto the small decade"
    );
    let err = plan_with(&script, &a, AllocOptions { reroute: false }, &registry).unwrap_err();
    assert!(err.to_string().contains("no resource"), "{err}");
}
