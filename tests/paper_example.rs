//! End-to-end reproduction of the paper's running example (experiments
//! E1/T1, E2/T2, E5/F1): the interior-illumination workbook, compiled to an
//! XML script, planned on the paper's stand A, executed against the
//! simulated interior-light ECU.

use comptest::prelude::*;
use comptest_model::SimTime;
use comptest_stand::{Action, PARK_RESOURCE};

fn workbook() -> comptest_sheets::ParsedWorkbook {
    Workbook::load(comptest::asset("interior_light.cts")).expect("workbook parses")
}

fn stand_a() -> TestStand {
    TestStand::load(comptest::asset("stand_a.stand")).expect("stand parses")
}

#[test]
fn workbook_is_valid_and_warning_free() {
    let wb = workbook();
    assert!(wb.warnings.is_empty(), "{:?}", wb.warnings);
    let issues = wb.suite.validate(&MethodRegistry::builtin());
    assert!(issues.is_empty(), "{issues:?}");
    assert_eq!(wb.suite.tests.len(), 3);
    let t1 = wb.suite.test("interior_illumination").unwrap();
    assert_eq!(t1.steps.len(), 10, "all ten paper steps");
    assert_eq!(t1.duration(), SimTime::from_secs(309));
}

#[test]
fn paper_test_passes_on_stand_a() {
    let wb = workbook();
    let stand = stand_a();
    let mut dut = comptest::device_for_stand("interior_light", &stand).unwrap();
    let result = run_test(
        &wb.suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .expect("plans on stand A");
    assert!(result.passed(), "{result}\n{}", result.trace);
    // Every row with an INT_ILL cell produced exactly one check.
    assert_eq!(result.check_count(), 10);
    // The long rows land where the paper says: step 7 ends at 283.5 s.
    assert_eq!(result.steps[7].t_end, SimTime::from_millis(283_500));
    assert_eq!(result.steps[8].t_end, SimTime::from_millis(308_500));
}

#[test]
fn whole_suite_passes_on_both_stands() {
    let wb = workbook();
    for stand_file in ["stand_a.stand", "stand_b.stand"] {
        let stand = TestStand::load(comptest::asset(stand_file)).unwrap();
        let result = run_suite(
            &wb.suite,
            &stand,
            || comptest::device_for_stand("interior_light", &stand).unwrap(),
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("suite must plan on {stand_file}: {e}"));
        assert_eq!(
            result.counts(),
            (3, 0, 0),
            "on {stand_file}: {}",
            comptest_report::suite_text(&result)
        );
    }
}

#[test]
fn generated_xml_matches_the_papers_listing() {
    // E6/L1: the signal statement for checking Ho on int_ill must carry the
    // exact expression attributes printed in the paper.
    let wb = workbook();
    let script = generate(&wb.suite, "interior_illumination").unwrap();
    let xml = script.to_xml();
    assert!(
        xml.contains(r#"<signal name="int_ill">"#),
        "missing signal statement:\n{xml}"
    );
    assert!(
        xml.contains(r#"<get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/>"#),
        "missing paper-exact method statement:\n{xml}"
    );
    // And the script round-trips.
    let back = TestScript::parse_xml(&xml).unwrap();
    assert_eq!(back, script);
}

#[test]
fn init_parks_all_doors_and_uses_can_for_ignition() {
    // The signal sheet inits all four doors `Closed` although stand A has
    // only two decades: closed doors are realised by leaving pins open.
    let wb = workbook();
    let script = generate(&wb.suite, "interior_illumination").unwrap();
    let stand = stand_a();
    let plan = plan(&script, &stand).unwrap();
    let parked = plan
        .init
        .iter()
        .filter(|a| matches!(a, Action::Apply { resource, .. } if *resource == PARK_RESOURCE))
        .count();
    assert_eq!(parked, 4, "all four door switches park");
    let can_inits = plan
        .init
        .iter()
        .filter(|a| matches!(a, Action::Apply { resource, .. } if *resource == "Can1"))
        .count();
    assert_eq!(can_inits, 2, "IGN_ST and NIGHT ride the CAN interface");
}

#[test]
fn step_timing_matches_the_timeout_semantics() {
    // Move the door-opening earlier/later and the verdict flips: this pins
    // the 300 s timer to the *rising edge* of "any door open".
    let wb = workbook();
    let stand = stand_a();
    let mut suite = wb.suite.clone();
    // Stretch step 7 from 280 s to 301 s: its check moves to t = 304.5 s,
    // 301.5 s after the step-6 opening at t = 3.0 s -> beyond the 300 s
    // window -> Ho must fail. (At 280 s the elapsed time is 280.5 s and it
    // passes; the margin pins the timer to the rising edge.)
    let t1 = suite
        .tests
        .iter_mut()
        .find(|t| t.name == "interior_illumination")
        .unwrap();
    t1.steps[7].dt = SimTime::from_secs(301);
    let mut dut = comptest::device_for_stand("interior_light", &stand).unwrap();
    let result = run_test(
        &suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(result.verdict(), Verdict::Fail);
    let failures = result.failures();
    assert_eq!(
        failures[0].step, 7,
        "the stretched Ho row is the one that fails"
    );
}

#[test]
fn tampered_timeout_is_caught_by_the_paper_suite() {
    // A DUT with a mis-calibrated 300 s timer fails exactly the rows the
    // paper added to catch it (steps 7/8).
    use comptest::dut::ecus::interior_light::{self, InteriorLight};
    let wb = workbook();
    let stand = stand_a();
    let mut dut = interior_light::device_with(
        comptest::dut::ElectricalConfig::default(),
        Box::new(InteriorLight::with_timeout(SimTime::from_secs(250))),
    );
    let result = run_test(
        &wb.suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(result.verdict(), Verdict::Fail);
    let steps: Vec<u32> = result.failures().iter().map(|c| c.step).collect();
    assert_eq!(steps, vec![7], "250 s timer: lamp already off at 283.5 s");

    let mut dut = interior_light::device_with(
        comptest::dut::ElectricalConfig::default(),
        Box::new(InteriorLight::with_timeout(SimTime::from_secs(400))),
    );
    let result = run_test(
        &wb.suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .unwrap();
    let steps: Vec<u32> = result.failures().iter().map(|c| c.step).collect();
    assert_eq!(steps, vec![8], "400 s timer: lamp still on at 308.5 s");
}
