//! Supply-voltage robustness: the same scripts must judge correctly at any
//! rail the stand declares, because every limit scales with `UBATT` — the
//! exact purpose of the paper's `var (x)` status column.

use comptest::prelude::*;
use comptest_core::exec::ExecOptions;

fn suite() -> TestSuite {
    Workbook::load(comptest::asset("interior_light.cts"))
        .unwrap()
        .suite
}

#[test]
fn suite_passes_across_the_automotive_voltage_range() {
    let suite = suite();
    // 10.8 V (weak battery) … 14.4 V (charging).
    for ubatt in [10.8, 12.0, 13.8, 14.4] {
        let mut stand = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
        stand.env_mut().set("ubatt", ubatt);
        let result = run_suite(
            &suite,
            &stand,
            || comptest::device_for_stand("interior_light", &stand).unwrap(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(
            result.counts(),
            (3, 0, 0),
            "at ubatt = {ubatt}: {}",
            comptest::report::suite_text(&result)
        );
    }
}

#[test]
fn supply_mismatch_is_detected() {
    // A DUT fed from a sagging 9 V rail measured against a stand that
    // believes in 14.4 V: the lamp's 9 V "on" level is below 0.7 × 14.4 V,
    // so the Ho checks correctly fail — the bound scaling is load-bearing.
    let suite = suite();
    let mut stand = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    stand.env_mut().set("ubatt", 14.4);

    let cfg = comptest::dut::ElectricalConfig {
        ubatt: 9.0,
        ..Default::default()
    };
    let mut dut = comptest::dut::ecus::interior_light::device(cfg);
    let result = run_test(
        &suite,
        "interior_illumination",
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(result.verdict(), Verdict::Fail);
    // Every failing check is an Ho expectation (the Lo ones still hold).
    for check in result.failures() {
        match check.bound {
            comptest::model::StatusBound::Numeric { lo, .. } => {
                assert!(lo > 9.0, "only the scaled Ho lower bounds fail: {check}");
            }
            _ => panic!("unexpected bound {check}"),
        }
    }
}

#[test]
fn stop_on_failure_aborts_early() {
    // With a dead lamp, the 309 s test fails at step 4 already; the abort
    // option saves the remaining 306.5 simulated seconds.
    use comptest::dut::ecus::interior_light::{self, InteriorLight};
    use comptest::dut::{FaultKind, FaultyBehavior, PortValue};
    let suite = suite();
    let stand = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let make_dut = || {
        interior_light::device_with(
            Default::default(),
            Box::new(FaultyBehavior::new(
                Box::new(InteriorLight::new()),
                vec![FaultKind::StuckOutput {
                    port: "lamp",
                    value: PortValue::Bool(false),
                }],
            )),
        )
    };

    let full = run_test(
        &suite,
        "interior_illumination",
        &stand,
        &mut make_dut(),
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(full.steps.len(), 10, "default mode runs everything");

    let aborted = run_test(
        &suite,
        "interior_illumination",
        &stand,
        &mut make_dut(),
        &ExecOptions {
            stop_on_failure: true,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    assert_eq!(aborted.verdict(), Verdict::Fail);
    assert_eq!(
        aborted.steps.len(),
        5,
        "stops right after the first Ho failure"
    );
    assert_eq!(aborted.steps.last().unwrap().nr, 4);
}
