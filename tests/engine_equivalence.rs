//! Engine behaviours *around* the executor contract: event-stream
//! coverage, report generation from campaign results, executor reuse, and
//! the deprecated shim entry points that must keep matching the builder
//! API they wrap.
//!
//! The executor contract itself — byte-identity to the serial reference,
//! cancellation prefix-truncation, stop-on-first-fail, empty-matrix
//! rejection, `JobsLost`, and cache hit/warm-run semantics — lives in the
//! shared battery of `tests/executor_conformance.rs`, instantiated for
//! Serial / Pooled / Async × cache off / memory / dir.

use comptest::core::campaign::CampaignEntry;
use comptest::prelude::*;

fn load_suites() -> Vec<TestSuite> {
    comptest::load_bundled_suites().expect("bundled workbooks load")
}

fn entries(suites: &[TestSuite]) -> Vec<CampaignEntry<'_>> {
    comptest::bundled_entries(suites)
}

fn load_stand(name: &str) -> TestStand {
    TestStand::load(comptest::asset(name)).unwrap()
}

#[test]
fn one_executor_is_reusable_across_campaigns() {
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];
    let campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);
    let serial = campaign.run(&SerialExecutor).unwrap();

    // One pooled executor, three campaigns (replay / watch mode): the
    // worker threads are constructed once and reused; every run merges
    // byte-identically.
    let executor = PooledExecutor::new(4);
    for round in 0..3 {
        let result = campaign.run(&executor).unwrap();
        assert_eq!(result, serial, "round {round} diverged");
    }
}

#[test]
fn engine_events_cover_every_cell_exactly_once() {
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];
    let executor = PooledExecutor::new(4);
    let mut handle = Campaign::new(&entries, &stands).launch(&executor).unwrap();
    let stream = handle.events();
    let collector = std::thread::spawn(move || stream.collect::<Vec<EngineEvent>>());
    let outcome = handle.join().unwrap();
    let events = collector.join().unwrap();

    let mut started: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::JobStarted { cell, .. } => Some(*cell),
            _ => None,
        })
        .collect();
    started.sort_unstable();
    assert_eq!(started, (0..5).collect::<Vec<_>>());
    let finished = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::JobFinished { .. }))
        .count();
    assert_eq!(finished, 5);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, EngineEvent::CellCached { .. })),
        "no cache configured, no cached events"
    );
    assert_eq!(outcome.cancelled, 0);
    assert!(outcome.result.all_green(), "{}", outcome.result);
}

#[test]
fn test_granular_events_cover_every_test_exactly_once() {
    let suites = load_suites();
    let total_tests: usize = suites.iter().map(|s| s.tests.len()).sum();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];
    let executor = PooledExecutor::new(4);
    let mut handle = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .launch(&executor)
        .unwrap();
    let stream = handle.events();
    let collector = std::thread::spawn(move || stream.collect::<Vec<EngineEvent>>());
    let outcome = handle.join().unwrap();
    let events = collector.join().unwrap();

    let mut started: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::TestStarted { cell, test, .. } => Some((*cell, *test)),
            _ => None,
        })
        .collect();
    started.sort_unstable();
    started.dedup();
    assert_eq!(started.len(), total_tests, "every (cell, test) starts once");
    let finished = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::TestFinished { .. }))
        .count();
    assert_eq!(finished, total_tests);
    assert!(
        !events.iter().any(|e| matches!(
            e,
            EngineEvent::JobStarted { .. } | EngineEvent::JobFinished { .. }
        )),
        "per-cell events are a cell-granularity concept"
    );
    assert!(outcome.result.all_green(), "{}", outcome.result);
}

#[test]
fn campaign_junit_covers_the_matrix() {
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];
    let result = Campaign::new(&entries, &stands)
        .run(&PooledExecutor::new(4))
        .unwrap();
    let xml = comptest::report::campaign_junit_xml(&result);
    let parsed = comptest::script::xml::parse(&xml).unwrap();
    assert_eq!(parsed.name, "testsuites");
    assert_eq!(parsed.elements_named("testsuite").count(), 10);
    assert!(xml.contains("interior_light@HIL-A"));
    assert!(
        xml.contains("type=\"NotRunnable\""),
        "stand A misses 4 ECUs"
    );
}

/// The deprecated entry points (the only remaining callers in the repo):
/// they are thin shims over the builder API and must keep producing
/// byte-identical results, including the historical serial `run_campaign`.
#[allow(deprecated)]
mod shims {
    use super::*;
    use comptest::core::campaign::run_campaign;
    use comptest::engine::{run_campaign_parallel, run_campaign_with_pool, EngineOptions};

    #[test]
    fn all_three_shims_match_the_builder_api() {
        let suites = load_suites();
        let entries_vec = entries(&suites);
        let stand_a = load_stand("stand_a.stand");
        let stand_b = load_stand("stand_b.stand");
        let stands = [&stand_a, &stand_b];
        let reference = Campaign::new(&entries_vec, &stands)
            .run(&SerialExecutor)
            .unwrap();

        // The historical serial driver anchors the builder API to the seed
        // behaviour byte-for-byte.
        let serial = run_campaign(&entries_vec, &stands, &ExecOptions::default()).unwrap();
        assert_eq!(serial, reference, "serial shim diverged");

        for granularity in [Granularity::Cell, Granularity::Test] {
            let parallel = run_campaign_parallel(
                &entries_vec,
                &stands,
                &EngineOptions::with_workers(4).granularity(granularity),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert_eq!(parallel, reference, "parallel shim at {granularity}");
        }

        let pool = WorkerPool::new(4);
        let with_pool = run_campaign_with_pool(
            &pool,
            &entries_vec,
            &stands,
            &EngineOptions::default(),
            &ExecOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(with_pool, reference, "pool shim diverged");
    }

    #[test]
    fn shims_emit_the_historical_campaign_done_event() {
        let suites = load_suites();
        let entries_vec = entries(&suites);
        let stand_b = load_stand("stand_b.stand");
        let stands = [&stand_b];
        let (tx, rx) = std::sync::mpsc::channel();
        let result = run_campaign_parallel(
            &entries_vec,
            &stands,
            &EngineOptions::with_workers(2),
            &ExecOptions::default(),
            Some(&tx),
        )
        .unwrap();
        drop(tx);
        assert!(result.all_green());
        let events: Vec<EngineEvent> = rx.into_iter().collect();
        assert!(
            matches!(
                events.last(),
                Some(EngineEvent::CampaignDone { cancelled: 0, .. })
            ),
            "shims keep the terminal CampaignDone marker"
        );
    }
}
