//! The parallel engine's core guarantee: an N-worker campaign produces a
//! cell-for-cell identical `CampaignResult` to serial execution, regardless
//! of completion order and scheduling granularity (whole cells or single
//! tests on the persistent worker pool) — plus the `stop_on_first_fail`
//! early-cancel path at both granularities.

use std::sync::mpsc;

use comptest::core::campaign::{run_campaign, CampaignEntry};
use comptest::prelude::*;

const ECUS: [&str; 5] = comptest::dut::ecus::NAMES;

fn load_suites() -> Vec<TestSuite> {
    ECUS.iter()
        .map(|ecu| {
            Workbook::load(comptest::asset(&format!("{ecu}.cts")))
                .unwrap_or_else(|e| panic!("workbook {ecu}: {e}"))
                .suite
        })
        .collect()
}

fn entries(suites: &[TestSuite]) -> Vec<CampaignEntry<'_>> {
    suites
        .iter()
        .zip(ECUS)
        .map(|(suite, ecu)| CampaignEntry {
            suite,
            device_factory: Box::new(move || {
                comptest::dut::ecus::device_by_name(ecu, Default::default()).expect("bundled ECU")
            }),
        })
        .collect()
}

#[test]
fn parallel_campaign_is_cell_for_cell_identical_to_serial() {
    let suites = load_suites();
    let stand_a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let stands = [&stand_a, &stand_b];

    let serial = run_campaign(&entries(&suites), &stands, &ExecOptions::default()).unwrap();
    assert_eq!(serial.cells.len(), 10);

    for granularity in [Granularity::Cell, Granularity::Test] {
        for workers in [2usize, 4, 8] {
            let parallel = run_campaign_parallel(
                &entries(&suites),
                &stands,
                &EngineOptions::with_workers(workers).granularity(granularity),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert_eq!(
                parallel, serial,
                "granularity {granularity}, workers = {workers}: \
                 ordering or outcomes diverged"
            );
        }
    }
}

#[test]
fn persistent_pool_reuse_is_identical_to_serial() {
    let suites = load_suites();
    let stand_a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let stands = [&stand_a, &stand_b];
    let serial = run_campaign(&entries(&suites), &stands, &ExecOptions::default()).unwrap();

    // One pool, three campaigns (replay / watch mode): the worker threads
    // are constructed once and reused; every run merges byte-identically.
    let pool = WorkerPool::new(4);
    for round in 0..3 {
        let result = run_campaign_with_pool(
            &pool,
            &entries(&suites),
            &stands,
            &EngineOptions::default(),
            &ExecOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(result, serial, "round {round} diverged");
    }
}

#[test]
fn engine_events_cover_every_cell_exactly_once() {
    let suites = load_suites();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let (tx, rx) = mpsc::channel();
    let result = run_campaign_parallel(
        &entries(&suites),
        &[&stand_b],
        &EngineOptions::with_workers(4),
        &ExecOptions::default(),
        Some(&tx),
    )
    .unwrap();
    drop(tx);
    let events: Vec<EngineEvent> = rx.into_iter().collect();

    let mut started: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::JobStarted { cell, .. } => Some(*cell),
            _ => None,
        })
        .collect();
    started.sort_unstable();
    assert_eq!(started, (0..5).collect::<Vec<_>>());
    let finished = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::JobFinished { .. }))
        .count();
    assert_eq!(finished, 5);
    assert!(matches!(
        events.last(),
        Some(EngineEvent::CampaignDone { cancelled: 0, .. })
    ));
    assert!(result.all_green(), "{result}");
}

#[test]
fn test_granular_events_cover_every_test_exactly_once() {
    let suites = load_suites();
    let total_tests: usize = suites.iter().map(|s| s.tests.len()).sum();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let (tx, rx) = mpsc::channel();
    let result = run_campaign_parallel(
        &entries(&suites),
        &[&stand_b],
        &EngineOptions::with_workers(4).granularity(Granularity::Test),
        &ExecOptions::default(),
        Some(&tx),
    )
    .unwrap();
    drop(tx);
    let events: Vec<EngineEvent> = rx.into_iter().collect();

    let mut started: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::TestStarted { cell, test, .. } => Some((*cell, *test)),
            _ => None,
        })
        .collect();
    started.sort_unstable();
    started.dedup();
    assert_eq!(started.len(), total_tests, "every (cell, test) starts once");
    let finished = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::TestFinished { .. }))
        .count();
    assert_eq!(finished, total_tests);
    assert!(
        !events.iter().any(|e| matches!(
            e,
            EngineEvent::JobStarted { .. } | EngineEvent::JobFinished { .. }
        )),
        "per-cell events are a cell-granularity concept"
    );
    assert!(matches!(
        events.last(),
        Some(EngineEvent::CampaignDone { cancelled: 0, .. })
    ));
    assert!(result.all_green(), "{result}");
}

#[test]
fn stop_on_first_fail_cancels_the_tail_at_test_granularity() {
    // Stand MINI cannot run anything: with one worker and early-cancel the
    // very first *test* comes back NOT RUNNABLE, the first cell is merged
    // as not-runnable (exactly what serial reports for that cell), and
    // every remaining test job is cancelled.
    let suites = load_suites();
    let total_tests: usize = suites.iter().map(|s| s.tests.len()).sum();
    let mini = TestStand::load(comptest::asset("stand_minimal.stand")).unwrap();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let stands = [&mini, &stand_b];

    let (tx, rx) = mpsc::channel();
    let result = run_campaign_parallel(
        &entries(&suites),
        &stands,
        &EngineOptions::with_workers(1)
            .granularity(Granularity::Test)
            .stop_on_first_fail(true),
        &ExecOptions::default(),
        Some(&tx),
    )
    .unwrap();
    drop(tx);

    assert_eq!(
        result.cells.len(),
        1,
        "only the failing cell merged:\n{result}"
    );
    assert!(result.cells[0].outcome.is_err());
    match rx.into_iter().last() {
        Some(EngineEvent::CampaignDone {
            cancelled,
            not_runnable,
            ..
        }) => {
            assert_eq!(not_runnable, 1);
            assert_eq!(
                cancelled,
                total_tests * 2 - 1,
                "all test jobs after the first were cancelled"
            );
        }
        other => panic!("expected CampaignDone, got {other:?}"),
    }
}

#[test]
fn stop_on_first_fail_cancels_the_tail() {
    // Stand MINI cannot run anything: with one worker and early-cancel the
    // very first cell comes back NOT RUNNABLE and the other nine never run.
    let suites = load_suites();
    let mini = TestStand::load(comptest::asset("stand_minimal.stand")).unwrap();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let stands = [&mini, &stand_b];

    let (tx, rx) = mpsc::channel();
    let result = run_campaign_parallel(
        &entries(&suites),
        &stands,
        &EngineOptions::with_workers(1).stop_on_first_fail(true),
        &ExecOptions::default(),
        Some(&tx),
    )
    .unwrap();
    drop(tx);

    assert_eq!(
        result.cells.len(),
        1,
        "only the failing cell ran:\n{result}"
    );
    assert!(result.cells[0].outcome.is_err());
    assert!(!result.all_green());
    match rx.into_iter().last() {
        Some(EngineEvent::CampaignDone {
            cancelled,
            not_runnable,
            ..
        }) => {
            assert_eq!(not_runnable, 1);
            assert_eq!(cancelled, 9, "the rest of the matrix was cancelled");
        }
        other => panic!("expected CampaignDone, got {other:?}"),
    }

    // Without the flag, the same matrix runs to completion.
    let full = run_campaign_parallel(
        &entries(&suites),
        &stands,
        &EngineOptions::with_workers(4),
        &ExecOptions::default(),
        None,
    )
    .unwrap();
    assert_eq!(full.cells.len(), 10);
}

#[test]
fn campaign_junit_covers_the_matrix() {
    let suites = load_suites();
    let stand_a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let result = run_campaign_parallel(
        &entries(&suites),
        &[&stand_a, &stand_b],
        &EngineOptions::with_workers(4),
        &ExecOptions::default(),
        None,
    )
    .unwrap();
    let xml = comptest::report::campaign_junit_xml(&result);
    let parsed = comptest::script::xml::parse(&xml).unwrap();
    assert_eq!(parsed.name, "testsuites");
    assert_eq!(parsed.elements_named("testsuite").count(), 10);
    assert!(xml.contains("interior_light@HIL-A"));
    assert!(
        xml.contains("type=\"NotRunnable\""),
        "stand A misses 4 ECUs"
    );
}
