//! The resumable-execution guarantee behind the async engine: driving
//! `TestRun::step` to completion produces **exactly** the `execute()`
//! result — steps, verdicts, traces, and error-carrying early exits — for
//! arbitrary generated workloads and execution options.

use comptest::model::{MethodName, PinId, SignalKind, SignalName, SimTime};
use comptest::prelude::*;
use comptest::stand::{Action, AppliedValue, ExecutionPlan, PlannedStep, ResourceId};
use comptest_workload::{gen_stand, gen_workbook_text, SplitMix64, StandShape, WorkbookShape};
use proptest::prelude::*;

/// Drives a fresh `TestRun` to completion, counting the calls.
fn run_stepwise(
    plan: &ExecutionPlan,
    device: &mut Device,
    options: &ExecOptions,
) -> (TestResult, usize) {
    let mut run = TestRun::new(plan, device, options);
    let mut calls = 0usize;
    loop {
        calls += 1;
        if let RunState::Finished(result) = run.step() {
            return (result, calls);
        }
    }
}

fn device() -> Device {
    comptest::dut::ecus::device_by_name("interior_light", Default::default()).expect("bundled ECU")
}

/// A stand serving the generated 4-signal workbooks: full-density
/// crosspoints for the input pins plus a DVM route to the output pin pair
/// (the same wiring the s6/s7 bench fixtures use).
fn variant_stand(rng: &mut SplitMix64, signals: usize) -> TestStand {
    let shape = StandShape {
        pins: signals,
        put_resources: signals,
        get_resources: 1,
        density: 1.0,
    };
    let dvm = ResourceId::new("Dvm0").expect("valid");
    gen_stand(rng, &shape)
        .with_connection(
            PinId::new("XO1").expect("valid"),
            dvm.clone(),
            PinId::new("OUT_F").expect("valid"),
        )
        .with_connection(
            PinId::new("XO2").expect("valid"),
            dvm,
            PinId::new("OUT_R").expect("valid"),
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random small matrices (generated workbooks × a generated
    /// stand × both sampling modes × both stop-on-failure settings),
    /// stepping equals executing, byte for byte — including the trace.
    #[test]
    fn stepping_equals_execute_on_generated_workloads(
        seed in 0u64..500,
        tests in 1usize..4,
        steps in 1usize..8,
        continuous in any::<bool>(),
        stop in any::<bool>(),
    ) {
        const SIGNALS: usize = 4;
        let mut rng = SplitMix64::new(seed);
        let text = gen_workbook_text(&mut rng, &WorkbookShape { signals: SIGNALS, tests, steps });
        let wb = Workbook::parse_str("gen.cts", &text).unwrap();
        let stand = variant_stand(&mut rng, SIGNALS);
        let options = ExecOptions {
            sample: if continuous {
                SampleMode::Continuous { interval: SimTime::from_millis(100) }
            } else {
                SampleMode::EndOfStep
            },
            stop_on_failure: stop,
        };
        for script in generate_all(&wb.suite).unwrap() {
            let Ok(exec_plan) = plan(&script, &stand) else {
                continue; // not plannable on this stand: nothing to execute
            };
            let reference = execute(&exec_plan, &mut device(), &options);
            let (stepped, calls) = run_stepwise(&exec_plan, &mut device(), &options);
            prop_assert_eq!(&stepped, &reference, "stepped run diverged from execute()");
            // One call per executed step (the last one delivers), one
            // call total for an empty plan, and one extra call only when
            // a stimulus error aborted a step before it was recorded.
            prop_assert!(
                calls == reference.steps.len().max(1)
                    || (calls == reference.steps.len() + 1 && reference.error.is_some()),
                "unexpected call count {} for {} executed steps",
                calls,
                reference.steps.len()
            );
        }
    }
}

/// A hand-built plan whose stimulus uses a method the simulated stand
/// cannot execute — the deterministic error-carrying early exit.
fn unexecutable_plan(in_init: bool) -> ExecutionPlan {
    let apply = Action::Apply {
        signal: SignalName::new("s").unwrap(),
        kind: SignalKind::Pin {
            pins: vec![PinId::new("DS_FL").unwrap()],
        },
        resource: ResourceId::new("Ress1").unwrap(),
        method: MethodName::new("put_f").unwrap(),
        value: AppliedValue::Num(1.0),
        settle: SimTime::ZERO,
    };
    let step = PlannedStep {
        nr: 0,
        dt: SimTime::from_millis(500),
        actions: vec![apply.clone()],
    };
    ExecutionPlan {
        script_name: "bad".into(),
        stand_name: "HIL-A".into(),
        init: if in_init { vec![apply] } else { Vec::new() },
        steps: if in_init { Vec::new() } else { vec![step] },
    }
}

#[test]
fn init_errors_finish_on_the_first_step_call() {
    let plan = unexecutable_plan(true);
    let reference = execute(&plan, &mut device(), &ExecOptions::default());
    assert!(reference.error.as_deref().unwrap().starts_with("init:"));
    let (stepped, calls) = run_stepwise(&plan, &mut device(), &ExecOptions::default());
    assert_eq!(stepped, reference);
    assert_eq!(calls, 1, "an init error must finish immediately");
    assert!(stepped.steps.is_empty());
}

#[test]
fn step_errors_abort_identically() {
    let plan = unexecutable_plan(false);
    let reference = execute(&plan, &mut device(), &ExecOptions::default());
    assert!(reference.error.as_deref().unwrap().starts_with("step 0:"));
    let (stepped, calls) = run_stepwise(&plan, &mut device(), &ExecOptions::default());
    assert_eq!(stepped, reference);
    assert_eq!(calls, 1, "the erroring step's call delivers the result");
    assert!(
        stepped.steps.is_empty(),
        "a step aborted by a stimulus error is not recorded"
    );
}
