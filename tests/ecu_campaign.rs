//! Experiment E7/§5: the campaign across the full ECU library on the
//! supplier stand — the reproduction's stand-in for "successfully applied
//! to two ECUs of the next S-class".

use comptest::prelude::*;

const ECUS: [&str; 5] = [
    "interior_light",
    "wiper",
    "power_window",
    "central_lock",
    "flasher",
];

fn load_suite(name: &str) -> TestSuite {
    Workbook::load(comptest::asset(&format!("{name}.cts")))
        .unwrap_or_else(|e| panic!("workbook {name}: {e}"))
        .suite
}

#[test]
fn every_workbook_validates() {
    let registry = MethodRegistry::builtin();
    for ecu in ECUS {
        let suite = load_suite(ecu);
        let issues = suite.validate(&registry);
        assert!(issues.is_empty(), "{ecu}: {issues:?}");
        assert!(!suite.tests.is_empty(), "{ecu} has tests");
    }
}

#[test]
fn all_ecus_pass_on_supplier_stand() {
    let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    for ecu in ECUS {
        let suite = load_suite(ecu);
        let result = run_suite(
            &suite,
            &stand,
            || comptest::device_for_stand(ecu, &stand).unwrap(),
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{ecu} must plan on stand B: {e}"));
        let (passed, failed, errored) = result.counts();
        assert_eq!(
            (failed, errored),
            (0, 0),
            "{ecu}: {}",
            comptest::report::suite_text(&result)
        );
        assert_eq!(passed, suite.tests.len());
    }
}

#[test]
fn campaign_matrix_shape() {
    let stand_a = TestStand::load(comptest::asset("stand_a.stand")).unwrap();
    let stand_b = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let suites = comptest::load_bundled_suites().unwrap();
    let entries = comptest::bundled_entries(&suites);
    let stands = [&stand_a, &stand_b];
    let result = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .unwrap();
    assert_eq!(result.cells.len(), 10);
    // Stand B runs everything.
    let on_b: Vec<_> = result
        .cells
        .iter()
        .filter(|c| c.stand == "SUPPLIER-B")
        .collect();
    assert!(on_b.iter().all(|c| c.outcome.is_ok()), "{result}");
    // Stand A runs only the interior light (the paper's own wiring).
    let on_a: Vec<_> = result.cells.iter().filter(|c| c.stand == "HIL-A").collect();
    let runnable_on_a = on_a.iter().filter(|c| c.outcome.is_ok()).count();
    assert_eq!(runnable_on_a, 1, "{result}");
    assert!(!result.all_green());
    let (_, _, _, not_runnable) = result.totals();
    assert_eq!(not_runnable, 4);
}

#[test]
fn requirement_coverage_across_the_library() {
    use comptest::core::coverage::RequirementCoverage;
    let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    for ecu in ECUS {
        let suite = load_suite(ecu);
        let results = run_suite(
            &suite,
            &stand,
            || comptest::device_for_stand(ecu, &stand).unwrap(),
            &ExecOptions::default(),
        )
        .unwrap();
        let cov = RequirementCoverage::from_suite(&suite).with_results(&results);
        assert!(
            cov.requirement_count() >= 3,
            "{ecu} should tag at least 3 requirements"
        );
        assert_eq!(
            cov.verified().len(),
            cov.requirement_count(),
            "{ecu}: all requirements verified\n{cov}"
        );
    }
}
