//! Property tests pinning the cache-key hashing contract
//! (`comptest_core::hash`): structurally equal suites and stands hash
//! equal — across re-parses and irrelevant spelling differences — and
//! every structural mutation (renamed test, changed check bound,
//! reordered steps, re-wired matrix, changed supply) moves the key.
//! Plus the cache-robustness half: a corrupted or truncated `DirCache`
//! entry is a *miss* (the campaign executes cold), never an error.

use std::sync::Arc;

use comptest::core::campaign::CampaignEntry;
use comptest::core::hash::{hash_stand, hash_suite};
use comptest::engine::{CampaignCache, DirCache};
use comptest::prelude::*;
use comptest_workload::{gen_workbook_text, SplitMix64, WorkbookShape};
use proptest::prelude::*;

/// A generated workbook: the suite plus its source text (so equality can
/// be checked against an independent re-parse).
fn generated_suite(seed: u64, signals: usize, tests: usize) -> (TestSuite, String) {
    let mut rng = SplitMix64::new(seed);
    let text = gen_workbook_text(
        &mut rng,
        &WorkbookShape {
            signals: signals.max(2),
            tests: tests.max(1),
            steps: 2,
        },
    );
    let suite = Workbook::parse_str("gen.cts", &text)
        .expect("generated workbook parses")
        .suite;
    (suite, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Re-parsing the identical sheet text yields the identical hash:
    /// the hash is a function of structure, not of parse order, heap
    /// addresses or wall-clock.
    #[test]
    fn reparsed_suites_hash_equal(seed in 0u64..1_000_000, signals in 2usize..6, tests in 1usize..8) {
        let (a, text) = generated_suite(seed, signals, tests);
        let b = Workbook::parse_str("again.cts", &text).unwrap().suite;
        prop_assert_eq!(hash_suite(&a), hash_suite(&b));
        // A clone is trivially structurally equal.
        prop_assert_eq!(hash_suite(&a), hash_suite(&a.clone()));
    }

    /// Renaming any test changes the suite hash.
    #[test]
    fn renaming_a_test_changes_the_hash(seed in 0u64..1_000_000, pick in 0usize..64) {
        let (base, _) = generated_suite(seed, 3, 4);
        let mut mutated = base.clone();
        let i = pick % mutated.tests.len();
        mutated.tests[i].name = format!("{}_renamed", mutated.tests[i].name);
        prop_assert_ne!(hash_suite(&base), hash_suite(&mutated));
    }

    /// Widening (or otherwise moving) any status bound changes the hash —
    /// the acceptance interval is part of the verified contract.
    #[test]
    fn changing_a_check_bound_changes_the_hash(seed in 0u64..1_000_000, pick in 0usize..64, delta in 0.001f64..10.0) {
        let (base, _) = generated_suite(seed, 3, 4);
        let mut mutated = base.clone();
        let defs: Vec<_> = mutated.statuses.iter().cloned().collect();
        prop_assert!(!defs.is_empty());
        let mut def = defs[pick % defs.len()].clone();
        // `max` may be absent (bit-pattern statuses) or infinite (`INF`
        // upper bounds, where adding a delta is a no-op) — move it to a
        // fresh finite value in every case.
        def.max = Some(match def.max {
            Some(m) if m.is_finite() => m + delta,
            _ => delta,
        });
        mutated.statuses.insert(def);
        prop_assert_ne!(hash_suite(&base), hash_suite(&mutated));
    }

    /// Reordering the steps of a test changes the hash — the stimulus
    /// sequence is structure, not presentation.
    #[test]
    fn reordering_steps_changes_the_hash(seed in 0u64..1_000_000, pick in 0usize..64) {
        let (base, _) = generated_suite(seed, 3, 4);
        let mut mutated = base.clone();
        let i = pick % mutated.tests.len();
        // Step rows carry their sheet number (`nr`), so reversing the
        // sequence always changes the hashed byte stream — even for tests
        // whose rows happen to assign identical statuses.
        mutated.tests[i].steps.reverse();
        prop_assert_ne!(hash_suite(&base), hash_suite(&mutated));
    }

    /// Stand mutations move the stand hash: supply voltage, resource
    /// capability range, and matrix wiring are all part of the key.
    #[test]
    fn stand_mutations_change_the_hash(ubatt in 9.0f64..16.0, delta in 0.25f64..4.0) {
        let base = TestStand::parse_str("a.stand", comptest::core::PAPER_STAND_A).unwrap();
        let mut supply = base.clone();
        supply.env_mut().set("ubatt", ubatt + 100.0);
        prop_assert_ne!(hash_stand(&base), hash_stand(&supply));

        let mut tweaked = base.clone();
        tweaked.env_mut().set("extra_var", delta);
        prop_assert_ne!(hash_stand(&base), hash_stand(&tweaked), "added env var");
    }
}

/// Irrelevant spelling: identifier *case* is not structure (the whole
/// toolchain compares names case-insensitively), so a case-only respelling
/// keys identically.
#[test]
fn identifier_case_is_not_structure() {
    let upper = "\
[suite]
name = lamp

[signals]
name,    kind,       direction, init
DS_FL,   pin:DS_FL,  input,     OPEN

[status]
status, method, attribut, var, nom, min, max
OPEN,   put_r,  r,        ,    0,   0,   2

[test smoke]
step, dt,  DS_FL
0,    0.5, OPEN
";
    let lower = upper
        .replace(
            "DS_FL,   pin:DS_FL,  input,     OPEN",
            "ds_fl,   pin:ds_fl,  input,     open",
        )
        .replace("OPEN,   put_r", "open,   put_r")
        .replace("step, dt,  DS_FL", "step, dt,  ds_fl")
        .replace("0,    0.5, OPEN", "0,    0.5, open");
    let a = Workbook::parse_str("upper.cts", upper).unwrap().suite;
    let b = Workbook::parse_str("lower.cts", &lower).unwrap().suite;
    assert_eq!(
        hash_suite(&a),
        hash_suite(&b),
        "case-only respelling must key identically"
    );
}

/// The robustness half of the contract: corrupting or truncating every
/// on-disk record between two runs turns hits back into misses — the
/// second run executes cold and still produces the byte-identical result,
/// and the corrupt files are replaced with fresh records.
#[test]
fn corrupted_dir_cache_entries_are_misses_not_errors() {
    let dir = std::env::temp_dir().join(format!("comptest-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let suites = comptest::load_bundled_suites().unwrap();
    let entries: Vec<CampaignEntry<'_>> = comptest::bundled_entries(&suites);
    let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let stands = [&stand];
    let reference = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .unwrap();

    let cache = Arc::new(DirCache::open(&dir).unwrap());
    let campaign = Campaign::new(&entries, &stands).cache(cache.clone());
    let _ = campaign.run(&SerialExecutor).unwrap();

    // Vandalise every record differently: truncation, garbage, emptiness.
    // (Records are binary by default; truncating bytes is format-agnostic.)
    let mut records: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin" || e == "json"))
        .collect();
    records.sort();
    assert_eq!(records.len(), entries.len(), "one record per cell");
    for (i, path) in records.iter().enumerate() {
        match i % 3 {
            0 => {
                let bytes = std::fs::read(path).unwrap();
                std::fs::write(path, &bytes[..bytes.len() / 3]).unwrap();
            }
            1 => std::fs::write(path, b"\x00\xff garbage {{{").unwrap(),
            _ => std::fs::write(path, b"").unwrap(),
        }
    }

    // Every load must now miss...
    let keys: Vec<comptest::core::CellKey> = entries
        .iter()
        .map(|e| comptest::core::CellKey::for_cell(e, &stand, &ExecOptions::default()))
        .collect();
    for key in &keys {
        assert!(
            cache.load(key).is_none(),
            "corrupt entry must read as a miss"
        );
    }

    // ...and the campaign simply runs cold, byte-identical, re-storing
    // valid records as it goes.
    let mut handle = campaign.launch(&SerialExecutor).unwrap();
    let events: Vec<EngineEvent> = handle.events().collect();
    let rerun = handle.join().unwrap();
    assert_eq!(rerun.result, reference);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, EngineEvent::CellCached { .. })),
        "nothing can hit a vandalised cache"
    );
    for key in &keys {
        assert!(cache.load(key).is_some(), "cold run must repair the record");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
