//! Property tests pinning the cache-key hashing contract
//! (`comptest_core::hash`): structurally equal suites and stands hash
//! equal — across re-parses and irrelevant spelling differences — and
//! every structural mutation (renamed test, changed check bound,
//! reordered steps, re-wired matrix, changed supply) moves the key.
//! Plus the cache-robustness half: a corrupted or truncated `DirCache`
//! entry is a *miss* (the campaign executes cold), never an error.

use std::sync::Arc;

use comptest::core::campaign::CampaignEntry;
use comptest::core::hash::{hash_stand, hash_suite, FootprintKey};
use comptest::core::CellKey;
use comptest::dut::ElectricalConfig;
use comptest::engine::{CacheKeying, CampaignCache, DirCache};
use comptest::prelude::*;
use comptest_workload::{
    block_device, block_stand, gen_workbook_text, gen_workbook_text_prefixed, BlockSpec,
    SplitMix64, WorkbookShape,
};
use proptest::prelude::*;

/// A generated workbook: the suite plus its source text (so equality can
/// be checked against an independent re-parse).
fn generated_suite(seed: u64, signals: usize, tests: usize) -> (TestSuite, String) {
    let mut rng = SplitMix64::new(seed);
    let text = gen_workbook_text(
        &mut rng,
        &WorkbookShape {
            signals: signals.max(2),
            tests: tests.max(1),
            steps: 2,
        },
    );
    let suite = Workbook::parse_str("gen.cts", &text)
        .expect("generated workbook parses")
        .suite;
    (suite, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Re-parsing the identical sheet text yields the identical hash:
    /// the hash is a function of structure, not of parse order, heap
    /// addresses or wall-clock.
    #[test]
    fn reparsed_suites_hash_equal(seed in 0u64..1_000_000, signals in 2usize..6, tests in 1usize..8) {
        let (a, text) = generated_suite(seed, signals, tests);
        let b = Workbook::parse_str("again.cts", &text).unwrap().suite;
        prop_assert_eq!(hash_suite(&a), hash_suite(&b));
        // A clone is trivially structurally equal.
        prop_assert_eq!(hash_suite(&a), hash_suite(&a.clone()));
    }

    /// Renaming any test changes the suite hash.
    #[test]
    fn renaming_a_test_changes_the_hash(seed in 0u64..1_000_000, pick in 0usize..64) {
        let (base, _) = generated_suite(seed, 3, 4);
        let mut mutated = base.clone();
        let i = pick % mutated.tests.len();
        mutated.tests[i].name = format!("{}_renamed", mutated.tests[i].name);
        prop_assert_ne!(hash_suite(&base), hash_suite(&mutated));
    }

    /// Widening (or otherwise moving) any status bound changes the hash —
    /// the acceptance interval is part of the verified contract.
    #[test]
    fn changing_a_check_bound_changes_the_hash(seed in 0u64..1_000_000, pick in 0usize..64, delta in 0.001f64..10.0) {
        let (base, _) = generated_suite(seed, 3, 4);
        let mut mutated = base.clone();
        let defs: Vec<_> = mutated.statuses.iter().cloned().collect();
        prop_assert!(!defs.is_empty());
        let mut def = defs[pick % defs.len()].clone();
        // `max` may be absent (bit-pattern statuses) or infinite (`INF`
        // upper bounds, where adding a delta is a no-op) — move it to a
        // fresh finite value in every case.
        def.max = Some(match def.max {
            Some(m) if m.is_finite() => m + delta,
            _ => delta,
        });
        mutated.statuses.insert(def);
        prop_assert_ne!(hash_suite(&base), hash_suite(&mutated));
    }

    /// Reordering the steps of a test changes the hash — the stimulus
    /// sequence is structure, not presentation.
    #[test]
    fn reordering_steps_changes_the_hash(seed in 0u64..1_000_000, pick in 0usize..64) {
        let (base, _) = generated_suite(seed, 3, 4);
        let mut mutated = base.clone();
        let i = pick % mutated.tests.len();
        // Step rows carry their sheet number (`nr`), so reversing the
        // sequence always changes the hashed byte stream — even for tests
        // whose rows happen to assign identical statuses.
        mutated.tests[i].steps.reverse();
        prop_assert_ne!(hash_suite(&base), hash_suite(&mutated));
    }

    /// Stand mutations move the stand hash: supply voltage, resource
    /// capability range, and matrix wiring are all part of the key.
    #[test]
    fn stand_mutations_change_the_hash(ubatt in 9.0f64..16.0, delta in 0.25f64..4.0) {
        let base = TestStand::parse_str("a.stand", comptest::core::PAPER_STAND_A).unwrap();
        let mut supply = base.clone();
        supply.env_mut().set("ubatt", ubatt + 100.0);
        prop_assert_ne!(hash_stand(&base), hash_stand(&supply));

        let mut tweaked = base.clone();
        tweaked.env_mut().set("extra_var", delta);
        prop_assert_ne!(hash_stand(&base), hash_stand(&tweaked), "added env var");
    }
}

/// The two ECU blocks of the composite-device footprint fixture:
/// (pin-name prefix, behaviour output port).
const BLOCKS: [(&str, &str); 2] = [("e0_", "e0_out"), ("e1_", "e1_out")];

/// One generated suite per block, each touching only its own block's pins.
fn block_suites(seed: u64, signals: usize, tests: usize) -> Vec<TestSuite> {
    BLOCKS
        .iter()
        .map(|(prefix, _)| {
            let text = gen_workbook_text_prefixed(
                &mut SplitMix64::new(seed),
                &WorkbookShape {
                    signals: signals.max(2),
                    tests: tests.max(1),
                    steps: 2,
                },
                prefix,
            );
            Workbook::parse_str("block.cts", &text)
                .expect("generated workbook parses")
                .suite
        })
        .collect()
}

/// Campaign entries sharing one composite device that aggregates both
/// blocks at the given per-block configs — the workload where full and
/// footprint keying genuinely differ.
fn block_entries<'a>(suites: &'a [TestSuite], configs: [&str; 2]) -> Vec<CampaignEntry<'a>> {
    let specs: Vec<BlockSpec> = BLOCKS
        .iter()
        .zip(configs)
        .map(|((prefix, out_port), config)| BlockSpec {
            prefix: (*prefix).into(),
            out_port,
            config: config.into(),
        })
        .collect();
    suites
        .iter()
        .map(|suite| {
            let specs = specs.clone();
            CampaignEntry {
                suite,
                device_factory: Box::new(move || {
                    block_device(&specs, ElectricalConfig::default(), None)
                }),
            }
        })
        .collect()
}

proptest! {
    // Each case plans several small campaigns; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The footprint contract, end to end on a composite device: edits
    /// outside a cell's footprint (another block's config, another block's
    /// stand resources) leave its [`FootprintKey`] fixed, edits inside it
    /// (its own block, its own resources, its suite, the cache salt) move
    /// the key, and full/footprint keys never alias across distinct cells.
    #[test]
    fn footprint_keys_track_exactly_the_touched_slices(
        seed in 0u64..1_000_000,
        rev in 1u64..1_000_000,
    ) {
        let opts = ExecOptions::default();
        let suites = block_suites(seed, 2, 2);
        let stand = block_stand(&["e0_", "e1_"], 2);

        let base = block_entries(&suites, ["base", "base"]);
        let edited_cfg = format!("v{rev}");
        let edited = block_entries(&suites, ["base", &edited_cfg]);
        let key = |entries: &[CampaignEntry<'_>], i: usize, stand: &TestStand, salt: &str| {
            FootprintKey::for_cell(&entries[i], stand, &opts, salt)
        };

        // Editing block 1's config is outside cell 0's footprint: its key
        // holds — re-running the campaign would re-test only block 1...
        prop_assert_eq!(key(&base, 0, &stand, ""), key(&edited, 0, &stand, ""));
        prop_assert_ne!(key(&base, 1, &stand, ""), key(&edited, 1, &stand, ""));
        // ...whereas full keying folds the whole composite device into
        // every cell, so the same edit invalidates the untouched cell too.
        prop_assert_ne!(
            CellKey::for_cell(&base[0], &stand, &opts),
            CellKey::for_cell(&edited[0], &stand, &opts)
        );

        // The author-supplied cache salt is inside every footprint.
        let salted = format!("fw-{rev}");
        prop_assert_ne!(key(&base, 0, &stand, ""), key(&base, 0, &stand, &salted));

        // A third block's resources are outside both footprints: the full
        // stand hash moves, the footprint keys hold.
        let widened = block_stand(&["e0_", "e1_", "e2_"], 2);
        prop_assert_ne!(hash_stand(&stand), hash_stand(&widened));
        prop_assert_eq!(key(&base, 0, &stand, ""), key(&base, 0, &widened, ""));
        prop_assert_eq!(key(&base, 1, &stand, ""), key(&base, 1, &widened, ""));

        // Removing the resources a cell's plans allocate moves that cell's
        // key (its plans fail and key by the error) — and only that one.
        let narrowed = block_stand(&["e0_"], 2);
        prop_assert_eq!(key(&base, 0, &stand, ""), key(&base, 0, &narrowed, ""));
        prop_assert_ne!(key(&base, 1, &stand, ""), key(&base, 1, &narrowed, ""));

        // A suite edit is always inside its own cell's footprint.
        let mut renamed_suites = block_suites(seed, 2, 2);
        renamed_suites[0].tests[0].name.push_str("_renamed");
        let renamed = block_entries(&renamed_suites, ["base", "base"]);
        prop_assert_ne!(key(&base, 0, &stand, ""), key(&renamed, 0, &stand, ""));

        // Full and footprint keys live in disjoint hash domains: across
        // every distinct cell, the 2 full + 2 footprint addresses are 4
        // distinct cache entries.
        let mut all: Vec<CellKey> = Vec::new();
        for i in 0..base.len() {
            all.push(CellKey::for_cell(&base[i], &stand, &opts));
            all.push(key(&base, i, &stand, "").cell_key());
        }
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), 4, "full and footprint keys must never alias");
    }
}

/// Irrelevant spelling: identifier *case* is not structure (the whole
/// toolchain compares names case-insensitively), so a case-only respelling
/// keys identically.
#[test]
fn identifier_case_is_not_structure() {
    let upper = "\
[suite]
name = lamp

[signals]
name,    kind,       direction, init
DS_FL,   pin:DS_FL,  input,     OPEN

[status]
status, method, attribut, var, nom, min, max
OPEN,   put_r,  r,        ,    0,   0,   2

[test smoke]
step, dt,  DS_FL
0,    0.5, OPEN
";
    let lower = upper
        .replace(
            "DS_FL,   pin:DS_FL,  input,     OPEN",
            "ds_fl,   pin:ds_fl,  input,     open",
        )
        .replace("OPEN,   put_r", "open,   put_r")
        .replace("step, dt,  DS_FL", "step, dt,  ds_fl")
        .replace("0,    0.5, OPEN", "0,    0.5, open");
    let a = Workbook::parse_str("upper.cts", upper).unwrap().suite;
    let b = Workbook::parse_str("lower.cts", &lower).unwrap().suite;
    assert_eq!(
        hash_suite(&a),
        hash_suite(&b),
        "case-only respelling must key identically"
    );
}

/// The robustness half of the contract: corrupting or truncating every
/// on-disk record between two runs turns hits back into misses — the
/// second run executes cold and still produces the byte-identical result,
/// and the corrupt files are replaced with fresh records.
#[test]
fn corrupted_dir_cache_entries_are_misses_not_errors() {
    let dir = std::env::temp_dir().join(format!("comptest-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let suites = comptest::load_bundled_suites().unwrap();
    let entries: Vec<CampaignEntry<'_>> = comptest::bundled_entries(&suites);
    let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
    let stands = [&stand];
    let reference = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .unwrap();

    // Pinned to full keying: the test predicts record addresses via
    // `CellKey::for_cell` below.
    let cache = Arc::new(DirCache::open(&dir).unwrap());
    let campaign = Campaign::new(&entries, &stands)
        .cache_keying(CacheKeying::Full)
        .cache(cache.clone());
    let _ = campaign.run(&SerialExecutor).unwrap();

    // Vandalise every record differently: truncation, garbage, emptiness.
    // (Records are binary by default; truncating bytes is format-agnostic.)
    let mut records: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin" || e == "json"))
        .collect();
    records.sort();
    assert_eq!(records.len(), entries.len(), "one record per cell");
    for (i, path) in records.iter().enumerate() {
        match i % 3 {
            0 => {
                let bytes = std::fs::read(path).unwrap();
                std::fs::write(path, &bytes[..bytes.len() / 3]).unwrap();
            }
            1 => std::fs::write(path, b"\x00\xff garbage {{{").unwrap(),
            _ => std::fs::write(path, b"").unwrap(),
        }
    }

    // Every load must now miss...
    let keys: Vec<comptest::core::CellKey> = entries
        .iter()
        .map(|e| comptest::core::CellKey::for_cell(e, &stand, &ExecOptions::default()))
        .collect();
    for key in &keys {
        assert!(
            cache.load(key).is_none(),
            "corrupt entry must read as a miss"
        );
    }

    // ...and the campaign simply runs cold, byte-identical, re-storing
    // valid records as it goes.
    let mut handle = campaign.launch(&SerialExecutor).unwrap();
    let events: Vec<EngineEvent> = handle.events().collect();
    let rerun = handle.join().unwrap();
    assert_eq!(rerun.result, reference);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, EngineEvent::CellCached { .. })),
        "nothing can hit a vandalised cache"
    );
    for key in &keys {
        assert!(cache.load(key).is_some(), "cold run must repair the record");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
