//! Property-based tests across crate boundaries: generated workloads must
//! survive every serialisation layer unchanged, and planning must be
//! deterministic.

use comptest::engine::CampaignCache;
use comptest::prelude::*;
use comptest_workload::{
    gen_script, gen_stand, gen_workbook_text, ScriptShape, SplitMix64, StandShape, WorkbookShape,
};
use proptest::prelude::*;

/// Executed cache records for the bundled campaign (one per cell), built
/// once per process — the richest record corpus we can get without
/// hand-assembling every result type.
fn executed_records() -> &'static [comptest::engine::CellRecord] {
    use std::sync::{Arc, OnceLock};
    static RECORDS: OnceLock<Vec<comptest::engine::CellRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| {
        let suites = comptest::load_bundled_suites().expect("bundled suites");
        let entries = comptest::bundled_entries(&suites);
        let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
        let stands = [&stand];
        let cache = Arc::new(comptest::engine::MemoryCache::new());
        // Pinned to full keying: record addresses are predicted via
        // CellKey::for_cell below.
        let campaign = Campaign::new(&entries, &stands)
            .cache_keying(comptest::engine::CacheKeying::Full)
            .cache(cache.clone());
        let _ = campaign.run(&SerialExecutor).unwrap();
        entries
            .iter()
            .map(|entry| {
                let key = comptest::core::CellKey::for_cell(entry, &stand, &ExecOptions::default());
                cache.load(&key).expect("populated record")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary cache records roundtrip bit-exactly: decode(encode(r)) == r
    /// and re-encoding the decoded record reproduces the same bytes, for
    /// executed records, prefixes of them (partial cells), and prefixes
    /// extended with a planning error — with the header probe agreeing on
    /// coverage and determinedness throughout.
    #[test]
    fn binary_cache_record_roundtrip(
        cell in 0usize..64,
        keep in 0usize..32,
        with_err in proptest::prelude::any::<bool>(),
        err in "[ -~]{0,40}",
    ) {
        use comptest::engine::cache::binary;
        let records = executed_records();
        let mut record = records[cell % records.len()].clone();
        record.tests.truncate(keep % (record.tests.len() + 1));
        if with_err && record.tests.len() < record.total {
            record.tests.push(Err(err));
        }

        let bytes = binary::encode(&record);
        let decoded = binary::decode(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(binary::encode(&decoded), bytes.clone());

        let header = binary::probe(&bytes).expect("valid encoding must probe");
        prop_assert_eq!(header.total, record.total);
        prop_assert_eq!(header.tests, record.tests.len());
        prop_assert_eq!(header.ends_err, matches!(record.tests.last(), Some(Err(_))));
        prop_assert_eq!(header.determines_cell(), record.is_determined());
    }

    /// Generated scripts roundtrip through XML byte-identically on reparse.
    #[test]
    fn script_xml_roundtrip(seed in 0u64..1000, signals in 1usize..20, steps in 1usize..30) {
        let mut rng = SplitMix64::new(seed);
        let script = gen_script(&mut rng, &ScriptShape {
            signals,
            steps,
            puts_per_step: 2,
            concurrency: signals.min(4),
        });
        let xml = script.to_xml();
        let back = TestScript::parse_xml(&xml).unwrap();
        prop_assert_eq!(&back, &script);
        // Serialising again gives the same bytes (stable output).
        prop_assert_eq!(back.to_xml(), xml);
    }

    /// Generated workbooks parse, validate, and compile for every test.
    #[test]
    fn workbook_pipeline(seed in 0u64..500, tests in 1usize..4, steps in 1usize..10) {
        let mut rng = SplitMix64::new(seed);
        let text = gen_workbook_text(&mut rng, &WorkbookShape { signals: 4, tests, steps });
        let parsed = Workbook::parse_str("gen.cts", &text).unwrap();
        let issues = parsed.suite.validate(&MethodRegistry::builtin());
        prop_assert!(issues.is_empty(), "{:?}", issues);
        let scripts = generate_all(&parsed.suite).unwrap();
        prop_assert_eq!(scripts.len(), tests);
        for script in &scripts {
            let back = TestScript::parse_xml(&script.to_xml()).unwrap();
            prop_assert_eq!(&back, script);
        }
    }

    /// Planning is deterministic: same script + same stand = same plan.
    #[test]
    fn planning_is_deterministic(seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let stand = gen_stand(&mut rng, &StandShape {
            pins: 8,
            put_resources: 4,
            get_resources: 1,
            density: 0.5,
        });
        let script = gen_script(&mut rng, &ScriptShape {
            signals: 8,
            steps: 12,
            puts_per_step: 2,
            concurrency: 3,
        });
        let p1 = plan(&script, &stand);
        let p2 = plan(&script, &stand);
        match (p1, p2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "outcomes diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Feasible workloads plan successfully: if concurrency never exceeds
    /// the put-resource count and the matrix is fully dense, allocation
    /// must not fail.
    #[test]
    fn dense_feasible_workloads_always_plan(seed in 0u64..200, resources in 2usize..6) {
        let mut rng = SplitMix64::new(seed);
        let stand = gen_stand(&mut rng, &StandShape {
            pins: 8,
            put_resources: resources,
            get_resources: 1,
            density: 1.0,
        });
        let script = gen_script(&mut rng, &ScriptShape {
            signals: 8,
            steps: 20,
            puts_per_step: 1,
            concurrency: resources,
        });
        let planned = plan(&script, &stand);
        prop_assert!(planned.is_ok(), "{}", planned.unwrap_err());
    }

    /// The allocator never grants a value outside the statement's window.
    #[test]
    fn grants_respect_realization_windows(seed in 0u64..200) {
        use comptest::stand::{Action, AppliedValue};
        let mut rng = SplitMix64::new(seed);
        let stand = gen_stand(&mut rng, &StandShape {
            pins: 6,
            put_resources: 3,
            get_resources: 1,
            density: 1.0,
        });
        let script = gen_script(&mut rng, &ScriptShape {
            signals: 6,
            steps: 10,
            puts_per_step: 1,
            concurrency: 3,
        });
        if let Ok(planned) = plan(&script, &stand) {
            for (step, planned_step) in script.steps.iter().zip(&planned.steps) {
                for (stmt, action) in step.statements.iter().zip(&planned_step.actions) {
                    let Action::Apply { value: AppliedValue::Num(v), .. } = action else {
                        continue;
                    };
                    let lo = stmt.attr("r_min").and_then(|a| a.as_expr()).map(|e| e.eval(&Env::new()).unwrap());
                    let hi = stmt.attr("r_max").and_then(|a| a.as_expr()).map(|e| e.eval(&Env::new()).unwrap());
                    if let (Some(lo), Some(hi)) = (lo, hi) {
                        prop_assert!(*v >= lo && *v <= hi, "applied {} outside [{}, {}]", v, lo, hi);
                    }
                }
            }
        }
    }
}

/// Sanity outside proptest: the workbook generator hits the validator's
/// happy path for the default shape (regression anchor for the generators).
#[test]
fn default_workbook_shape_is_valid() {
    let mut rng = SplitMix64::new(0);
    let text = gen_workbook_text(&mut rng, &WorkbookShape::default());
    let parsed = Workbook::parse_str("gen.cts", &text).unwrap();
    assert!(parsed.suite.validate(&MethodRegistry::builtin()).is_empty());
}
