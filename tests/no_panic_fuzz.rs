//! Fuzz-style robustness: the text parsers (workbooks, stands, scripts,
//! expressions, CLI option values) must never panic, whatever bytes
//! arrive — they either produce a value or a diagnostic. Inputs are
//! random strings plus mutated versions of the valid bundled artifacts
//! (mutations keep the input "almost right", where panics usually hide).
//! The campaign cache gets the same treatment: hostile cache-directory
//! paths yield a graceful [`comptest::core::CoreError::Cache`] (or a
//! working cache), never a panic, and feeding a hostile store never
//! fails a run.

use comptest::core::CoreError;
use comptest::engine::{CampaignCache, DirCache};
use comptest::prelude::*;
use proptest::prelude::*;

/// Loads, stores, reloads — the full round a campaign would drive, on
/// whatever directory the fuzzer produced. (Fuzzed path fragments may
/// contain `.`/`..` components, so two cases can land on the same
/// directory: no assumption is made about pre-existing entries, only that
/// nothing panics.)
fn exercise_cache(cache: &DirCache) {
    let key = comptest::core::CellKey {
        suite_hash: 1,
        stand_hash: 2,
        dut_config_hash: 3,
        exec_hash: 4,
    };
    let _ = cache.load(&key);
    let record = comptest::engine::CellRecord {
        total: 1,
        tests: vec![Err("fuzz".into())],
        footprint: None,
    };
    cache.store(&key, &record);
    // Stores are best-effort: a load now yields the record or (if the OS
    // rejected the write) nothing — both are fine, panics are not.
    let _ = cache.load(&key);
}

/// The explicit hostile-path cases the fuzzer cannot reliably produce:
/// empty path, a path naming an existing *file*, a read-only parent. All
/// must yield `CoreError::Cache` or a working cache — never a panic — and
/// a cache whose directory turns read-only after opening must silently
/// drop stores rather than failing the campaign.
#[test]
fn dir_cache_hostile_paths_are_graceful() {
    assert!(matches!(DirCache::open(""), Err(CoreError::Cache { .. })));

    let base = std::env::temp_dir().join(format!("comptest-hostile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // A file where a directory should be.
    let file = base.join("occupied");
    std::fs::write(&file, "not a dir").unwrap();
    assert!(matches!(
        DirCache::open(&file),
        Err(CoreError::Cache { .. })
    ));
    // ...and nesting *under* a file cannot create the directory either.
    assert!(matches!(
        DirCache::open(file.join("child")),
        Err(CoreError::Cache { .. })
    ));

    // Deeply nested fresh path: created on demand.
    let nested = base.join("a").join("b").join("c");
    exercise_cache(&DirCache::open(&nested).unwrap());

    // Read-only directory: opening may succeed or fail depending on
    // privileges (root ignores mode bits); either way nothing panics and
    // stores stay best-effort.
    let ro = base.join("readonly");
    std::fs::create_dir_all(&ro).unwrap();
    let mut perms = std::fs::metadata(&ro).unwrap().permissions();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        perms.set_mode(0o555);
    }
    std::fs::set_permissions(&ro, perms.clone()).unwrap();
    match DirCache::open(&ro) {
        Ok(cache) => exercise_cache(&cache),
        Err(e) => assert!(matches!(e, CoreError::Cache { .. })),
    }
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        perms.set_mode(0o755);
        let _ = std::fs::set_permissions(&ro, perms);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// A real encoded binary cache record (the bundled campaign's first cell,
/// executed once per process) — the mutation base for codec fuzzing.
fn valid_record_bytes() -> &'static [u8] {
    use std::sync::OnceLock;
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let suites = comptest::load_bundled_suites().expect("bundled suites");
        let entries = comptest::bundled_entries(&suites);
        let stand = TestStand::load(comptest::asset("stand_b.stand")).unwrap();
        let stands = [&stand];
        let cache = std::sync::Arc::new(comptest::engine::MemoryCache::new());
        // Pinned to full keying: the record address is predicted via
        // CellKey::for_cell below.
        let campaign = Campaign::new(&entries, &stands)
            .cache_keying(comptest::engine::CacheKeying::Full)
            .cache(cache.clone());
        let _ = campaign.run(&SerialExecutor).unwrap();
        let key = comptest::core::CellKey::for_cell(&entries[0], &stand, &ExecOptions::default());
        let record = cache.load(&key).expect("populated record");
        comptest::engine::cache::binary::encode(&record)
    })
}

/// Hand-crafted hostile binary records the mutator cannot reliably
/// produce: a wrong version byte (future format) and oversized declared
/// counts/lengths (allocation bombs). All must decode as errors — and read
/// as plain misses through a [`DirCache`] — never panic or allocate.
#[test]
fn binary_wrong_version_and_oversized_lengths_are_misses() {
    use comptest::engine::cache::binary;

    let base = std::env::temp_dir().join(format!("comptest-binfuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = DirCache::open(&base).unwrap();
    let key = comptest::core::CellKey {
        suite_hash: 1,
        stand_hash: 2,
        dut_config_hash: 3,
        exec_hash: 4,
    };
    let record = comptest::engine::CellRecord {
        total: 2,
        tests: vec![Err("fuzz".into())],
        footprint: None,
    };
    cache.store(&key, &record);
    let path = base.join(format!("{key}.bin"));
    let good = std::fs::read(&path).unwrap();
    assert_eq!(binary::decode(&good).unwrap(), record);

    // A future version byte: an error for decode *and* probe, a miss for
    // the cache (which then self-heals on the next store).
    let mut wrong = good.clone();
    wrong[3] = binary::VERSION + 1;
    assert!(binary::decode(&wrong).is_err());
    assert!(binary::probe(&wrong).is_err());
    std::fs::write(&path, &wrong).unwrap();
    assert!(
        cache.load(&key).is_none(),
        "wrong version must read as a miss"
    );
    cache.store(&key, &record);
    assert_eq!(cache.load(&key), Some(record.clone()), "store self-heals");

    // An outcome declaring a 2^60-byte body: the length guard must reject
    // it against the remaining buffer before trusting (or allocating) it.
    let mut bomb = Vec::new();
    bomb.extend_from_slice(&binary::MAGIC);
    bomb.push(binary::VERSION);
    bomb.push(0); // flags: does not end in Err
    bomb.push(1); // total = 1
    bomb.push(1); // n_tests = 1
    bomb.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10]); // len = 2^60
    assert!(binary::decode(&bomb).is_err());
    std::fs::write(&path, &bomb).unwrap();
    assert!(
        cache.load(&key).is_none(),
        "oversized length must read as a miss"
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// Runs `comptest worker` with `input` as its entire stdin and returns
/// (exit code, stderr). Stdin closes after the write, so a worker waiting
/// for more frame bytes sees EOF and can never hang the test.
fn run_worker(input: &[u8]) -> (Option<i32>, String) {
    use std::io::Write as _;
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_comptest"))
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn comptest worker");
    // The worker may exit (and close the pipe) before the write finishes —
    // a refused write is part of the scenario, not a test failure.
    let _ = child.stdin.take().expect("piped stdin").write_all(input);
    let out = child.wait_with_output().expect("worker exit");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// One length-prefixed worker frame around `payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(payload);
    bytes
}

/// A valid `Hello` frame (tag 0, magic `CWP`, version 1, end-of-step
/// sampling, stop-on-failure off) — hand-assembled so the hostile bytes
/// *after* the handshake exercise the post-handshake decode path.
fn hello_frame() -> Vec<u8> {
    frame(&[0x00, b'C', b'W', b'P', 0x01, 0x00, 0x00])
}

/// The hostile framings random junk almost never produces: oversized and
/// truncated length prefixes, unknown tags, and garbage arriving after a
/// valid handshake. Every case must end in exit 0 (treated as EOF) or a
/// refused exit 2 — never a panic, never a hang.
#[test]
fn worker_hostile_framings_are_refused_not_panicked() {
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty stdin", Vec::new()),
        ("truncated length prefix", vec![0x07, 0x00]),
        ("length prefix without payload", frame(&[])[..4].to_vec()),
        (
            "declared length exceeds the frame cap",
            0xffff_ffffu32.to_le_bytes().to_vec(),
        ),
        (
            "payload shorter than declared",
            [&100u32.to_le_bytes()[..], &[0x00; 10]].concat(),
        ),
        ("empty payload frame", frame(&[])),
        ("unknown frame tag", frame(&[0xee, 1, 2, 3])),
        (
            "bad protocol magic",
            frame(&[0x00, b'X', b'Y', b'Z', 0x01, 0x00, 0x00]),
        ),
        (
            "future protocol version",
            frame(&[0x00, b'C', b'W', b'P', 0x7f, 0x00, 0x00]),
        ),
        ("garbage after a valid handshake", {
            let mut bytes = hello_frame();
            bytes.extend_from_slice(&frame(&[0xee, 0xff, 0x00, 0x41]));
            bytes
        }),
        (
            "duplicate handshake",
            [hello_frame(), hello_frame()].concat(),
        ),
        ("run frame referencing unknown intern ids", {
            // RunCell (tag 4): cell 0, empty suite, zero scripts, stand id
            // 9 that was never interned — the worker must refuse, not index.
            let mut bytes = hello_frame();
            bytes.extend_from_slice(&frame(&[0x04, 0x00, 0x00, 0x00, 0x09]));
            bytes
        }),
    ];
    for (label, input) in cases {
        let (code, stderr) = run_worker(&input);
        assert!(
            matches!(code, Some(0) | Some(2)),
            "{label}: worker must exit cleanly, got {code:?} (stderr: {stderr})"
        );
        assert!(
            !stderr.contains("panicked"),
            "{label}: worker panicked: {stderr}"
        );
    }
}

fn mutate(base: &str, position: usize, replacement: &str) -> String {
    let mut chars: Vec<char> = base.chars().collect();
    let pos = position % chars.len().max(1);
    let rep: Vec<char> = replacement.chars().collect();
    chars.splice(pos..(pos + rep.len().min(chars.len() - pos)), rep);
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn workbook_parser_never_panics(input in ".{0,300}") {
        let _ = Workbook::parse_str("fuzz.cts", &input);
    }

    #[test]
    fn stand_parser_never_panics(input in ".{0,300}") {
        let _ = TestStand::parse_str("fuzz.stand", &input);
    }

    #[test]
    fn xml_parser_never_panics(input in ".{0,300}") {
        let _ = TestScript::parse_xml(&input);
        let _ = comptest::script::xml::parse(&input);
    }

    #[test]
    fn mutated_workbook_never_panics(position in 0usize..4096, junk in "[\\x00-\\xff]{1,8}") {
        let base = std::fs::read_to_string(comptest::asset("interior_light.cts")).unwrap();
        let mutated = mutate(&base, position, &junk);
        let _ = Workbook::parse_str("mut.cts", &mutated);
    }

    #[test]
    fn mutated_stand_never_panics(position in 0usize..2048, junk in "[\\x00-\\xff]{1,8}") {
        let base = std::fs::read_to_string(comptest::asset("stand_b.stand")).unwrap();
        let mutated = mutate(&base, position, &junk);
        let _ = TestStand::parse_str("mut.stand", &mutated);
    }

    #[test]
    fn mutated_script_never_panics(position in 0usize..8192, junk in "[\\x00-\\xff]{1,8}") {
        let suite = Workbook::load(comptest::asset("interior_light.cts")).unwrap().suite;
        let base = generate(&suite, "interior_illumination").unwrap().to_xml();
        let mutated = mutate(&base, position, &junk);
        let _ = TestScript::parse_xml(&mutated);
    }

    #[test]
    fn expression_parser_never_panics(input in ".{0,64}") {
        let _ = comptest::model::Expr::parse(&input);
    }

    #[test]
    fn sample_mode_parser_never_panics(input in ".{0,48}") {
        let _ = input.parse::<SampleMode>();
    }

    /// Near-miss sample-mode spellings: the `continuous:` prefix followed
    /// by arbitrary bytes must parse or error, never panic.
    #[test]
    fn sample_mode_continuous_suffix_never_panics(suffix in "[\\x00-\\xff]{0,16}") {
        let _ = format!("continuous:{suffix}").parse::<SampleMode>();
        let _ = format!("END-OF-STEP{suffix}").parse::<SampleMode>();
    }

    /// Every truncation of a valid binary cache record is a decode error
    /// — never a panic, never a partial record (decode demands the full
    /// buffer is consumed, so only the untruncated input succeeds).
    #[test]
    fn binary_record_truncation_never_panics(cut in 0usize..1_000_000) {
        let bytes = valid_record_bytes();
        let cut = cut % (bytes.len() + 1);
        let decoded = comptest::engine::cache::binary::decode(&bytes[..cut]);
        prop_assert_eq!(decoded.is_ok(), cut == bytes.len());
        let _ = comptest::engine::cache::binary::probe(&bytes[..cut]);
    }

    /// Single-bit corruption anywhere in a valid binary record either
    /// decodes (the flip hit a value byte) or errors — never panics.
    #[test]
    fn binary_record_bit_flips_never_panic(pos in 0usize..1_000_000, bit in 0u8..8) {
        let mut bytes = valid_record_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = comptest::engine::cache::binary::decode(&bytes);
        let _ = comptest::engine::cache::binary::probe(&bytes);
    }

    /// Arbitrary junk bytes never panic the binary codec.
    #[test]
    fn binary_record_junk_never_panics(junk in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = comptest::engine::cache::binary::decode(&junk);
        let _ = comptest::engine::cache::binary::probe(&junk);
    }

    /// Arbitrary junk on a worker's stdin: the frame codec behind
    /// `comptest worker` must refuse (exit 2) or treat it as EOF (exit 0),
    /// never panic. Each case spawns a real worker process, so the junk is
    /// kept small — the crafted framings below cover the structured cases.
    #[test]
    fn worker_stdin_junk_never_panics(junk in prop::collection::vec(any::<u8>(), 0..128)) {
        let (code, stderr) = run_worker(&junk);
        prop_assert!(
            matches!(code, Some(0) | Some(2)),
            "worker must exit cleanly on junk, got {code:?} (stderr: {stderr})"
        );
        prop_assert!(!stderr.contains("panicked"), "worker panicked: {stderr}");
    }

    /// Hostile cache-directory paths: empty, raw control/8-bit bytes,
    /// deeply nested, embedded NUL-adjacent junk. `DirCache::open` must
    /// return `Ok` (the path happened to be creatable) or a graceful
    /// `CoreError::Cache` — and an opened cache must absorb loads and
    /// stores without panicking, whatever the OS did to the path.
    #[test]
    fn dir_cache_open_never_panics(raw in "[\\x01-\\xff]{0,24}", depth in 0usize..4) {
        let base = std::env::temp_dir().join(format!("comptest-fuzz-{}", std::process::id()));
        let mut path = base.join(&raw);
        for level in 0..depth {
            path = path.join(format!("n{level}"));
        }
        match DirCache::open(&path) {
            Ok(cache) => exercise_cache(&cache),
            Err(e) => prop_assert!(
                matches!(e, CoreError::Cache { .. }),
                "open must fail with CoreError::Cache, got {e:?}"
            ),
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
