//! Fuzz-style robustness: the three text parsers must never panic, whatever
//! bytes arrive — they either produce a value or a diagnostic. Inputs are
//! random strings plus mutated versions of the valid bundled artifacts
//! (mutations keep the input "almost right", where panics usually hide).

use comptest::prelude::*;
use proptest::prelude::*;

fn mutate(base: &str, position: usize, replacement: &str) -> String {
    let mut chars: Vec<char> = base.chars().collect();
    let pos = position % chars.len().max(1);
    let rep: Vec<char> = replacement.chars().collect();
    chars.splice(pos..(pos + rep.len().min(chars.len() - pos)), rep);
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn workbook_parser_never_panics(input in ".{0,300}") {
        let _ = Workbook::parse_str("fuzz.cts", &input);
    }

    #[test]
    fn stand_parser_never_panics(input in ".{0,300}") {
        let _ = TestStand::parse_str("fuzz.stand", &input);
    }

    #[test]
    fn xml_parser_never_panics(input in ".{0,300}") {
        let _ = TestScript::parse_xml(&input);
        let _ = comptest::script::xml::parse(&input);
    }

    #[test]
    fn mutated_workbook_never_panics(position in 0usize..4096, junk in "[\\x00-\\xff]{1,8}") {
        let base = std::fs::read_to_string(comptest::asset("interior_light.cts")).unwrap();
        let mutated = mutate(&base, position, &junk);
        let _ = Workbook::parse_str("mut.cts", &mutated);
    }

    #[test]
    fn mutated_stand_never_panics(position in 0usize..2048, junk in "[\\x00-\\xff]{1,8}") {
        let base = std::fs::read_to_string(comptest::asset("stand_b.stand")).unwrap();
        let mutated = mutate(&base, position, &junk);
        let _ = TestStand::parse_str("mut.stand", &mutated);
    }

    #[test]
    fn mutated_script_never_panics(position in 0usize..8192, junk in "[\\x00-\\xff]{1,8}") {
        let suite = Workbook::load(comptest::asset("interior_light.cts")).unwrap().suite;
        let base = generate(&suite, "interior_illumination").unwrap().to_xml();
        let mutated = mutate(&base, position, &junk);
        let _ = TestScript::parse_xml(&mutated);
    }

    #[test]
    fn expression_parser_never_panics(input in ".{0,64}") {
        let _ = comptest::model::Expr::parse(&input);
    }
}
