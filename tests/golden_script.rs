//! Golden-file regression anchor: the generated XML for the paper's test is
//! a frozen exchange artifact. Any byte change to codegen or the XML writer
//! is a compatibility event for every stand interpreter in the field and
//! must be made deliberately (regenerate with
//! `cargo run --bin comptest -- gen assets/interior_light.cts interior_illumination assets/golden/interior_illumination.xml`).

use comptest::prelude::*;

#[test]
fn generated_script_matches_golden_file() {
    let suite = Workbook::load(comptest::asset("interior_light.cts"))
        .unwrap()
        .suite;
    let generated = generate(&suite, "interior_illumination").unwrap().to_xml();
    let golden = std::fs::read_to_string(comptest::asset("golden/interior_illumination.xml"))
        .expect("golden file exists");
    assert_eq!(
        generated, golden,
        "codegen output changed; see this test's header for how to re-bless"
    );
}

#[test]
fn golden_file_itself_plans_and_runs_everywhere() {
    // The frozen artifact — not a freshly generated script — must stay
    // executable: that is what "portable exchange format" means.
    let xml = std::fs::read_to_string(comptest::asset("golden/interior_illumination.xml")).unwrap();
    let script = TestScript::parse_xml(&xml).unwrap();
    for stand_file in ["stand_a.stand", "stand_b.stand"] {
        let stand = TestStand::load(comptest::asset(stand_file)).unwrap();
        let plan = plan(&script, &stand)
            .unwrap_or_else(|e| panic!("golden script must plan on {stand_file}: {e}"));
        let mut dut = comptest::device_for_stand("interior_light", &stand).unwrap();
        let result = comptest::core::execute(&plan, &mut dut, &ExecOptions::default());
        assert!(result.passed(), "on {stand_file}: {result}");
    }
}

#[test]
fn golden_file_lints_clean() {
    let xml = std::fs::read_to_string(comptest::asset("golden/interior_illumination.xml")).unwrap();
    let script = TestScript::parse_xml(&xml).unwrap();
    let findings = comptest::script::lint(&script);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(
        comptest::script::required_variables(&script),
        vec!["ubatt".to_string()]
    );
}
