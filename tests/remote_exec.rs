//! Remote-executor robustness: worker processes dying mid-campaign.
//!
//! The conformance battery (`executor_conformance.rs`) proves the happy
//! path — remote runs merge the serial bytes across granularities and
//! cache modes. This binary stages the failure modes that need a real
//! `kill -9`:
//!
//! * a murdered worker's in-flight jobs are retried on survivors and the
//!   campaign still joins byte-identical to serial, with `jobs_retried`
//!   accounting for every extra dispatch and the job counters balanced;
//! * with retries disabled, the join reports `JobsLost` naming the exact
//!   lost jobs instead of returning a silently truncated matrix;
//! * a worker command that cannot spawn at all degrades gracefully to
//!   in-process execution, still byte-identical.
//!
//! The worker holds each job for `COMPTEST_WORKER_HOLD_MS` so a kill
//! lands while a job is reliably in flight.

use std::sync::mpsc;

use comptest::core::CoreError;
use comptest::engine::HOLD_MS_ENV;
use comptest::prelude::*;

fn load_suites() -> Vec<TestSuite> {
    comptest::load_bundled_suites().expect("bundled workbooks load")
}

fn load_stand(name: &str) -> TestStand {
    TestStand::load(comptest::asset(name)).unwrap()
}

/// The real `comptest` binary as the worker command — `current_exe()` in
/// a test harness is the harness, which has no `worker` subcommand.
fn worker_command() -> Vec<String> {
    vec![
        env!("CARGO_BIN_EXE_comptest").to_string(),
        "worker".to_string(),
    ]
}

/// SIGKILLs a pid — no shutdown frame, no SIGTERM grace, exactly the
/// "worker machine caught fire" case the retry path exists for.
fn kill_nine(pid: u32) {
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status();
}

/// Drains the event stream on a thread, SIGKILLing the first spawned
/// worker the moment its `WorkerSpawned` event appears. Returns
/// (killed pid, observed `WorkerLost` count).
fn kill_first_worker(stream: EventStream) -> std::thread::JoinHandle<(Option<u32>, usize)> {
    std::thread::spawn(move || {
        let mut killed = None;
        let mut lost = 0usize;
        for event in stream {
            match event {
                EngineEvent::WorkerSpawned { pid, .. } if killed.is_none() => {
                    kill_nine(pid);
                    killed = Some(pid);
                }
                EngineEvent::WorkerLost { .. } => lost += 1,
                _ => {}
            }
        }
        (killed, lost)
    })
}

#[test]
fn killed_worker_jobs_are_retried_byte_identically() {
    let suites = load_suites();
    let entries = comptest::bundled_entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];

    let reference = Campaign::new(&entries, &stands)
        .launch(&SerialExecutor)
        .unwrap()
        .join()
        .unwrap();

    let executor = RemoteExecutor::new(2)
        .command(worker_command())
        .env(HOLD_MS_ENV, "200");
    let obs = Recorder::enabled();
    let mut handle = Campaign::new(&entries, &stands)
        .recorder(obs.clone())
        .launch(&executor)
        .unwrap();
    let watcher = kill_first_worker(handle.events());
    let outcome = handle.join().expect("retries must recover the campaign");
    let (killed, lost_events) = watcher.join().expect("watcher thread");

    assert!(
        killed.is_some(),
        "fixture must have spawned a worker to kill"
    );
    assert!(
        lost_events >= 1,
        "the murdered worker must surface as WorkerLost"
    );
    assert_eq!(
        outcome, reference,
        "retried jobs must merge the exact serial bytes"
    );
    let metrics = obs.metrics().unwrap();
    assert!(
        metrics.counter("jobs_retried") >= 1,
        "the in-flight job of a SIGKILLed worker must be retried ({:?})",
        metrics.counters
    );
    // Retries add dispatch attempts, not planned jobs: the balance the
    // engine documents for every executor must survive a worker death.
    assert_eq!(
        metrics.counter("jobs_executed")
            + metrics.counter("jobs_cached")
            + metrics.counter("jobs_cancelled"),
        metrics.counter("jobs_planned"),
        "job accounting must balance after a retry ({:?})",
        metrics.counters
    );
}

#[test]
fn retry_limit_zero_reports_the_exact_lost_jobs() {
    let suites = load_suites();
    let entries = comptest::bundled_entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];
    let cell_labels: Vec<String> = entries
        .iter()
        .map(|e| format!("{} @ {}", e.suite.name, stand_b.name()))
        .collect();

    let executor = RemoteExecutor::new(1)
        .command(worker_command())
        .env(HOLD_MS_ENV, "200")
        .retry_limit(0);
    let mut handle = Campaign::new(&entries, &stands).launch(&executor).unwrap();
    let watcher = kill_first_worker(handle.events());
    let err = handle
        .join()
        .expect_err("a lost job with retries disabled must fail the join");
    let (killed, _) = watcher.join().expect("watcher thread");
    assert!(
        killed.is_some(),
        "fixture must have spawned a worker to kill"
    );

    match err {
        CoreError::JobsLost { lost, jobs } => {
            assert_eq!(lost, jobs.len(), "count and label list must agree");
            assert!(!jobs.is_empty(), "the lost set must name the lost jobs");
            for job in &jobs {
                assert!(
                    cell_labels.contains(job),
                    "lost label {job:?} must name a planned cell ({cell_labels:?})"
                );
            }
        }
        other => panic!("expected JobsLost, got {other:?}"),
    }
}

#[test]
fn unspawnable_worker_command_degrades_to_in_process_execution() {
    let suites = load_suites();
    let entries = comptest::bundled_entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    let reference = Campaign::new(&entries, &stands)
        .launch(&SerialExecutor)
        .unwrap()
        .join()
        .unwrap();

    let executor = RemoteExecutor::new(2).command(vec![
        "/nonexistent/comptest-worker-binary-that-cannot-exist".to_string(),
    ]);
    let mut handle = Campaign::new(&entries, &stands).launch(&executor).unwrap();
    let (spawned_tx, spawned_rx) = mpsc::channel();
    let stream = handle.events();
    let watcher = std::thread::spawn(move || {
        for event in stream {
            if matches!(event, EngineEvent::WorkerSpawned { .. }) {
                let _ = spawned_tx.send(());
            }
        }
    });
    let outcome = handle
        .join()
        .expect("zero spawnable workers must degrade, not fail");
    watcher.join().expect("watcher thread");
    assert!(
        spawned_rx.try_recv().is_err(),
        "an unspawnable command must not report spawned workers"
    );
    assert_eq!(
        outcome, reference,
        "in-process degradation must merge the exact serial bytes"
    );
}
