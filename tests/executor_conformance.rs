//! The executor conformance suite: one shared contract battery that every
//! [`CampaignExecutor`] must pass, instantiated for Serial / Pooled /
//! Async × cache off / memory / dir.
//!
//! This replaces the ad-hoc per-executor duplication that used to live in
//! `engine_equivalence.rs` — the contract is written once, and adding an
//! executor (or a cache backend) means adding one subject row, not a new
//! copy of every test:
//!
//! * **determinism** — the joined `CampaignOutcome` is byte-identical to
//!   the `SerialExecutor` reference at both granularities, cold and warm
//!   (a warm cache run must merge the exact bytes a cold run produces,
//!   including per-test sim timing in JUnit/text reports);
//! * **cancellation** — a pre-cancelled token skips every job and
//!   accounts for all of them;
//! * **stop-on-first-fail** — width-1 subjects truncate to the serial
//!   prefix, and a *cached* failure trips the latch exactly like an
//!   executed one;
//! * **empty matrix** — rejected by validation before any executor runs;
//! * **JobsLost** — a worker dying mid-job surfaces as an error, never as
//!   a silently truncated (possibly all-green) result;
//! * **cache audit** — `cache_verify` passes on a truthful cache and
//!   raises `CacheMismatch` on a poisoned one;
//! * **observability** — enabling a `Recorder` changes no result or
//!   report byte; counters balance (`jobs_executed + jobs_cached +
//!   jobs_cancelled == jobs_planned`, `spans_opened == spans_closed`) on
//!   clean runs, under cancellation, under `stop_on_first_fail`, and on
//!   warm cache runs; corrupt cache entries surface as
//!   `CellCacheCorrupt` warnings and a nonzero `cache_corrupt_entries`
//!   counter instead of silent misses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use comptest::core::campaign::CampaignEntry;
use comptest::core::hash::FootprintKey;
use comptest::core::CoreError;
use comptest::dut::{Behavior, Device, PinBinding, PortValue};
use comptest::engine::{CacheKeying, CampaignCache, DirCache, MemoryCache};
use comptest::model::SimTime;
use comptest::prelude::*;

/// Both cache keying schemes, for batteries that must prove them
/// byte-equivalent.
const KEYINGS: [CacheKeying; 2] = [CacheKeying::Full, CacheKeying::Footprint];

// ---------------------------------------------------------------------------
// Subjects and cache setups
// ---------------------------------------------------------------------------

/// One executor under test.
struct Subject {
    name: &'static str,
    build: fn() -> Box<dyn CampaignExecutor>,
    /// Runs jobs off the launch thread and reports lost jobs instead of
    /// propagating worker panics (the serial executor runs inline, so a
    /// panicking job panics `launch` itself).
    catches_lost_jobs: bool,
    /// Processes jobs strictly in plan order, so stop-on-first-fail
    /// truncation is byte-deterministic against serial.
    serial_order: bool,
}

fn subjects() -> Vec<Subject> {
    vec![
        Subject {
            name: "serial",
            build: || Box::new(SerialExecutor),
            catches_lost_jobs: false,
            serial_order: true,
        },
        Subject {
            name: "pooled(1)",
            build: || Box::new(PooledExecutor::new(1)),
            catches_lost_jobs: true,
            serial_order: true,
        },
        Subject {
            name: "pooled(4)",
            build: || Box::new(PooledExecutor::new(4)),
            catches_lost_jobs: true,
            serial_order: false,
        },
        Subject {
            name: "async(1)",
            build: || Box::new(AsyncExecutor::new(1)),
            catches_lost_jobs: true,
            serial_order: true,
        },
        Subject {
            name: "async(256x2)",
            build: || Box::new(AsyncExecutor::new(256).sharded(2)),
            catches_lost_jobs: true,
            serial_order: false,
        },
        Subject {
            name: "remote(1)",
            build: || Box::new(remote_executor(1)),
            catches_lost_jobs: true,
            serial_order: true,
        },
        Subject {
            name: "remote(2)",
            build: || Box::new(remote_executor(2)),
            catches_lost_jobs: true,
            serial_order: false,
        },
    ]
}

/// A remote executor whose worker command is the real `comptest` binary —
/// `current_exe()` inside a test harness is the harness itself, which has
/// no `worker` subcommand.
fn remote_executor(workers: usize) -> RemoteExecutor {
    RemoteExecutor::new(workers).command(vec![
        env!("CARGO_BIN_EXE_comptest").to_string(),
        "worker".to_string(),
    ])
}

/// Cache backends the battery instantiates each subject against.
#[derive(Clone, Copy, PartialEq)]
enum CacheSetup {
    Off,
    Memory,
    Dir,
}

const CACHES: [CacheSetup; 3] = [CacheSetup::Off, CacheSetup::Memory, CacheSetup::Dir];

impl CacheSetup {
    fn label(self) -> &'static str {
        match self {
            CacheSetup::Off => "cache=off",
            CacheSetup::Memory => "cache=memory",
            CacheSetup::Dir => "cache=dir",
        }
    }

    /// A fresh cache instance (dir caches get a unique temp directory,
    /// removed by `TempDir`'s drop).
    fn build(self, scratch: &TempDir) -> Option<Arc<dyn CampaignCache>> {
        match self {
            CacheSetup::Off => None,
            CacheSetup::Memory => Some(Arc::new(MemoryCache::new())),
            CacheSetup::Dir => Some(Arc::new(
                DirCache::open(scratch.fresh_subdir()).expect("temp cache dir"),
            )),
        }
    }
}

/// Minimal scoped temp directory (no tempfile crate in the container).
struct TempDir {
    path: std::path::PathBuf,
    counter: AtomicUsize,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("comptest-conformance-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("temp dir");
        Self {
            path,
            counter: AtomicUsize::new(0),
        }
    }

    fn fresh_subdir(&self) -> std::path::PathBuf {
        self.path
            .join(format!("c{}", self.counter.fetch_add(1, Ordering::Relaxed)))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn load_suites() -> Vec<TestSuite> {
    comptest::load_bundled_suites().expect("bundled workbooks load")
}

fn entries(suites: &[TestSuite]) -> Vec<CampaignEntry<'_>> {
    comptest::bundled_entries(suites)
}

fn load_stand(name: &str) -> TestStand {
    TestStand::load(comptest::asset(name)).unwrap()
}

// ---------------------------------------------------------------------------
// Determinism: every subject × granularity × cache merges the serial bytes,
// cold and warm.
// ---------------------------------------------------------------------------

#[test]
fn conformance_determinism_vs_serial_cold_and_warm() {
    let scratch = TempDir::new("determinism");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        let reference = Campaign::new(&entries, &stands)
            .granularity(granularity)
            .launch(&SerialExecutor)
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(reference.result.cells.len(), 10);

        for subject in subjects() {
            for setup in CACHES {
                let mut campaign = Campaign::new(&entries, &stands).granularity(granularity);
                if let Some(cache) = setup.build(&scratch) {
                    campaign = campaign.cache(cache);
                }
                let executor = (subject.build)();
                // Cold run (populates the cache when one is configured).
                let cold = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                assert_eq!(
                    cold,
                    reference,
                    "{granularity}/{}/{} cold diverged",
                    subject.name,
                    setup.label()
                );
                if setup == CacheSetup::Off {
                    continue;
                }
                // Warm run: every job served from cache, still the exact
                // serial bytes, and only CellCached events on the stream.
                let mut handle = campaign.launch(executor.as_ref()).unwrap();
                let events: Vec<EngineEvent> = handle.events().collect();
                let warm = handle.join().unwrap();
                assert_eq!(
                    warm,
                    reference,
                    "{granularity}/{}/{} warm diverged",
                    subject.name,
                    setup.label()
                );
                let cached = events
                    .iter()
                    .filter(|e| matches!(e, EngineEvent::CellCached { .. }))
                    .count();
                let executed = events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            EngineEvent::TestStarted { .. } | EngineEvent::JobStarted { .. }
                        )
                    })
                    .count();
                assert!(
                    cached > 0 && executed == 0,
                    "{granularity}/{}/{} warm run must be all hits ({cached} cached, \
                     {executed} executed)",
                    subject.name,
                    setup.label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cache keying: footprint-keyed warm runs are byte-identical to full-keyed
// and to cold, on every executor × granularity × cache backend.
// ---------------------------------------------------------------------------

#[test]
fn conformance_footprint_and_full_keying_are_byte_identical() {
    let scratch = TempDir::new("keying");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        let reference = Campaign::new(&entries, &stands)
            .granularity(granularity)
            .run(&SerialExecutor)
            .unwrap();
        for subject in subjects() {
            for setup in [CacheSetup::Memory, CacheSetup::Dir] {
                for keying in KEYINGS {
                    let label =
                        format!("{granularity}/{}/{}/{keying}", subject.name, setup.label());
                    let obs = Recorder::enabled();
                    let campaign = Campaign::new(&entries, &stands)
                        .granularity(granularity)
                        .cache_keying(keying)
                        .cache(setup.build(&scratch).unwrap())
                        .recorder(obs.clone());
                    let executor = (subject.build)();
                    let cold = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                    assert_eq!(cold.result, reference, "{label}: cold diverged");
                    let warm = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                    assert_eq!(warm.result, reference, "{label}: warm diverged");

                    // One recorder across both runs: the cold run misses
                    // (and so invalidates) every cell, the warm run serves
                    // every job from the cache under either keying.
                    let metrics = obs.metrics().unwrap();
                    assert_eq!(
                        metrics.counter("jobs_cached"),
                        campaign.job_count() as u64,
                        "{label}: warm run must be all hits ({:?})",
                        metrics.counters
                    );
                    assert_eq!(
                        metrics.counter("cells_invalidated"),
                        (entries.len() * stands.len()) as u64,
                        "{label}: cold run must have invalidated every cell"
                    );
                    match keying {
                        CacheKeying::Footprint => {
                            assert_eq!(
                                metrics.counter("cache_hits_footprint"),
                                metrics.counter("cache_hits"),
                                "{label}: footprint keying must tag every hit"
                            );
                            assert!(
                                metrics.counter("footprint_bytes") > 0,
                                "{label}: footprints must be accounted"
                            );
                        }
                        CacheKeying::Full => assert_eq!(
                            metrics.counter("cache_hits_footprint"),
                            0,
                            "{label}: full keying must not count footprint hits"
                        ),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Record-format compatibility: version-1 binary records (written before the
// footprint section existed) remain valid hits — never errors.
// ---------------------------------------------------------------------------

#[test]
fn conformance_v1_binary_records_remain_valid_hits() {
    let scratch = TempDir::new("v1compat");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];
    let reference = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .unwrap();

    // Populate under full keying: those records carry no footprint, so
    // their byte stream is exactly the v1 layout (v2 = v1 plus an optional
    // footprint section) — rewriting the version byte forges a faithful
    // pre-footprint store.
    let dir = scratch.fresh_subdir();
    let _ = Campaign::new(&entries, &stands)
        .cache_keying(CacheKeying::Full)
        .cache(Arc::new(DirCache::open(&dir).expect("cache dir")))
        .run(&SerialExecutor)
        .unwrap();
    let mut downgraded = 0usize;
    for entry in std::fs::read_dir(&dir).expect("cache dir listing") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("bin") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("record bytes");
        assert_eq!(&bytes[..3], b"CCR");
        bytes[3] = 1; // version byte
        std::fs::write(&path, &bytes).expect("downgrade record");
        downgraded += 1;
    }
    assert_eq!(downgraded, entries.len(), "one binary record per cell");

    // A warm run over the v1 store: every job a hit, nothing corrupt,
    // byte-identical result.
    let obs = Recorder::enabled();
    let warm = Campaign::new(&entries, &stands)
        .cache_keying(CacheKeying::Full)
        .cache(Arc::new(DirCache::open(&dir).expect("cache dir")))
        .recorder(obs.clone())
        .run(&SerialExecutor)
        .unwrap();
    assert_eq!(warm, reference, "v1 records must serve identical bytes");
    let metrics = obs.metrics().unwrap();
    assert_eq!(
        metrics.counter("jobs_cached"),
        metrics.counter("jobs_planned"),
        "v1 store must serve every job ({:?})",
        metrics.counters
    );
    assert_eq!(
        metrics.counter("cache_corrupt_entries"),
        0,
        "v1 records are valid, not corrupt"
    );
}

/// A fully-cached run feeds the exact same bytes into reports as a cold
/// one — per-test simulated timing included (the cached record carries the
/// full step results rather than zeroing them).
#[test]
fn conformance_warm_reports_keep_sim_timing() {
    let scratch = TempDir::new("timing");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    let cold = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .run(&SerialExecutor)
        .unwrap();
    let cold_junit = comptest::report::campaign_junit_xml(&cold);
    assert!(
        cold_junit.contains("time=\"3."),
        "fixture should have nonzero per-suite sim timing:\n{cold_junit}"
    );

    for setup in [CacheSetup::Memory, CacheSetup::Dir] {
        let campaign = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(setup.build(&scratch).unwrap());
        let _ = campaign.run(&SerialExecutor).unwrap(); // populate
        let warm = campaign.run(&AsyncExecutor::new(64)).unwrap();
        assert_eq!(
            comptest::report::campaign_junit_xml(&warm),
            cold_junit,
            "{}: warm JUnit must carry identical sim timing",
            setup.label()
        );
        assert_eq!(
            comptest::report::campaign_table(&warm).to_string(),
            comptest::report::campaign_table(&cold).to_string(),
            "{}: warm text table must match",
            setup.label()
        );
    }
}

// ---------------------------------------------------------------------------
// Cancellation: a pre-cancelled token skips everything, accountably.
// ---------------------------------------------------------------------------

#[test]
fn conformance_precancelled_token_skips_every_job() {
    let scratch = TempDir::new("cancel");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        for subject in subjects() {
            for setup in CACHES {
                let token = CancelToken::new();
                let mut campaign = Campaign::new(&entries, &stands)
                    .granularity(granularity)
                    .cancel_token(token.clone());
                if let Some(cache) = setup.build(&scratch) {
                    campaign = campaign.cache(cache);
                }
                token.cancel();
                let executor = (subject.build)();
                let outcome = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                assert_eq!(
                    (outcome.result.cells.len(), outcome.cancelled),
                    (0, campaign.job_count()),
                    "{granularity}/{}/{}: every job skipped and accounted",
                    subject.name,
                    setup.label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// stop_on_first_fail: serial-order subjects truncate byte-identically, and
// cached failures trip the latch exactly like executed ones.
// ---------------------------------------------------------------------------

#[test]
fn conformance_stop_on_first_fail_truncates_like_serial() {
    let scratch = TempDir::new("stopfail");
    let suites = load_suites();
    let entries = entries(&suites);
    let mini = load_stand("stand_minimal.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&mini, &stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        let reference = Campaign::new(&entries, &stands)
            .granularity(granularity)
            .stop_on_first_fail(true)
            .launch(&SerialExecutor)
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(reference.result.cells.len(), 1, "{}", reference.result);
        assert!(!reference.result.all_green());
        assert!(reference.cancelled > 0);

        for subject in subjects().into_iter().filter(|s| s.serial_order) {
            for setup in CACHES {
                for keying in KEYINGS {
                    // Keying is irrelevant without a cache — one arm suffices.
                    if setup == CacheSetup::Off && keying == CacheKeying::Full {
                        continue;
                    }
                    let mut campaign = Campaign::new(&entries, &stands)
                        .granularity(granularity)
                        .stop_on_first_fail(true)
                        .cache_keying(keying);
                    if let Some(cache) = setup.build(&scratch) {
                        campaign = campaign.cache(cache);
                    }
                    let executor = (subject.build)();
                    let cold = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                    assert_eq!(
                        cold,
                        reference,
                        "{granularity}/{}/{}/{keying} cold truncation diverged",
                        subject.name,
                        setup.label()
                    );
                    if setup == CacheSetup::Off {
                        continue;
                    }
                    // Warm: the first cell's failure is served from cache and
                    // must trip the latch deterministically — same prefix,
                    // same cancelled count — under either keying.
                    let warm = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                    assert_eq!(
                        warm,
                        reference,
                        "{granularity}/{}/{}/{keying}: cached failure must trip the latch \
                         like an executed one",
                        subject.name,
                        setup.label()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Empty matrix: validation rejects before any executor sees the campaign.
// ---------------------------------------------------------------------------

#[test]
fn conformance_empty_matrix_is_rejected_by_every_subject() {
    let suites = load_suites();
    let entries_vec = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    for subject in subjects() {
        let executor = (subject.build)();
        let no_entries = Campaign::new(&[], &stands)
            .launch(executor.as_ref())
            .unwrap_err();
        assert!(
            matches!(no_entries, CoreError::InvalidCampaign(_)),
            "{}: empty entries must be InvalidCampaign, got {no_entries:?}",
            subject.name
        );
        let no_stands = Campaign::new(&entries_vec, &[])
            .launch(executor.as_ref())
            .unwrap_err();
        assert!(
            matches!(no_stands, CoreError::InvalidCampaign(_)),
            "{}: empty stands must be InvalidCampaign, got {no_stands:?}",
            subject.name
        );
    }
}

// ---------------------------------------------------------------------------
// JobsLost: a worker dying mid-job is an error, never a truncated result.
// ---------------------------------------------------------------------------

/// A behaviour that panics as soon as simulation time advances — the DUT
/// model blowing up mid-execution, after the job was admitted.
#[derive(Debug)]
struct ExplodingBehavior;

impl Behavior for ExplodingBehavior {
    fn name(&self) -> &str {
        "exploding"
    }
    fn inputs(&self) -> &[&'static str] {
        &["sw"]
    }
    fn outputs(&self) -> &[&'static str] {
        &["out"]
    }
    fn reset(&mut self, _now: SimTime) {}
    fn set_input(&mut self, _port: &str, _value: PortValue, _now: SimTime) {}
    fn advance(&mut self, now: SimTime) {
        assert!(now.is_zero(), "DUT model bug: boom at {now}");
    }
    fn next_event(&self) -> Option<SimTime> {
        None
    }
    fn output(&self, _port: &str) -> PortValue {
        PortValue::Bool(false)
    }
}

/// A one-test suite whose DUT panics mid-run.
fn exploding_fixture() -> (TestSuite, TestStand) {
    let wb = "\
[suite]
name = exploding

[signals]
name, kind,       direction, init
SW,   pin:DS_FL,  input,     Open

[status]
status, method, attribut, var, nom, min, max
Open,   put_r,  r,        ,    0,   0,   2

[test boom]
step, dt,  SW
0,    0.5, Open
";
    let suite = Workbook::parse_str("exploding.cts", wb).unwrap().suite;
    let stand = TestStand::parse_str("a.stand", comptest::core::PAPER_STAND_A).unwrap();
    (suite, stand)
}

fn exploding_entries(suite: &TestSuite) -> Vec<CampaignEntry<'_>> {
    vec![CampaignEntry {
        suite,
        device_factory: Box::new(|| {
            Device::builder(Box::new(ExplodingBehavior))
                .pin("DS_FL", PinBinding::InputActiveLow { port: "sw" })
                .build()
        }),
    }]
}

#[test]
fn conformance_dead_workers_surface_as_jobs_lost() {
    let (suite, stand) = exploding_fixture();
    let entries = exploding_entries(&suite);
    let stands = [&stand];

    for granularity in [Granularity::Cell, Granularity::Test] {
        for subject in subjects() {
            let campaign = Campaign::new(&entries, &stands).granularity(granularity);
            let executor = (subject.build)();
            if subject.catches_lost_jobs {
                let err = campaign
                    .launch(executor.as_ref())
                    .unwrap()
                    .join()
                    .unwrap_err();
                assert!(
                    matches!(err, CoreError::JobsLost { lost, .. } if lost > 0),
                    "{granularity}/{}: expected JobsLost, got {err:?}",
                    subject.name
                );
            } else {
                // The serial executor runs jobs on the launch thread: the
                // DUT panic propagates to the caller instead of vanishing.
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = campaign.launch(executor.as_ref());
                }));
                assert!(
                    panicked.is_err(),
                    "{granularity}/{}: inline execution must propagate the panic",
                    subject.name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cache audit mode: truthful caches verify clean, poisoned caches error.
// ---------------------------------------------------------------------------

#[test]
fn conformance_cache_verify_passes_on_truth_and_catches_poison() {
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];
    let reference = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .unwrap();

    for granularity in [Granularity::Cell, Granularity::Test] {
        for keying in KEYINGS {
            let cache = Arc::new(MemoryCache::new());
            let campaign = Campaign::new(&entries, &stands)
                .granularity(granularity)
                .cache_keying(keying)
                .cache(cache.clone());
            let _ = campaign.run(&SerialExecutor).unwrap(); // populate

            // Truthful cache: verify re-executes everything and joins clean.
            let verify = Campaign::new(&entries, &stands)
                .granularity(granularity)
                .cache_keying(keying)
                .cache(cache.clone())
                .cache_verify(true);
            for subject in subjects() {
                let executor = (subject.build)();
                let outcome = verify.launch(executor.as_ref()).unwrap().join().unwrap();
                assert_eq!(
                    outcome.result, reference,
                    "{granularity}/{}/{keying}: verify mode must produce the cold result",
                    subject.name
                );
            }

            // Poison one record: flip the first cached test outcome into a
            // planning error. Verify mode must now fail the join. (Each
            // verify run re-stores the executed truth — the cache
            // self-heals — so the poison is re-applied before every
            // subject.) The record address depends on the keying scheme.
            let key = match keying {
                CacheKeying::Full => comptest::core::CellKey::for_cell(
                    &entries[0],
                    &stand_b,
                    &ExecOptions::default(),
                ),
                CacheKeying::Footprint => {
                    FootprintKey::for_cell(&entries[0], &stand_b, &ExecOptions::default(), "")
                        .cell_key()
                }
            };
            let truth = cache.load(&key).expect("populated record");
            for subject in subjects() {
                let mut record = truth.clone();
                record.tests[0] = Err("poisoned cache entry".into());
                cache.store(&key, &record);
                let executor = (subject.build)();
                let err = verify
                    .launch(executor.as_ref())
                    .unwrap()
                    .join()
                    .unwrap_err();
                assert!(
                    matches!(err, CoreError::CacheMismatch { mismatches } if mismatches > 0),
                    "{granularity}/{}/{keying}: expected CacheMismatch, got {err:?}",
                    subject.name
                );
            }
            // Verify mode re-executed and re-stored the truth: the cache
            // has self-healed, and a fresh audit passes again.
            let healed = verify.launch(&SerialExecutor).unwrap().join().unwrap();
            assert_eq!(healed.result, reference);
        }
    }
}

// ---------------------------------------------------------------------------
// Observability: recording is invisible in results and reports, and the
// counters balance under every termination mode.
// ---------------------------------------------------------------------------

/// Asserts the counter and span invariants every joined campaign keeps:
/// every planned job is executed, served from cache, or cancelled — and
/// every span opened was closed.
fn assert_obs_invariants(metrics: &comptest::engine::MetricsSnapshot, label: &str) {
    assert_eq!(
        metrics.counter("jobs_executed")
            + metrics.counter("jobs_cached")
            + metrics.counter("jobs_cancelled"),
        metrics.counter("jobs_planned"),
        "{label}: job accounting must balance ({:?})",
        metrics.counters
    );
    assert_eq!(
        metrics.counter("spans_opened"),
        metrics.counter("spans_closed"),
        "{label}: every span opened must close ({:?})",
        metrics.counters
    );
}

#[test]
fn conformance_observed_runs_are_byte_identical_and_balanced() {
    let scratch = TempDir::new("obs");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a, &stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        for subject in subjects() {
            for setup in CACHES {
                let executor = (subject.build)();
                let label = format!("{granularity}/{}/{}", subject.name, setup.label());

                let mut plain = Campaign::new(&entries, &stands).granularity(granularity);
                let mut observed = Campaign::new(&entries, &stands).granularity(granularity);
                if let Some(cache) = setup.build(&scratch) {
                    // One shared cache per pairing, so the observed run
                    // sees the same hit/miss pattern as the plain one.
                    plain = plain.cache(cache.clone());
                    observed = observed.cache(cache);
                }
                let obs = Recorder::enabled();
                let observed = observed.recorder(obs.clone());

                // Cold pair: same bytes in the outcome and in every report.
                let cold_plain = plain.launch(executor.as_ref()).unwrap().join().unwrap();
                let obs_cold = Recorder::enabled();
                let cold_observed = Campaign::new(&entries, &stands)
                    .granularity(granularity)
                    .recorder(obs_cold.clone())
                    .launch(executor.as_ref())
                    .unwrap()
                    .join()
                    .unwrap();
                assert_eq!(cold_observed, cold_plain, "{label}: cold outcome diverged");
                assert_eq!(
                    comptest::report::campaign_junit_xml(&cold_observed.result),
                    comptest::report::campaign_junit_xml(&cold_plain.result),
                    "{label}: cold JUnit diverged"
                );
                assert_eq!(
                    comptest::report::campaign_table(&cold_observed.result).to_string(),
                    comptest::report::campaign_table(&cold_plain.result).to_string(),
                    "{label}: cold text table diverged"
                );
                let cold_metrics = obs_cold.metrics().unwrap();
                assert_obs_invariants(&cold_metrics, &label);
                assert_eq!(
                    cold_metrics.counter("jobs_planned"),
                    plain.job_count() as u64,
                    "{label}"
                );
                assert!(cold_metrics.counter("spans_opened") > 0, "{label}");
                assert!(cold_metrics.counter("steps_executed") > 0, "{label}");

                // Warm run on the observed campaign (its first launch, so a
                // cache means everything comes out of it — the plain run
                // populated it).
                let warm = observed.launch(executor.as_ref()).unwrap().join().unwrap();
                assert_eq!(warm, cold_plain, "{label}: warm outcome diverged");
                let metrics = obs.metrics().unwrap();
                assert_obs_invariants(&metrics, &label);
                if setup != CacheSetup::Off {
                    assert_eq!(
                        metrics.counter("jobs_cached"),
                        metrics.counter("jobs_planned"),
                        "{label}: warm run must be all cache hits ({:?})",
                        metrics.counters
                    );
                    assert!(metrics.counter("cache_hits") > 0, "{label}");
                    assert_eq!(metrics.counter("cache_corrupt_entries"), 0, "{label}");
                }
            }
        }
    }
}

#[test]
fn conformance_obs_counters_balance_under_cancellation() {
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        for subject in subjects() {
            let label = format!("{granularity}/{}", subject.name);
            let token = CancelToken::new();
            let obs = Recorder::enabled();
            let campaign = Campaign::new(&entries, &stands)
                .granularity(granularity)
                .cancel_token(token.clone())
                .recorder(obs.clone());
            token.cancel();
            let executor = (subject.build)();
            let outcome = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
            let metrics = obs.metrics().unwrap();
            assert_obs_invariants(&metrics, &label);
            assert_eq!(
                metrics.counter("jobs_cancelled"),
                outcome.cancelled as u64,
                "{label}"
            );
            assert_eq!(
                metrics.counter("jobs_cancelled"),
                campaign.job_count() as u64,
                "{label}: a pre-cancelled token cancels every job"
            );
        }
    }
}

#[test]
fn conformance_obs_counters_balance_under_stop_on_first_fail() {
    let suites = load_suites();
    let entries = entries(&suites);
    let mini = load_stand("stand_minimal.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&mini, &stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        for subject in subjects() {
            let label = format!("{granularity}/{}", subject.name);
            let obs = Recorder::enabled();
            let campaign = Campaign::new(&entries, &stands)
                .granularity(granularity)
                .stop_on_first_fail(true)
                .recorder(obs.clone());
            let executor = (subject.build)();
            let outcome = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
            if subject.serial_order {
                // Wide subjects may admit every job before the latch trips;
                // only in-order ones are guaranteed a truncation.
                assert!(outcome.cancelled > 0, "{label}: fixture must truncate");
            }
            let metrics = obs.metrics().unwrap();
            assert_obs_invariants(&metrics, &label);
            assert_eq!(
                metrics.counter("jobs_cancelled"),
                outcome.cancelled as u64,
                "{label}"
            );
        }
    }
}

/// Overwrites every cache record in `dir` with an undecodable body for its
/// format — present but corrupt, not missing — and returns how many files
/// were hit. Binary records keep a valid magic/version and truncate
/// mid-varint; JSON records truncate mid-document.
fn clobber_records(dir: &std::path::Path) -> usize {
    let mut clobbered = 0usize;
    for entry in std::fs::read_dir(dir).expect("cache dir listing") {
        let path = entry.expect("dir entry").path();
        let garbage: &[u8] = match path.extension().and_then(|e| e.to_str()) {
            Some("bin") => b"CCR\x01\x00\xff\xff\xff",
            Some("json") => b"{\"version\": 1, \"tests\": [tru",
            _ => continue,
        };
        std::fs::write(&path, garbage).expect("clobber record");
        clobbered += 1;
    }
    clobbered
}

#[test]
fn conformance_corrupt_cache_entries_warn_count_and_reexecute() {
    let scratch = TempDir::new("corrupt");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    let reference = Campaign::new(&entries, &stands)
        .run(&SerialExecutor)
        .unwrap();

    let cache_dir = scratch.fresh_subdir();
    let campaign = Campaign::new(&entries, &stands)
        .cache(Arc::new(DirCache::open(&cache_dir).expect("cache dir")));
    let _ = campaign.run(&SerialExecutor).unwrap(); // populate

    // Corrupt every record on disk (binary by default): undecodable, not
    // missing.
    let clobbered = clobber_records(&cache_dir);
    assert!(clobbered > 0, "populate run must have written records");

    for subject in subjects() {
        let obs = Recorder::enabled();
        let warm = Campaign::new(&entries, &stands)
            .cache(Arc::new(DirCache::open(&cache_dir).expect("cache dir")))
            .recorder(obs.clone());
        let mut handle = warm.launch((subject.build)().as_ref()).unwrap();
        let events: Vec<EngineEvent> = handle.events().collect();
        let outcome = handle.join().unwrap();
        // Corruption must not poison the result — every cell re-executes.
        assert_eq!(
            outcome.result, reference,
            "{}: corrupt entries must fall back to execution",
            subject.name
        );
        let warnings = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::CellCacheCorrupt { .. }))
            .count();
        assert_eq!(
            warnings, clobbered,
            "{}: one warning per corrupt record",
            subject.name
        );
        let metrics = obs.metrics().unwrap();
        assert_eq!(
            metrics.counter("cache_corrupt_entries"),
            clobbered as u64,
            "{}",
            subject.name
        );
        assert_obs_invariants(&metrics, subject.name);
        // The re-executed outcomes overwrite the clobbered records, so the
        // cache self-heals; restore the corruption for the next subject.
        assert_eq!(
            clobber_records(&cache_dir),
            clobbered,
            "{}: self-heal must have re-written every record",
            subject.name
        );
    }

    // The JSON fallback format corrupts (and self-heals) the same way.
    let json_dir = scratch.fresh_subdir();
    let json_campaign = Campaign::new(&entries, &stands).cache(Arc::new(
        DirCache::open(&json_dir)
            .expect("cache dir")
            .with_format(comptest::engine::RecordFormat::Json),
    ));
    let _ = json_campaign.run(&SerialExecutor).unwrap(); // populate
    let json_clobbered = clobber_records(&json_dir);
    assert_eq!(json_clobbered, clobbered, "same cells, same record count");
    let obs = Recorder::enabled();
    let outcome = Campaign::new(&entries, &stands)
        .cache(Arc::new(
            DirCache::open(&json_dir)
                .expect("cache dir")
                .with_format(comptest::engine::RecordFormat::Json),
        ))
        .recorder(obs.clone())
        .run(&SerialExecutor)
        .unwrap();
    assert_eq!(outcome, reference, "json: corrupt entries must re-execute");
    assert_eq!(
        obs.metrics().unwrap().counter("cache_corrupt_entries"),
        json_clobbered as u64
    );
}

// ---------------------------------------------------------------------------
// Cross-executor cache interchange: a record written by one executor at one
// granularity serves every other executor at the other granularity.
// ---------------------------------------------------------------------------

#[test]
fn conformance_cache_records_are_executor_and_granularity_agnostic() {
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stands = [&stand_a];
    let cell_ref = Campaign::new(&entries, &stands)
        .granularity(Granularity::Cell)
        .run(&SerialExecutor)
        .unwrap();
    let test_ref = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .run(&SerialExecutor)
        .unwrap();

    // Populate at *test* granularity on the async executor...
    let cache = Arc::new(MemoryCache::new());
    let populate = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .cache(cache.clone());
    let _ = populate.run(&AsyncExecutor::new(128)).unwrap();

    // ...and consume at *cell* granularity on the pooled executor (and the
    // reverse pairing), byte-identical to the cold references.
    let consume_cells = Campaign::new(&entries, &stands)
        .granularity(Granularity::Cell)
        .cache(cache.clone());
    assert_eq!(
        consume_cells.run(&PooledExecutor::new(4)).unwrap(),
        cell_ref,
        "test-granular records must serve cell-granular runs"
    );
    let consume_tests = Campaign::new(&entries, &stands)
        .granularity(Granularity::Test)
        .cache(cache);
    assert_eq!(
        consume_tests.run(&PooledExecutor::new(4)).unwrap(),
        test_ref,
        "and cell-granular consumption must not have disturbed them"
    );
}

// ---------------------------------------------------------------------------
// Cross-format cache interchange: a store written in either on-disk record
// format — or a mix — serves any DirCache regardless of its write format,
// across executors and granularities.
// ---------------------------------------------------------------------------

fn dir_cache(dir: &std::path::Path, format: comptest::engine::RecordFormat) -> Arc<DirCache> {
    Arc::new(DirCache::open(dir).expect("cache dir").with_format(format))
}

#[test]
fn conformance_cache_records_interchange_across_formats() {
    use comptest::engine::RecordFormat;

    let scratch = TempDir::new("formats");
    let suites = load_suites();
    let entries = entries(&suites);
    let stand_a = load_stand("stand_a.stand");
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_a];
    let cell_ref = Campaign::new(&entries, &stands)
        .granularity(Granularity::Cell)
        .run(&SerialExecutor)
        .unwrap();

    // Populate at test granularity in one format, consume at cell
    // granularity through a cache writing the *other* format: every job a
    // hit, byte-identical, and the per-format hit counter names the format
    // actually on disk (reads negotiate; the write format is irrelevant).
    for (write_fmt, read_fmt, hit_counter) in [
        (RecordFormat::Json, RecordFormat::Binary, "cache_hits_json"),
        (RecordFormat::Binary, RecordFormat::Json, "cache_hits_bin"),
    ] {
        let dir = scratch.fresh_subdir();
        let populate = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .cache(dir_cache(&dir, write_fmt));
        let _ = populate.run(&AsyncExecutor::new(128)).unwrap();

        let obs = Recorder::enabled();
        let consume = Campaign::new(&entries, &stands)
            .granularity(Granularity::Cell)
            .cache(dir_cache(&dir, read_fmt))
            .recorder(obs.clone());
        assert_eq!(
            consume.run(&PooledExecutor::new(4)).unwrap(),
            cell_ref,
            "{write_fmt:?}-written records must serve a {read_fmt:?}-writing cache"
        );
        let metrics = obs.metrics().unwrap();
        assert_eq!(
            metrics.counter("jobs_cached"),
            metrics.counter("jobs_planned"),
            "{write_fmt:?}→{read_fmt:?}: warm run must be all hits"
        );
        assert_eq!(
            metrics.counter(hit_counter),
            metrics.counter("cache_hits"),
            "{write_fmt:?}→{read_fmt:?}: every hit decoded the stored format"
        );
    }

    // A mixed-format store: one stand's cells written as JSON, the other's
    // as binary, into the same directory. A single warm run over both
    // stands hits every record and bumps both per-format counters.
    let both = [&stand_a, &stand_b];
    let mixed_ref = Campaign::new(&entries, &both)
        .granularity(Granularity::Test)
        .run(&SerialExecutor)
        .unwrap();
    let dir = scratch.fresh_subdir();
    for (stand, format) in [
        (&stand_a, RecordFormat::Json),
        (&stand_b, RecordFormat::Binary),
    ] {
        let one_stand = [stand];
        let populate = Campaign::new(&entries, &one_stand)
            .granularity(Granularity::Test)
            .cache(dir_cache(&dir, format));
        let _ = populate.run(&SerialExecutor).unwrap();
    }
    let obs = Recorder::enabled();
    let warm = Campaign::new(&entries, &both)
        .granularity(Granularity::Test)
        .cache(dir_cache(&dir, RecordFormat::Binary))
        .recorder(obs.clone());
    assert_eq!(
        warm.run(&AsyncExecutor::new(64)).unwrap(),
        mixed_ref,
        "a mixed-format store must serve a combined campaign warm"
    );
    let metrics = obs.metrics().unwrap();
    assert_eq!(
        metrics.counter("jobs_cached"),
        metrics.counter("jobs_planned"),
        "mixed store: warm run must be all hits"
    );
    assert!(
        metrics.counter("cache_hits_bin") > 0 && metrics.counter("cache_hits_json") > 0,
        "mixed store must hit through both formats ({:?})",
        metrics.counters
    );
    assert_eq!(
        metrics.counter("cache_hits_bin") + metrics.counter("cache_hits_json"),
        metrics.counter("cache_hits"),
        "per-format hit counters must partition cache_hits ({:?})",
        metrics.counters
    );
}

// ---------------------------------------------------------------------------
// Lazy device construction: a predicted cache hit never builds a DUT device.
// ---------------------------------------------------------------------------

/// The bundled entries with a device factory that counts invocations —
/// the probe proving warm runs skip device construction entirely.
fn counting_entries<'a>(
    suites: &'a [TestSuite],
    built: &Arc<AtomicUsize>,
) -> Vec<CampaignEntry<'a>> {
    suites
        .iter()
        .zip(comptest::dut::ecus::NAMES)
        .map(|(suite, ecu)| {
            let built = Arc::clone(built);
            CampaignEntry {
                suite,
                device_factory: Box::new(move || {
                    built.fetch_add(1, Ordering::Relaxed);
                    comptest::dut::ecus::device_by_name(ecu, Default::default())
                        .expect("bundled ECU")
                }),
            }
        })
        .collect()
}

#[test]
fn conformance_cache_hits_build_no_devices() {
    let scratch = TempDir::new("nodevice");
    let suites = load_suites();
    let built = Arc::new(AtomicUsize::new(0));
    let entries = counting_entries(&suites, &built);
    let stand_b = load_stand("stand_b.stand");
    let stands = [&stand_b];

    for granularity in [Granularity::Cell, Granularity::Test] {
        for subject in subjects() {
            for setup in [CacheSetup::Memory, CacheSetup::Dir] {
                let label = format!("{granularity}/{}/{}", subject.name, setup.label());
                let campaign = Campaign::new(&entries, &stands)
                    .granularity(granularity)
                    .cache(setup.build(&scratch).unwrap());
                let executor = (subject.build)();

                built.store(0, Ordering::Relaxed);
                let cold = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                assert!(
                    built.load(Ordering::Relaxed) > 0,
                    "{label}: cold run must build devices"
                );

                built.store(0, Ordering::Relaxed);
                let warm = campaign.launch(executor.as_ref()).unwrap().join().unwrap();
                assert_eq!(warm, cold, "{label}: warm run diverged");
                assert_eq!(
                    built.load(Ordering::Relaxed),
                    0,
                    "{label}: cache hits must build zero devices"
                );
            }
        }
    }

    // Audit mode re-executes everything, so it must build devices again —
    // lazy construction never starves cache_verify.
    let campaign = Campaign::new(&entries, &stands)
        .cache(Arc::new(MemoryCache::new()))
        .cache_verify(true);
    built.store(0, Ordering::Relaxed);
    let _ = campaign.run(&SerialExecutor).unwrap();
    let cold_builds = built.load(Ordering::Relaxed);
    // The first launch also builds one device per entry for key hashing;
    // that hash is memoized per campaign value, so the warm audit run
    // builds exactly the execution devices.
    assert!(
        cold_builds > entries.len(),
        "verify cold run builds devices"
    );
    built.store(0, Ordering::Relaxed);
    let _ = campaign.run(&SerialExecutor).unwrap();
    assert_eq!(
        built.load(Ordering::Relaxed),
        cold_builds - entries.len(),
        "cache_verify re-executes, so warm audit runs still build every device"
    );
}
