# Central-locking controller: edge-triggered CAN lock/unlock commands, the
# crash line, comfort auto-relock after 60 s, and the status report frame.
[suite]
name = central_lock
description = central locking controller

[signals]
name,       kind,              direction, init,     description
LOCK_CMD,   can:0x2F0:0:1,     input,     0,        lock command bit
UNLOCK_CMD, can:0x2F0:1:1,     input,     0,        unlock command bit
CRASH,      pin:CRASH_SW,      input,     Released, crash sensor line (active low)
ACT,        pin:LOCK_F/LOCK_R, output,    ,         lock actuator
LOCKED,     can:0x2F8:0:1,     output,    ,         status report bit

[status]
status,   method,  attribut, var,   nom, min,  max
0,        put_can, data,     ,      0B,  ,
1,        put_can, data,     ,      1B,  ,
Pressed,  put_r,   r,        ,      0,   0,    2
Released, put_r,   r,        ,      INF, 5000, INF
Lo,       get_u,   u,        UBATT, 0,   0,    0.3
Ho,       get_u,   u,        UBATT, 1,   0.7,  1.1
L0,       get_can, data,     ,      0B,  ,
L1,       get_can, data,     ,      1B,  ,

[test lock_unlock]
step, dt,  LOCK_CMD, UNLOCK_CMD, ACT, LOCKED, remarks
0,    0.5, 1,        ,           Ho,  L1,     REQ-CL-001 lock command locks
1,    0.5, 0,        ,           Ho,  L1,     REQ-CL-001 commands are edge-triggered
2,    0.5, ,         1,          Lo,  L0,     REQ-CL-001 unlock command unlocks
3,    0.5, ,         0,          Lo,  L0,     REQ-CL-001 stays unlocked

[test crash_unlock]
step, dt,  LOCK_CMD, CRASH,    ACT, remarks
0,    0.5, 1,        ,         Ho,  REQ-CL-002 locked
1,    0.5, ,         Pressed,  Lo,  REQ-CL-002 crash unlocks at once
2,    0.5, 0,        ,         Lo,  REQ-CL-002 command bit cleared
3,    0.5, 1,        ,         Lo,  REQ-CL-002 locking inhibited in a crash
4,    0.5, ,         Released, Lo,  REQ-CL-002 still unlocked after the crash

# The comfort auto-relock legitimately transitions mid-step (t = 60.5 s),
# which is why continuous-sampling experiments exclude this test.
[test auto_relock]
step, dt,  LOCK_CMD, UNLOCK_CMD, ACT, LOCKED, remarks
0,    0.5, 1,        ,           Ho,  ,       REQ-CL-003 locked
1,    0.5, 0,        1,          Lo,  ,       REQ-CL-003 unlocked; 60s relock armed
2,    59,  ,         0,          Lo,  ,       REQ-CL-003 still unlocked before 60s
3,    1.5, ,         ,           Ho,  L1,     REQ-CL-003 auto-relocked after 60s
