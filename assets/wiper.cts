# Windscreen-wiper controller: stalk modes over CAN, intermittent cycling
# (1 s wipe / 3 s pause) and wash-wipe with a 2 s follow-up.
[suite]
name = wiper
description = windscreen wiper controller

[signals]
name,  kind,                direction, init,     description
STALK, can:0x240:0:2,       input,     S_Off,    stalk position
WASH,  pin:WASH_SW,         input,     Released, wash button (active low)
MOTOR, pin:MOTOR_F/MOTOR_R, output,    ,         wiper motor
FAST,  pin:FAST_F,          output,    ,         fast-speed relay

[status]
status,   method,  attribut, var,   nom, min,  max
S_Off,    put_can, data,     ,      00B, ,
S_Int,    put_can, data,     ,      01B, ,
S_Slow,   put_can, data,     ,      10B, ,
S_Fast,   put_can, data,     ,      11B, ,
Pressed,  put_r,   r,        ,      0,   0,    2
Released, put_r,   r,        ,      INF, 5000, INF
Lo,       get_u,   u,        UBATT, 0,   0,    0.3
Ho,       get_u,   u,        UBATT, 1,   0.7,  1.1

[test stalk_modes]
step, dt,  STALK,  MOTOR, FAST, remarks
0,    0.5, S_Off,  Lo,    Lo,   REQ-WP-001 motor off at rest
1,    0.5, S_Slow, Ho,    Lo,   REQ-WP-001 slow wipe
2,    0.5, S_Fast, Ho,    Ho,   REQ-WP-001 fast wipe
3,    0.5, S_Off,  Lo,    Lo,   REQ-WP-001 back to rest

[test intermittent_cycle]
step, dt,  STALK, MOTOR, remarks
0,    0.5, S_Int, Ho,    REQ-WP-002 first wipe starts at once
1,    1.5, ,      Lo,    REQ-WP-002 pause phase
2,    2.5, ,      Ho,    REQ-WP-002 next wipe after 3s pause
3,    1.5, ,      Lo,    REQ-WP-002 pausing again

[test wash_wipe]
step, dt,  WASH,     MOTOR, remarks
0,    0.5, Pressed,  Ho,    REQ-WP-003 washing wipes
1,    0.5, Released, Ho,    REQ-WP-003 follow-up wipe after release
2,    2.0, ,         Lo,    REQ-WP-003 follow-up over after 2s
