# Turn-signal flasher: 1.5 Hz flashing, hazard mode, and the classic
# lamp-outage behaviour (a burnt-out bulb doubles the frequency). The
# frequency statuses exercise get_f end to end.
[suite]
name = flasher
description = turn signal flasher with outage detection

[signals]
name,   kind,                  direction, init,     description
STALK,  can:0x260:0:2,         input,     F_Off,    stalk position
OUTAGE, pin:OUTAGE_SW,         input,     Released, lamp-outage monitor (active low)
LAMP_L, pin:LAMP_L_F/LAMP_L_R, output,    ,         left indicator lamps
LAMP_R, pin:LAMP_R_F/LAMP_R_R, output,    ,         right indicator lamps

[status]
status,   method,  attribut, var,   nom, min,  max
F_Off,    put_can, data,     ,      00B, ,
F_Left,   put_can, data,     ,      01B, ,
F_Right,  put_can, data,     ,      10B, ,
F_Haz,    put_can, data,     ,      11B, ,
Pressed,  put_r,   r,        ,      0,   0,    2
Released, put_r,   r,        ,      INF, 5000, INF
Lo,       get_u,   u,        UBATT, 0,   0,    0.3
Ho,       get_u,   u,        UBATT, 1,   0.7,  1.1
F1_5,     get_f,   f,        ,      1.5, 1.2,  1.8
F3_0,     get_f,   f,        ,      3,   2.6,  3.4
F_Dark,   get_f,   f,        ,      0,   0,    0.2

[test left_indicator]
step, dt,  STALK,  LAMP_L, LAMP_R, remarks
0,    0.5, F_Off,  Lo,     Lo,     REQ-FL-001 dark at rest
1,    4,   F_Left, F1_5,   F_Dark, REQ-FL-001 left flashes near 1.5 Hz
2,    0.5, F_Off,  Lo,     Lo,     REQ-FL-001 dark again

[test hazard]
step, dt,  STALK, LAMP_L, LAMP_R, remarks
0,    4,   F_Haz, F1_5,   F1_5,   REQ-FL-002 both sides flash together
1,    0.5, F_Off, Lo,     Lo,     REQ-FL-002 off

[test lamp_outage]
step, dt,  OUTAGE,   STALK,   LAMP_R, LAMP_L, remarks
0,    0.5, Pressed,  ,        Lo,     Lo,     REQ-FL-003 outage alone stays dark
1,    4,   ,         F_Right, F3_0,   F_Dark, REQ-FL-003 outage doubles the frequency
2,    0.5, Released, F_Off,   Lo,     Lo,     REQ-FL-003 off
