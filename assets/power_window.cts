# Power-window controller: dead-man buttons, terminal stops, anti-pinch
# reversal, and the position report on CAN 0x350.
[suite]
name = power_window
description = power window controller with anti-pinch

[signals]
name,     kind,                direction, init,     description
BTN_UP,   pin:BTN_UP,          input,     Released, close button (active low)
BTN_DOWN, pin:BTN_DOWN,        input,     Released, open button (active low)
PINCH,    pin:PINCH_SW,        input,     Released, anti-pinch sensor
MOT_UP,   pin:MOT_UP_F/MOT_R,  output,    ,         close motor
MOT_DN,   pin:MOT_DN_F/MOT_R,  output,    ,         open motor
POS,      can:0x350:0:7,       output,    ,         window position 0..100

[status]
status,   method,  attribut, var,   nom,      min,  max
Pressed,  put_r,   r,        ,      0,        0,    2
Released, put_r,   r,        ,      INF,      5000, INF
Lo,       get_u,   u,        UBATT, 0,        0,    0.3
Ho,       get_u,   u,        UBATT, 1,        0.7,  1.1
P_Top,    get_can, data,     ,      1100100B, ,
P_Bot,    get_can, data,     ,      0000000B, ,

[test close_fully]
step, dt,  BTN_UP,   MOT_UP, MOT_DN, POS,   remarks
0,    0.5, Pressed,  Ho,     Lo,     ,      REQ-PW-001 closing
1,    2.0, ,         Lo,     Lo,     P_Top, REQ-PW-001 stops at the top
2,    0.5, Released, Lo,     Lo,     ,      REQ-PW-001 idle after release

[test open_dead_man]
step, dt,  BTN_DOWN, MOT_DN, POS,   remarks
0,    0.5, Pressed,  Ho,     ,      REQ-PW-002 opening
1,    0.5, Released, Lo,     ,      REQ-PW-002 dead-man stop on release
2,    3.0, Pressed,  Lo,     P_Bot, REQ-PW-002 reaches the bottom and stops

[test anti_pinch]
step, dt,  BTN_UP,   PINCH,    MOT_UP, MOT_DN, remarks
0,    0.5, Pressed,  ,         Ho,     Lo,     REQ-PW-003 closing
1,    0.3, ,         Pressed,  Lo,     Ho,     REQ-PW-003 obstacle reverses
2,    0.7, ,         ,         Lo,     Lo,     REQ-PW-003 pinch latches the stop
3,    0.5, Released, Released, Lo,     Lo,     REQ-PW-003 everything released
