# The paper's running example: the interior-illumination controller.
# Section 3's three sheets — signals, statuses, and the ten-step test
# definition sheet — plus two regression tests encoding the door-or and
# night-gating requirements.
[suite]
name = interior_light
description = interior illumination controller (paper Section 3)

[signals]
name,    kind,                     direction, init,   description
IGN_ST,  can:0x130:0:4,            input,     Off,    ignition status
DS_FL,   pin:DS_FL,                input,     Closed, door switch front left
DS_FR,   pin:DS_FR,                input,     Closed, door switch front right
DS_RL,   pin:DS_RL,                input,     Closed, door switch rear left
DS_RR,   pin:DS_RR,                input,     Closed, door switch rear right
NIGHT,   can:0x2A0:0:1,            input,     0,      light sensor night bit
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,    ,       interior illumination

[status]
status, method,  attribut, var,   nom,   min,  max
Off,    put_can, data,     ,      0001B, ,
Open,   put_r,   r,        ,      0,     0,    2
Closed, put_r,   r,        ,      INF,   5000, INF
0,      put_can, data,     ,      0B,    ,
1,      put_can, data,     ,      1B,    ,
Lo,     get_u,   u,        UBATT, 0,     0,    0.3
Ho,     get_u,   u,        UBATT, 1,     0.7,  1.1

# The paper's test table, verbatim: steps 7/8 bracket the 300 s timeout
# between 280.5 s (still lit) and 305.5 s (out).
[test interior_illumination]
step, dt,  IGN_ST, DS_FL,  DS_FR,  NIGHT, INT_ILL, remarks
0,    0.5, Off,    Closed, Closed, 0,     Lo,      REQ-IL-001 day: no interior
1,    0.5, ,       Open,   ,       ,      Lo,      "illumination, if"
2,    0.5, ,       Closed, Open,   ,      Lo,      doors are open
3,    0.5, ,       ,       Closed, ,      Lo,
4,    0.5, ,       Open,   ,       1,     Ho,      REQ-IL-002 night: interior
5,    0.5, ,       Closed, ,       ,      Lo,      "illumination on,"
6,    0.5, ,       ,       Open,   ,      Ho,      if doors are open
7,    280, ,       ,       ,       ,      Ho,      REQ-IL-003 still lit at 283.5s
8,    25,  ,       ,       ,       ,      Lo,      REQ-IL-003 illumination
9,    0.5, ,       ,       Closed, ,      Lo,      off after 300s

# Any single door lights the lamp at night (the door-OR).
[test each_door_lights_the_lamp]
step, dt,  DS_FL,  DS_FR,  DS_RL,  DS_RR,  NIGHT, INT_ILL, remarks
0,    0.5, ,       ,       ,       ,       1,     Lo,      REQ-IL-002 all doors closed
1,    0.5, Open,   ,       ,       ,       ,      Ho,      REQ-IL-002 front left
2,    0.5, Closed, ,       ,       ,       ,      Lo,
3,    0.5, ,       Open,   ,       ,       ,      Ho,      REQ-IL-002 front right
4,    0.5, ,       Closed, ,       ,       ,      Lo,
5,    0.5, ,       ,       Open,   ,       ,      Ho,      REQ-IL-002 rear left
6,    0.5, ,       ,       Closed, ,       ,      Lo,
7,    0.5, ,       ,       ,       Open,   ,      Ho,      REQ-IL-002 rear right
8,    0.5, ,       ,       ,       Closed, ,      Lo,

# The night bit gates the lamp while a door stays open.
[test day_stays_dark]
step, dt,  DS_FL,  NIGHT, INT_ILL, remarks
0,    0.5, Open,   0,     Lo,      REQ-IL-001 open door by day stays dark
1,    0.5, ,       1,     Ho,      REQ-IL-002 night falls: lamp on
2,    0.5, ,       0,     Lo,      REQ-IL-001 day again: lamp off
3,    0.5, Closed, ,      Lo,      closed and dark
