//! `comptest` — command-line front end for the component-test toolchain.
//!
//! ```text
//! comptest validate <workbook.cts>
//! comptest gen <workbook.cts> <test> [out.xml]
//! comptest run <workbook.cts> <test> <stand.stand> <ecu>
//! comptest suite <workbook.cts> <stand.stand> <ecu> [--junit out.xml]
//! comptest campaign <stand.stand>... [--workers N] [--granularity cell|test]
//!                   [--stop-on-first-fail] [--junit out.xml]
//! comptest portability <workbook.cts> <stand.stand>...
//! comptest stands <stand.stand>...
//! ```
//!
//! `campaign` runs every bundled ECU suite against every given stand
//! through the engine's `Campaign` builder on a pooled executor
//! (`--workers N` shards the matrix over N worker threads; default 1 =
//! serial reference order), streaming live progress from the campaign
//! handle and optionally writing a campaign JUnit report. `--granularity
//! cell` (default) schedules one job per suite×stand cell; `--granularity
//! test` shards down to single tests — progress is then streamed per test,
//! and a large workbook no longer bounds wall-clock.
//! `--stop-on-first-fail` cancels the remaining jobs as soon as one fails,
//! keeping the deterministic finished prefix in the report.

use std::process::ExitCode;

use comptest::core::portability::check_portability;
use comptest::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("validate") => {
            let wb = need(it.next(), "workbook path")?;
            cmd_validate(wb)
        }
        Some("gen") => {
            let wb = need(it.next(), "workbook path")?;
            let test = need(it.next(), "test name")?;
            cmd_gen(wb, test, it.next())
        }
        Some("run") => {
            let wb = need(it.next(), "workbook path")?;
            let test = need(it.next(), "test name")?;
            let stand = need(it.next(), "stand path")?;
            let ecu = need(it.next(), "ecu name")?;
            cmd_run(wb, test, stand, ecu)
        }
        Some("suite") => {
            let wb = need(it.next(), "workbook path")?;
            let stand = need(it.next(), "stand path")?;
            let ecu = need(it.next(), "ecu name")?;
            let rest: Vec<&str> = it.collect();
            let junit = match rest.as_slice() {
                [] => None,
                ["--junit", path] => Some(*path),
                other => return Err(format!("unexpected arguments {other:?}").into()),
            };
            cmd_suite(wb, stand, ecu, junit)
        }
        Some("lint") => {
            let wb = need(it.next(), "workbook path")?;
            cmd_lint(wb)
        }
        Some("campaign") => {
            let rest: Vec<&str> = it.collect();
            cmd_campaign(&rest)
        }
        Some("portability") => {
            let wb = need(it.next(), "workbook path")?;
            let stands: Vec<&str> = it.collect();
            if stands.is_empty() {
                return Err("portability needs at least one stand".into());
            }
            cmd_portability(wb, &stands)
        }
        Some("stands") => {
            for path in it {
                let stand = TestStand::load(path)?;
                print!("{stand}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}").into()),
        None => {
            eprintln!(
                "usage: comptest <validate|lint|gen|run|suite|campaign|portability|stands> …"
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn need<'a>(value: Option<&'a str>, what: &str) -> Result<&'a str, Box<dyn std::error::Error>> {
    value.ok_or_else(|| format!("missing argument: {what}").into())
}

fn cmd_validate(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(path)?;
    for w in &parsed.warnings {
        eprintln!("{w}");
    }
    let issues = parsed.suite.validate(&MethodRegistry::builtin());
    if issues.is_empty() {
        println!(
            "{}: ok ({} signals, {} statuses, {} tests)",
            parsed.suite.name,
            parsed.suite.signals.len(),
            parsed.suite.statuses.len(),
            parsed.suite.tests.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for issue in &issues {
            eprintln!("{issue}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_lint(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(path)?;
    let scripts = generate_all(&parsed.suite)?;
    let mut warnings = 0usize;
    for script in &scripts {
        let findings = comptest::script::lint(script);
        let vars = comptest::script::required_variables(script);
        println!(
            "{}: {} finding(s); requires stand variables: {}",
            script.name,
            findings.len(),
            if vars.is_empty() {
                "-".to_owned()
            } else {
                vars.join(", ")
            }
        );
        for f in &findings {
            println!("  {f}");
            if f.level == comptest::script::LintLevel::Warning {
                warnings += 1;
            }
        }
    }
    Ok(if warnings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_gen(
    path: &str,
    test: &str,
    out: Option<&str>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(path)?;
    let script = generate(&parsed.suite, test)?;
    let xml = script.to_xml();
    match out {
        Some(out) => {
            std::fs::write(out, &xml)?;
            println!("wrote {out}");
        }
        None => print!("{xml}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn load_dut(
    ecu: &str,
    stand: &TestStand,
) -> Result<comptest::dut::Device, Box<dyn std::error::Error>> {
    comptest::device_for_stand(ecu, stand)
        .ok_or_else(|| format!("unknown ecu {ecu:?}; known: interior_light, wiper, power_window, central_lock, flasher").into())
}

fn cmd_run(
    wb: &str,
    test: &str,
    stand_path: &str,
    ecu: &str,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(wb)?;
    let stand = TestStand::load(stand_path)?;
    let mut dut = load_dut(ecu, &stand)?;
    let result = run_test(
        &parsed.suite,
        test,
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )?;
    print!("{}", comptest::report::step_table(&result));
    Ok(if result.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_suite(
    wb: &str,
    stand_path: &str,
    ecu: &str,
    junit: Option<&str>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(wb)?;
    let stand = TestStand::load(stand_path)?;
    // Validate the ECU name with a friendly message before running.
    load_dut(ecu, &stand)?;
    let result = run_suite(
        &parsed.suite,
        &stand,
        || comptest::device_for_stand(ecu, &stand).expect("validated above"),
        &ExecOptions::default(),
    )?;
    print!("{}", comptest::report::suite_text(&result));
    if let Some(path) = junit {
        std::fs::write(path, comptest::report::junit_xml(&result))?;
        println!("wrote {path}");
    }
    Ok(if result.verdict() == Verdict::Pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_campaign(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut stand_paths: Vec<&str> = Vec::new();
    let mut workers = 1usize;
    let mut granularity = Granularity::Cell;
    let mut stop_on_first_fail = false;
    let mut junit: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--workers" => {
                let n = need(it.next().copied(), "--workers count")?;
                workers = n.parse().map_err(|_| format!("bad worker count {n:?}"))?;
                if workers == 0 {
                    return Err(
                        "--workers must be at least 1 (0 would leave the campaign with no \
                         worker threads)"
                            .into(),
                    );
                }
            }
            "--granularity" => {
                let g = need(it.next().copied(), "--granularity (cell|test)")?;
                granularity = g.parse()?;
            }
            "--stop-on-first-fail" => stop_on_first_fail = true,
            "--junit" => junit = Some(need(it.next().copied(), "--junit path")?),
            other if other.starts_with("--") => {
                return Err(format!("unknown campaign flag {other:?}").into())
            }
            stand => stand_paths.push(stand),
        }
    }
    if stand_paths.is_empty() {
        return Err("campaign needs at least one stand".into());
    }

    let stands: Vec<TestStand> = stand_paths
        .iter()
        .map(TestStand::load)
        .collect::<Result<_, _>>()?;
    let stand_refs: Vec<&TestStand> = stands.iter().collect();
    // The bundled ECU library: suite files `assets/<ecu>.cts`, behaviours
    // in `comptest::dut::ecus`.
    let suites = comptest::load_bundled_suites()?;
    let entries = comptest::bundled_entries(&suites);

    // The builder API: one campaign description, launched on a pooled
    // executor; a printer thread drains the typed event stream while the
    // workers run, and join() folds the deterministic result. The pool is
    // sized to the matrix — no point spawning threads no job will reach.
    let campaign = Campaign::new(&entries, &stand_refs)
        .granularity(granularity)
        .stop_on_first_fail(stop_on_first_fail);
    let executor = PooledExecutor::new(workers.min(campaign.job_count().max(1)));
    let mut handle = campaign.launch(&executor)?;
    let stream = handle.events();
    let printer = std::thread::spawn(move || {
        for event in stream {
            eprintln!("{}", comptest::report::progress_line(&event));
        }
    });
    let outcome = handle.join();
    printer.join().expect("printer thread");
    let outcome = outcome?;
    eprintln!("{}", comptest::report::summary_line(&outcome));

    print!("{}", outcome.result);
    if let Some(path) = junit {
        std::fs::write(path, comptest::report::campaign_junit_xml(&outcome.result))?;
        println!("wrote {path}");
    }
    Ok(if outcome.result.all_green() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_portability(wb: &str, stands: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(wb)?;
    let loaded: Vec<TestStand> = stands
        .iter()
        .map(TestStand::load)
        .collect::<Result<_, _>>()?;
    let refs: Vec<&TestStand> = loaded.iter().collect();
    let report = check_portability(&parsed.suite, &refs)?;
    print!("{report}");
    Ok(if report.fully_portable() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
