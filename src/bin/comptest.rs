//! `comptest` — command-line front end for the component-test toolchain.
//!
//! ```text
//! comptest validate <workbook.cts>
//! comptest gen <workbook.cts> <test> [out.xml]
//! comptest run <workbook.cts> <test> <stand.stand> <ecu>
//! comptest suite <workbook.cts> <stand.stand> <ecu> [--junit out.xml]
//! comptest campaign <stand.stand>... [--executor serial|pooled|async|remote]
//!                   [--workers N] [--concurrency N] [--remote-workers N]
//!                   [--granularity cell|test]
//!                   [--sample end-of-step|continuous:<interval_s>]
//!                   [--stop-on-first-fail] [--junit out.xml]
//!                   [--cache <dir>|memory|off] [--cache-verify]
//!                   [--cache-format bin|json]
//!                   [--cache-key full|footprint] [--cache-salt <salt>]
//!                   [--trace-out trace.json] [--metrics]
//!                   [--metrics-out metrics.json]
//! comptest portability <workbook.cts> <stand.stand>...
//! comptest stands <stand.stand>...
//! comptest worker    # remote-executor child; speaks frames on stdio
//! comptest serve [--addr 127.0.0.1:7171] [--workers N] [--concurrency N]
//!                [--max-active N] [--cache <dir>] [--cache-format bin|json]
//! comptest submit [--addr HOST:PORT] <stand.stand>... [--suite NAME]...
//!                 [--granularity cell|test] [--executor pooled|async]
//!                 [--stop-on-first-fail] [--no-cache] [--watch]
//! comptest watch [--addr HOST:PORT] <campaign-id>
//! comptest cancel [--addr HOST:PORT] <campaign-id>
//! comptest status [--addr HOST:PORT]
//! ```
//!
//! `campaign` runs every bundled ECU suite against every given stand
//! through the engine's `Campaign` builder, streaming live progress from
//! the campaign handle and optionally writing a campaign JUnit report.
//! Every executor produces the byte-identical result matrix:
//!
//! * `--executor pooled` (default): a worker pool; `--workers N` shards
//!   the matrix over N OS threads (default 1 = serial reference order).
//! * `--executor serial`: the in-order reference executor.
//! * `--executor async`: the event loop — up to `--concurrency N`
//!   (default 1024) test runs in flight *simultaneously*, interleaved
//!   step by step on `--workers` shard threads (default 1), so
//!   concurrency is no longer capped by thread count.
//! * `--executor remote`: multi-process — packaged jobs ship over stdio
//!   frames to `--remote-workers N` (default 2) spawned `comptest worker`
//!   children; a killed worker's jobs are retried on survivors (the
//!   `jobs_retried` counter in `--metrics`), and the cache stays in the
//!   parent so workers never touch disk.
//!
//! A sizing flag the selected executor would ignore (`--concurrency`
//! without `--executor async`, `--workers` with `--executor serial` or
//! `remote`, `--remote-workers` without `--executor remote`) is
//! rejected rather than silently dropped.
//!
//! `--granularity cell` (default) schedules one job per suite×stand cell;
//! `--granularity test` shards down to single tests — progress is then
//! streamed per test, and a large workbook no longer bounds wall-clock.
//! `--sample` selects when expected-output checks are measured:
//! `end-of-step` (default, paper semantics) or `continuous:<interval_s>`
//! (sample the whole step window every interval — the stricter DESIGN.md
//! §7 ablation). `--stop-on-first-fail` cancels the remaining jobs as
//! soon as one fails, keeping the deterministic finished prefix in the
//! report (on the async executor cancellation cuts in at *step*
//! granularity: in-flight runs stop at their next step boundary).
//!
//! `--cache <dir>` keys every suite×stand×DUT cell by stable structural
//! hashes and skips byte-identical re-executions across campaign runs
//! (`memory` caches within this process only; `off` is the default). The
//! summary reports how many results came from the cache, and the exit
//! code is identical to a cold run — a cached failure still fails the
//! campaign. `--cache-verify` is the audit mode: cached cells re-execute
//! anyway and the run errors if any cached outcome diverges.
//! `--cache-key` selects what a cache key covers: `footprint` (default)
//! hashes only the slices of the stand and DUT configuration the cell
//! actually touches, so editing one ECU's workbook or fault set
//! invalidates only the cells that exercise it; `full` hashes the whole
//! stand and device configuration (any change invalidates everything).
//! `--cache-salt <salt>` folds an arbitrary author-supplied string into
//! every footprint key — bump it to force re-execution without touching
//! any input (firmware release, harness recalibration, …).
//!
//! Observability (any of the three flags enables recording; results stay
//! byte-identical to an unobserved run — see `comptest_engine::obs`):
//!
//! * `--trace-out <path>` writes a Chrome trace-event JSON file after the
//!   campaign joins — open it in a trace viewer (`chrome://tracing`,
//!   <https://ui.perfetto.dev>) to see campaign/phase/cell/test/step spans
//!   on per-worker tracks.
//! * `--metrics` prints the metrics summary tables (counters, gauges,
//!   phase timings, histograms) to stderr after the campaign summary.
//! * `--metrics-out <path>` writes the same snapshot as deterministic
//!   JSON for machine consumption.
//!
//! `serve` runs the resident multi-tenant campaign daemon (see the
//! `comptest_server` crate docs for the wire protocol): suites load
//! once, submitted campaigns share one lane-fair worker pool and one
//! on-disk cache, events stream live with replay, verdicts stay
//! fetchable by id after the submitting client disconnects, and
//! SIGINT/SIGTERM (or a `shutdown` frame) drains gracefully. `submit`,
//! `watch`, `cancel` and `status` are thin wire clients. The one-shot
//! `campaign` also handles Ctrl-C cooperatively: in-flight jobs drain
//! at the next boundary and the partial matrix still reports.

use std::process::ExitCode;

use comptest::core::portability::check_portability;
use comptest::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("validate") => {
            let wb = need(it.next(), "workbook path")?;
            cmd_validate(wb)
        }
        Some("gen") => {
            let wb = need(it.next(), "workbook path")?;
            let test = need(it.next(), "test name")?;
            cmd_gen(wb, test, it.next())
        }
        Some("run") => {
            let wb = need(it.next(), "workbook path")?;
            let test = need(it.next(), "test name")?;
            let stand = need(it.next(), "stand path")?;
            let ecu = need(it.next(), "ecu name")?;
            cmd_run(wb, test, stand, ecu)
        }
        Some("suite") => {
            let wb = need(it.next(), "workbook path")?;
            let stand = need(it.next(), "stand path")?;
            let ecu = need(it.next(), "ecu name")?;
            let rest: Vec<&str> = it.collect();
            let junit = match rest.as_slice() {
                [] => None,
                ["--junit", path] => Some(*path),
                other => return Err(format!("unexpected arguments {other:?}").into()),
            };
            cmd_suite(wb, stand, ecu, junit)
        }
        Some("lint") => {
            let wb = need(it.next(), "workbook path")?;
            cmd_lint(wb)
        }
        Some("campaign") => {
            let rest: Vec<&str> = it.collect();
            cmd_campaign(&rest)
        }
        Some("portability") => {
            let wb = need(it.next(), "workbook path")?;
            let stands: Vec<&str> = it.collect();
            if stands.is_empty() {
                return Err("portability needs at least one stand".into());
            }
            cmd_portability(wb, &stands)
        }
        Some("stands") => {
            for path in it {
                let stand = TestStand::load(path)?;
                print!("{stand}");
            }
            Ok(ExitCode::SUCCESS)
        }
        // The remote executor's child-process entry point: speaks the
        // length-prefixed frame protocol on stdin/stdout until the parent
        // closes the pipe or sends `shutdown`. Not meant to be run by hand.
        Some("worker") => Ok(ExitCode::from(comptest::engine::worker_main() as u8)),
        Some("serve") => {
            let rest: Vec<&str> = it.collect();
            cmd_serve(&rest)
        }
        Some("submit") => {
            let rest: Vec<&str> = it.collect();
            cmd_submit(&rest)
        }
        Some("watch") => {
            let rest: Vec<&str> = it.collect();
            cmd_watch(&rest)
        }
        Some("cancel") => {
            let rest: Vec<&str> = it.collect();
            cmd_cancel(&rest)
        }
        Some("status") => {
            let rest: Vec<&str> = it.collect();
            cmd_status(&rest)
        }
        Some(other) => Err(format!("unknown command {other:?}").into()),
        None => {
            eprintln!(
                "usage: comptest <validate|lint|gen|run|suite|campaign|portability|stands\
                 |serve|submit|watch|cancel|status|worker> …"
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn need<'a>(value: Option<&'a str>, what: &str) -> Result<&'a str, Box<dyn std::error::Error>> {
    value.ok_or_else(|| format!("missing argument: {what}").into())
}

/// Validates an output path taken by `flag` at parse time, so a typo
/// fails before the campaign runs instead of after minutes of execution:
/// the path must be non-empty, not itself a directory, and its parent
/// directory must already exist.
fn check_out_path(flag: &str, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    if path.is_empty() {
        return Err(format!("{flag} needs a non-empty output path").into());
    }
    let p = std::path::Path::new(path);
    if p.is_dir() {
        return Err(format!("{flag} {path:?} is a directory, expected a file path").into());
    }
    if let Some(parent) = p.parent().filter(|parent| !parent.as_os_str().is_empty()) {
        if !parent.is_dir() {
            return Err(format!(
                "{flag} {path:?}: parent directory {parent:?} does not exist \
                 (create it first)",
                parent = parent.display().to_string()
            )
            .into());
        }
    }
    Ok(())
}

fn cmd_validate(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(path)?;
    for w in &parsed.warnings {
        eprintln!("{w}");
    }
    let issues = parsed.suite.validate(&MethodRegistry::builtin());
    if issues.is_empty() {
        println!(
            "{}: ok ({} signals, {} statuses, {} tests)",
            parsed.suite.name,
            parsed.suite.signals.len(),
            parsed.suite.statuses.len(),
            parsed.suite.tests.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for issue in &issues {
            eprintln!("{issue}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_lint(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(path)?;
    let scripts = generate_all(&parsed.suite)?;
    let mut warnings = 0usize;
    for script in &scripts {
        let findings = comptest::script::lint(script);
        let vars = comptest::script::required_variables(script);
        println!(
            "{}: {} finding(s); requires stand variables: {}",
            script.name,
            findings.len(),
            if vars.is_empty() {
                "-".to_owned()
            } else {
                vars.join(", ")
            }
        );
        for f in &findings {
            println!("  {f}");
            if f.level == comptest::script::LintLevel::Warning {
                warnings += 1;
            }
        }
    }
    Ok(if warnings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_gen(
    path: &str,
    test: &str,
    out: Option<&str>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(path)?;
    let script = generate(&parsed.suite, test)?;
    let xml = script.to_xml();
    match out {
        Some(out) => {
            std::fs::write(out, &xml)?;
            println!("wrote {out}");
        }
        None => print!("{xml}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn load_dut(
    ecu: &str,
    stand: &TestStand,
) -> Result<comptest::dut::Device, Box<dyn std::error::Error>> {
    comptest::device_for_stand(ecu, stand)
        .ok_or_else(|| format!("unknown ecu {ecu:?}; known: interior_light, wiper, power_window, central_lock, flasher").into())
}

fn cmd_run(
    wb: &str,
    test: &str,
    stand_path: &str,
    ecu: &str,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(wb)?;
    let stand = TestStand::load(stand_path)?;
    let mut dut = load_dut(ecu, &stand)?;
    let result = run_test(
        &parsed.suite,
        test,
        &stand,
        &mut dut,
        &ExecOptions::default(),
    )?;
    print!("{}", comptest::report::step_table(&result));
    Ok(if result.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_suite(
    wb: &str,
    stand_path: &str,
    ecu: &str,
    junit: Option<&str>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(wb)?;
    let stand = TestStand::load(stand_path)?;
    // Validate the ECU name with a friendly message before running.
    load_dut(ecu, &stand)?;
    let result = run_suite(
        &parsed.suite,
        &stand,
        || comptest::device_for_stand(ecu, &stand).expect("validated above"),
        &ExecOptions::default(),
    )?;
    print!("{}", comptest::report::suite_text(&result));
    if let Some(path) = junit {
        std::fs::write(path, comptest::report::junit_xml(&result))?;
        println!("wrote {path}");
    }
    Ok(if result.verdict() == Verdict::Pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Which [`CampaignExecutor`] the `campaign` subcommand launches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecutorKind {
    Serial,
    Pooled,
    Async,
    Remote,
}

impl ExecutorKind {
    /// The accepted `FromStr` spellings, for error messages.
    const ACCEPTED: [&'static str; 4] = ["serial", "pooled", "async", "remote"];
}

impl std::str::FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "serial" => Ok(ExecutorKind::Serial),
            "pooled" => Ok(ExecutorKind::Pooled),
            "async" => Ok(ExecutorKind::Async),
            "remote" => Ok(ExecutorKind::Remote),
            _ => Err(format!(
                "unknown executor {s:?}: expected one of {}",
                ExecutorKind::ACCEPTED.join(", ")
            )),
        }
    }
}

/// Where `--cache` points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum CacheMode {
    /// No caching (the default).
    #[default]
    Off,
    /// In-process cache: useless across CLI invocations, but keeps the
    /// flag surface symmetric with the library API.
    Memory,
    /// On-disk cache directory shared across runs.
    Dir(String),
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    /// `off`, `memory`, or a directory path. To keep a typo like
    /// `--cache of` from silently becoming a cache directory, a bare word
    /// without any path separator or dot is rejected — spell a relative
    /// directory `./name`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => return Ok(CacheMode::Off),
            "memory" => return Ok(CacheMode::Memory),
            _ => {}
        }
        if s.contains(['/', '\\', '.']) {
            Ok(CacheMode::Dir(s.to_owned()))
        } else {
            Err(format!(
                "unknown cache mode {s:?}: expected off, memory, or a directory path \
                 (spell a relative directory {:?})",
                format!("./{s}")
            ))
        }
    }
}

/// Parses `--cache-format`: the on-disk record encoding a `--cache <dir>`
/// cache writes (reads always accept both). Anything but the two known
/// formats is rejected at parse.
fn parse_cache_format(s: &str) -> Result<comptest::engine::RecordFormat, String> {
    match s.to_ascii_lowercase().as_str() {
        "bin" => Ok(comptest::engine::RecordFormat::Binary),
        "json" => Ok(comptest::engine::RecordFormat::Json),
        other => Err(format!(
            "unknown cache format {other:?}: expected bin or json"
        )),
    }
}

fn cmd_campaign(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut stand_paths: Vec<&str> = Vec::new();
    let mut executor_kind = ExecutorKind::Pooled;
    let mut workers: Option<usize> = None;
    let mut concurrency: Option<usize> = None;
    let mut remote_workers: Option<usize> = None;
    let mut granularity = Granularity::Cell;
    let mut sample = SampleMode::EndOfStep;
    let mut stop_on_first_fail = false;
    let mut junit: Option<&str> = None;
    let mut cache_mode = CacheMode::Off;
    let mut cache_verify = false;
    let mut cache_format: Option<comptest::engine::RecordFormat> = None;
    let mut cache_keying: Option<comptest::engine::CacheKeying> = None;
    let mut cache_salt: Option<&str> = None;
    let mut trace_out: Option<&str> = None;
    let mut metrics_out: Option<&str> = None;
    let mut print_metrics = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--executor" => {
                let e = need(
                    it.next().copied(),
                    "--executor (serial|pooled|async|remote)",
                )?;
                executor_kind = e.parse()?;
            }
            "--workers" => {
                let n = need(it.next().copied(), "--workers count")?;
                let n: usize = n.parse().map_err(|_| format!("bad worker count {n:?}"))?;
                if n == 0 {
                    return Err(
                        "--workers must be at least 1 (0 would leave the campaign with no \
                         worker threads)"
                            .into(),
                    );
                }
                workers = Some(n);
            }
            "--concurrency" => {
                let n = need(it.next().copied(), "--concurrency count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("bad concurrency count {n:?}"))?;
                if n == 0 {
                    return Err(
                        "--concurrency must be at least 1 (0 would leave the async executor \
                         with no in-flight runs)"
                            .into(),
                    );
                }
                concurrency = Some(n);
            }
            "--remote-workers" => {
                let n = need(it.next().copied(), "--remote-workers count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("bad remote worker count {n:?}"))?;
                if n == 0 {
                    return Err(
                        "--remote-workers must be at least 1 (0 would leave the campaign \
                         with no worker processes)"
                            .into(),
                    );
                }
                remote_workers = Some(n);
            }
            "--granularity" => {
                let g = need(it.next().copied(), "--granularity (cell|test)")?;
                granularity = g.parse()?;
            }
            "--sample" => {
                let s = need(
                    it.next().copied(),
                    "--sample (end-of-step|continuous:<interval_s>)",
                )?;
                sample = s.parse()?;
            }
            "--stop-on-first-fail" => stop_on_first_fail = true,
            "--junit" => junit = Some(need(it.next().copied(), "--junit path")?),
            "--cache" => {
                let c = need(it.next().copied(), "--cache (<dir>|memory|off)")?;
                cache_mode = c.parse()?;
            }
            "--cache-verify" => cache_verify = true,
            "--cache-format" => {
                let f = need(it.next().copied(), "--cache-format (bin|json)")?;
                cache_format = Some(parse_cache_format(f)?);
            }
            "--cache-key" => {
                let k = need(it.next().copied(), "--cache-key (full|footprint)")?;
                cache_keying = Some(k.parse::<comptest::engine::CacheKeying>()?);
            }
            "--cache-salt" => {
                cache_salt = Some(need(it.next().copied(), "--cache-salt value")?);
            }
            "--trace-out" => {
                let path = need(it.next().copied(), "--trace-out path")?;
                check_out_path("--trace-out", path)?;
                trace_out = Some(path);
            }
            "--metrics-out" => {
                let path = need(it.next().copied(), "--metrics-out path")?;
                check_out_path("--metrics-out", path)?;
                metrics_out = Some(path);
            }
            "--metrics" => print_metrics = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown campaign flag {other:?}").into())
            }
            stand => stand_paths.push(stand),
        }
    }
    if stand_paths.is_empty() {
        return Err("campaign needs at least one stand".into());
    }
    // A flag the selected executor would ignore is a configuration
    // mistake; reject it instead of silently running something else.
    if concurrency.is_some() && executor_kind != ExecutorKind::Async {
        return Err(
            "--concurrency only applies to --executor async (use --workers to size the \
             pooled executor)"
                .into(),
        );
    }
    if workers.is_some() && executor_kind == ExecutorKind::Serial {
        return Err(
            "--workers does not apply to --executor serial (it runs in-order on one thread)".into(),
        );
    }
    if workers.is_some() && executor_kind == ExecutorKind::Remote {
        return Err(
            "--workers does not apply to --executor remote (size the worker processes \
             with --remote-workers)"
                .into(),
        );
    }
    if remote_workers.is_some() && executor_kind != ExecutorKind::Remote {
        return Err("--remote-workers only applies to --executor remote".into());
    }
    // A memory cache is born empty in every CLI invocation, so there is
    // nothing to audit — the run would trivially "pass" verification and
    // hand out false confidence.
    if cache_verify && matches!(cache_mode, CacheMode::Off | CacheMode::Memory) {
        return Err(
            "--cache-verify needs a persistent cache to audit (pass --cache <dir>; \
             a memory cache starts empty every invocation)"
                .into(),
        );
    }
    // Record formats are an on-disk concern; on `off` or `memory` the flag
    // would be silently ignored — reject the mistake instead.
    if cache_format.is_some() && !matches!(cache_mode, CacheMode::Dir(_)) {
        return Err("--cache-format only applies to an on-disk cache (pass --cache <dir>)".into());
    }
    // Keying selects how cache keys are derived; without a cache there are
    // no keys to derive and the flag would be silently ignored.
    if cache_keying.is_some() && cache_mode == CacheMode::Off {
        return Err("--cache-key needs a cache to key (pass --cache <dir> or memory)".into());
    }
    if cache_salt.is_some() && cache_mode == CacheMode::Off {
        return Err("--cache-salt needs a cache to salt (pass --cache <dir> or memory)".into());
    }
    let workers = workers.unwrap_or(1);
    let concurrency = concurrency.unwrap_or(1024);

    let stands: Vec<TestStand> = stand_paths
        .iter()
        .map(TestStand::load)
        .collect::<Result<_, _>>()?;
    let stand_refs: Vec<&TestStand> = stands.iter().collect();
    // The bundled ECU library: suite files `assets/<ecu>.cts`, behaviours
    // in `comptest::dut::ecus`.
    let suites = comptest::load_bundled_suites()?;
    let entries = comptest::bundled_entries(&suites);

    // The builder API: one campaign description, launched on the selected
    // executor; a printer thread drains the typed event stream while the
    // campaign runs, and join() folds the deterministic result. The pool
    // is sized to the matrix — no point spawning threads no job will
    // reach; the async executor shards over --workers event-loop threads.
    // Any observability flag enables the recorder; keep a clone to export
    // from after join. Disabled recording costs nothing and changes no
    // output, so the default stays off.
    let obs = if trace_out.is_some() || metrics_out.is_some() || print_metrics {
        comptest::engine::Recorder::enabled()
    } else {
        comptest::engine::Recorder::disabled()
    };
    let mut campaign = Campaign::new(&entries, &stand_refs)
        .exec_options(ExecOptions {
            sample,
            ..ExecOptions::default()
        })
        .granularity(granularity)
        .stop_on_first_fail(stop_on_first_fail)
        .cache_verify(cache_verify)
        .cache_keying(cache_keying.unwrap_or_default())
        .cache_salt(cache_salt.unwrap_or(""))
        .recorder(obs.clone());
    campaign = match &cache_mode {
        CacheMode::Off => campaign,
        CacheMode::Memory => {
            campaign.cache(std::sync::Arc::new(comptest::engine::MemoryCache::new()))
        }
        CacheMode::Dir(dir) => {
            let mut dir_cache = comptest::engine::DirCache::open(dir)?;
            if let Some(format) = cache_format {
                dir_cache = dir_cache.with_format(format);
            }
            campaign.cache(std::sync::Arc::new(dir_cache))
        }
    };
    let executor: Box<dyn CampaignExecutor> = match executor_kind {
        ExecutorKind::Serial => Box::new(SerialExecutor),
        ExecutorKind::Pooled => Box::new(PooledExecutor::new(
            workers.min(campaign.job_count().max(1)),
        )),
        ExecutorKind::Async => Box::new(AsyncExecutor::new(concurrency).sharded(workers)),
        // The worker command defaults to this very binary re-invoked as
        // `comptest worker` (RemoteExecutor::resolve_command), so the CLI
        // needs no extra plumbing here.
        ExecutorKind::Remote => Box::new(comptest::engine::RemoteExecutor::new(
            remote_workers.unwrap_or(2),
        )),
    };
    let mut handle = campaign.launch(executor.as_ref())?;
    // Cooperative Ctrl-C: trip the handle's token instead of dying
    // mid-write — the campaign drains at the next job boundary and the
    // partial matrix still reports through the normal path below.
    comptest::server::signals::install();
    comptest::server::signals::cancel_on_signal(handle.cancel_token());
    let stream = handle.events();
    // The printer thread also counts cache hits for the summary line.
    let printer = std::thread::spawn(move || {
        let mut cached = 0usize;
        for event in stream {
            if matches!(event, EngineEvent::CellCached { .. }) {
                cached += 1;
            }
            eprintln!("{}", comptest::report::progress_line(&event));
        }
        cached
    });
    let outcome = handle.join();
    let cached = printer.join().expect("printer thread");
    let outcome = outcome?;
    eprintln!("{}", comptest::report::summary_line(&outcome));
    if cache_mode != CacheMode::Off {
        eprintln!("cache: {cached} result(s) served from cache");
    }

    // Render reports under the `report` phase so the exported metrics
    // account for the whole CLI run, then export the trace/metrics last
    // (the export itself is not self-observing).
    obs.time_report(|| -> Result<(), Box<dyn std::error::Error>> {
        print!("{}", outcome.result);
        if let Some(path) = junit {
            std::fs::write(path, comptest::report::campaign_junit_xml(&outcome.result))?;
            println!("wrote {path}");
        }
        Ok(())
    })?;
    if let Some(path) = trace_out {
        let json = obs.chrome_trace_json().expect("recorder enabled");
        std::fs::write(path, json)?;
        println!("trace: wrote {path} ({} spans)", obs.span_events());
    }
    let snapshot = obs.metrics();
    if let Some(path) = metrics_out {
        let snapshot = snapshot.as_ref().expect("recorder enabled");
        std::fs::write(path, snapshot.to_json())?;
        println!("metrics: wrote {path}");
    }
    if print_metrics {
        let snapshot = snapshot.as_ref().expect("recorder enabled");
        eprint!("{}", comptest::report::metrics_text(snapshot));
    }
    Ok(if outcome.result.all_green() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Where the wire subcommands dial / `serve` listens unless `--addr`
/// says otherwise.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7171";

fn parse_count(flag: &str, value: &str) -> Result<usize, Box<dyn std::error::Error>> {
    let n: usize = value
        .parse()
        .map_err(|_| format!("bad {flag} count {value:?}"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1").into());
    }
    Ok(n)
}

fn cmd_serve(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use comptest::server::{ServeConfig, Server};
    let mut addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut cfg = ServeConfig::new(comptest::assets_dir());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--addr" => addr = need(it.next().copied(), "--addr host:port")?.to_owned(),
            "--workers" => {
                cfg.workers =
                    parse_count("--workers", need(it.next().copied(), "--workers count")?)?
            }
            "--concurrency" => {
                cfg.concurrency = parse_count(
                    "--concurrency",
                    need(it.next().copied(), "--concurrency count")?,
                )?
            }
            "--max-active" => {
                cfg.max_active = parse_count(
                    "--max-active",
                    need(it.next().copied(), "--max-active count")?,
                )?
            }
            "--cache" => {
                cfg.cache_dir = Some(need(it.next().copied(), "--cache dir")?.into());
            }
            "--cache-format" => {
                let f = need(it.next().copied(), "--cache-format (bin|json)")?;
                cfg.cache_format = Some(parse_cache_format(f)?);
            }
            other => return Err(format!("unknown serve flag {other:?}").into()),
        }
    }
    // Graceful shutdown: SIGINT/SIGTERM stop admissions, cancel queued
    // campaigns, trip running ones and drain before the process exits.
    comptest::server::signals::install();
    let server = Server::new(cfg)?;
    let listener = std::net::TcpListener::bind(addr.as_str())?;
    {
        // Flush eagerly: when stdout is piped (CI smoke test) the bound
        // address must be scrapable before the daemon blocks in accept.
        use std::io::Write as _;
        let mut out = std::io::stdout();
        writeln!(out, "serving on {}", listener.local_addr()?)?;
        out.flush()?;
    }
    server.run(listener)?;
    eprintln!("serve: drained, exiting");
    Ok(ExitCode::SUCCESS)
}

fn verdict_exit(verdict: &comptest::server::ResultFrame) -> ExitCode {
    if verdict.state == "done" && verdict.all_green {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_submit(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use comptest::server::{CampaignSpec, Client};
    let mut addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut spec = CampaignSpec::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--addr" => addr = need(it.next().copied(), "--addr host:port")?.to_owned(),
            "--suite" => spec
                .suites
                .push(need(it.next().copied(), "--suite name")?.to_owned()),
            "--granularity" => {
                let g = need(it.next().copied(), "--granularity (cell|test)")?;
                spec.granularity = g.parse()?;
            }
            "--executor" => {
                let e = need(it.next().copied(), "--executor (pooled|async)")?;
                spec.executor = e.parse()?;
            }
            "--stop-on-first-fail" => spec.stop_on_first_fail = true,
            "--no-cache" => spec.cache = false,
            "--watch" => spec.watch = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown submit flag {other:?}").into())
            }
            stand => spec.stands.push(stand.to_owned()),
        }
    }
    if spec.stands.is_empty() {
        return Err("submit needs at least one stand path (resolved on the server)".into());
    }
    let mut client = Client::connect(addr.as_str())?;
    if spec.watch {
        let (id, verdict) = client.submit_and_watch(&spec, |event| {
            eprintln!("{}", comptest::report::progress_line(event));
        })?;
        eprintln!("{id}: {}", verdict.state);
        print!("{}", verdict.report);
        Ok(verdict_exit(&verdict))
    } else {
        let id = client.submit(&spec)?;
        println!("{id}");
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_watch(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use comptest::server::Client;
    let (addr, ids) = wire_args(args, "watch")?;
    let [id] = ids.as_slice() else {
        return Err("watch needs exactly one campaign id (c-NNNNNN)".into());
    };
    let id: comptest::server::CampaignId = id.parse()?;
    let mut client = Client::connect(addr.as_str())?;
    let verdict = client.watch(id, |event| {
        eprintln!("{}", comptest::report::progress_line(event));
    })?;
    eprintln!("{id}: {}", verdict.state);
    if let Some(error) = &verdict.error {
        eprintln!("error: {error}");
    }
    print!("{}", verdict.report);
    Ok(verdict_exit(&verdict))
}

fn cmd_cancel(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use comptest::server::Client;
    let (addr, ids) = wire_args(args, "cancel")?;
    let [id] = ids.as_slice() else {
        return Err("cancel needs exactly one campaign id (c-NNNNNN)".into());
    };
    let id: comptest::server::CampaignId = id.parse()?;
    Client::connect(addr.as_str())?.cancel(id)?;
    println!("cancelled {id}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_status(args: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use comptest::server::Client;
    let (addr, rest) = wire_args(args, "status")?;
    if !rest.is_empty() {
        return Err(format!("unexpected status arguments {rest:?}").into());
    }
    for row in Client::connect(addr.as_str())?.status()? {
        println!("{} {}", row.id, row.state);
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses the shared wire-client argument shape: `--addr` plus
/// positional operands.
fn wire_args(
    args: &[&str],
    command: &str,
) -> Result<(String, Vec<String>), Box<dyn std::error::Error>> {
    let mut addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--addr" => addr = need(it.next().copied(), "--addr host:port")?.to_owned(),
            other if other.starts_with("--") => {
                return Err(format!("unknown {command} flag {other:?}").into())
            }
            operand => rest.push(operand.to_owned()),
        }
    }
    Ok((addr, rest))
}

fn cmd_portability(wb: &str, stands: &[&str]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let parsed = Workbook::load(wb)?;
    let loaded: Vec<TestStand> = stands
        .iter()
        .map(TestStand::load)
        .collect::<Result<_, _>>()?;
    let refs: Vec<&TestStand> = loaded.iter().collect();
    let report = check_portability(&parsed.suite, &refs)?;
    print!("{report}");
    Ok(if report.fully_portable() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
