//! `comptest` — test-stand-independent component testing.
//!
//! A complete, laptop-scale reproduction of Horst Brinkmeyer's *A New
//! Approach to Component Testing* (DATE 2005): define component tests once
//! in plain-text sheets, generate portable XML test scripts, and run them on
//! any (simulated) test stand that can allocate appropriate resources —
//! against simulated automotive ECUs.
//!
//! This crate is a façade: it re-exports the subsystem crates and adds the
//! small amount of glue (asset paths, DUT-per-stand construction) that
//! examples, integration tests and benches share.
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`model`] | `comptest-model` | signals, statuses, methods, expressions |
//! | [`sheets`] | `comptest-sheets` | `.cts` workbook parsing |
//! | [`script`] | `comptest-script` | XML test scripts + codegen |
//! | [`stand`] | `comptest-stand` | resources, matrix, allocation, planning |
//! | [`dut`] | `comptest-dut` | electrical model, CAN, ECUs, faults |
//! | [`core`] | `comptest-core` | execution, campaigns, fault coverage |
//! | [`engine`] | `comptest-engine` | parallel campaign execution (cell- or test-granular jobs on a persistent worker pool, live events) |
//! | [`report`] | `comptest-report` | tables, markdown, JUnit |
//!
//! # Quickstart
//!
//! ```
//! use comptest::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! let mut dut = comptest::device_for_stand("interior_light", &stand)
//!     .expect("known ECU");
//! let result = run_test(
//!     &workbook.suite,
//!     "day_stays_dark",
//!     &stand,
//!     &mut dut,
//!     &ExecOptions::default(),
//! )?;
//! assert!(result.passed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

pub use comptest_core as core;
pub use comptest_dut as dut;
pub use comptest_engine as engine;
pub use comptest_model as model;
pub use comptest_report as report;
pub use comptest_script as script;
pub use comptest_sheets as sheets;
pub use comptest_stand as stand;

/// The most commonly used items in one import.
pub mod prelude {
    pub use comptest_core::{
        execute, run_suite, run_test, ExecOptions, SampleMode, SuiteResult, TestResult, Verdict,
    };
    pub use comptest_dut::{Device, ElectricalConfig, FaultKind, FaultyBehavior};
    pub use comptest_engine::{
        run_campaign_parallel, run_campaign_with_pool, EngineEvent, EngineOptions, Granularity,
        WorkerPool,
    };
    pub use comptest_model::{Env, MethodRegistry, TestSuite};
    pub use comptest_script::{generate, generate_all, TestScript};
    pub use comptest_sheets::Workbook;
    pub use comptest_stand::{plan, TestStand};
}

/// The repository's `assets/` directory (paper sheets and stands).
pub fn assets_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("assets")
}

/// Path of one asset file, e.g. `asset("interior_light.cts")`.
pub fn asset(name: &str) -> PathBuf {
    assets_dir().join(name)
}

/// Builds the simulated DUT for an ECU name, electrically matched to a
/// stand: the DUT's supply voltage is taken from the stand's `ubatt`
/// variable so `UBATT`-scaled bounds measure against the same rail.
///
/// Known ECUs: `interior_light`, `wiper`, `power_window`, `central_lock`
/// (suite names of the bundled workbooks match these).
pub fn device_for_stand(ecu: &str, stand: &stand::TestStand) -> Option<dut::Device> {
    let mut cfg = dut::ElectricalConfig::default();
    if let Some(ubatt) = stand.env().get("ubatt") {
        cfg.ubatt = ubatt;
    }
    dut::ecus::device_by_name(ecu, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assets_exist() {
        for name in [
            "interior_light.cts",
            "wiper.cts",
            "power_window.cts",
            "central_lock.cts",
            "stand_a.stand",
            "stand_b.stand",
            "stand_minimal.stand",
        ] {
            assert!(asset(name).exists(), "missing asset {name}");
        }
    }

    #[test]
    fn device_matches_stand_supply() {
        let stand = stand::TestStand::load(asset("stand_b.stand")).unwrap();
        let dut = device_for_stand("interior_light", &stand).unwrap();
        assert_eq!(dut.config().ubatt, 13.8);
        assert!(device_for_stand("toaster", &stand).is_none());
    }
}
