//! `comptest` — test-stand-independent component testing.
//!
//! A complete, laptop-scale reproduction of Horst Brinkmeyer's *A New
//! Approach to Component Testing* (DATE 2005): define component tests once
//! in plain-text sheets, generate portable XML test scripts, and run them on
//! any (simulated) test stand that can allocate appropriate resources —
//! against simulated automotive ECUs.
//!
//! This crate is a façade: it re-exports the subsystem crates and adds the
//! small amount of glue (asset paths, DUT-per-stand construction) that
//! examples, integration tests and benches share.
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`model`] | `comptest-model` | signals, statuses, methods, expressions |
//! | [`sheets`] | `comptest-sheets` | `.cts` workbook parsing |
//! | [`script`] | `comptest-script` | XML test scripts + codegen |
//! | [`stand`] | `comptest-stand` | resources, matrix, allocation, planning |
//! | [`dut`] | `comptest-dut` | electrical model, CAN, ECUs, faults |
//! | [`core`] | `comptest-core` | execution, campaign planning/merge, fault coverage |
//! | [`engine`] | `comptest-engine` | `Campaign` builder, pluggable executors (serial / pooled / async event loop / remote multi-process), cancellable handles with typed event streams |
//! | [`report`] | `comptest-report` | tables, markdown, JUnit, live-progress lines |
//! | [`server`] | `comptest-server` | resident multi-tenant campaign daemon, wire protocol, client |
//!
//! # Quickstart — one test
//!
//! ```
//! use comptest::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! let mut dut = comptest::device_for_stand("interior_light", &stand)
//!     .expect("known ECU");
//! let result = run_test(
//!     &workbook.suite,
//!     "day_stays_dark",
//!     &stand,
//!     &mut dut,
//!     &ExecOptions::default(),
//! )?;
//! assert!(result.passed());
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — a campaign
//!
//! One test definition, every stand that can allocate the resources: a
//! [`Campaign`](prelude::Campaign) describes the suites × stands matrix
//! once and launches on any executor — [`SerialExecutor`](prelude::SerialExecutor)
//! for the deterministic reference, [`PooledExecutor`](prelude::PooledExecutor)
//! for wall-clock speedup; the results are byte-identical. The returned
//! [`CampaignHandle`](prelude::CampaignHandle) streams typed events and
//! supports cooperative cancellation ([`CancelToken`](prelude::CancelToken)
//! or `stop_on_first_fail`).
//!
//! ```
//! use comptest::prelude::*;
//! use comptest::core::campaign::CampaignEntry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! let entries = vec![CampaignEntry {
//!     suite: &workbook.suite,
//!     device_factory: Box::new(|| {
//!         comptest::device_for_stand("interior_light", &stand).expect("known ECU")
//!     }),
//! }];
//! let stands = [&stand];
//! let executor = PooledExecutor::new(2);
//! let mut handle = Campaign::new(&entries, &stands)
//!     .granularity(Granularity::Test)
//!     .launch(&executor)?;
//! for event in handle.events() {
//!     eprintln!("{}", comptest::report::progress_line(&event));
//! }
//! let outcome = handle.join()?;
//! assert!(outcome.result.all_green());
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — thousands of concurrent stands
//!
//! A test run is a resumable state machine
//! ([`TestRun`](prelude::TestRun)), so concurrency does not need threads:
//! the event-loop [`AsyncExecutor`](prelude::AsyncExecutor) keeps up to
//! `concurrency` runs open *simultaneously on one OS thread*, interleaving
//! them step by step in simulated-time order — and still merges the exact
//! bytes the serial executor produces.
//!
//! ```
//! use comptest::prelude::*;
//! use comptest::core::campaign::CampaignEntry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! # let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! # let entries = vec![CampaignEntry {
//! #     suite: &workbook.suite,
//! #     device_factory: Box::new(|| {
//! #         comptest::device_for_stand("interior_light", &stand).expect("known ECU")
//! #     }),
//! # }];
//! # let stands = [&stand];
//! let outcome = Campaign::new(&entries, &stands)
//!     .granularity(Granularity::Test)
//!     .launch(&AsyncExecutor::new(1024))? // up to 1024 in-flight runs, one thread
//!     .join()?;
//! assert!(outcome.result.all_green());
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — distributed execution
//!
//! [`RemoteExecutor`](prelude::RemoteExecutor) moves job execution out of
//! the campaign process entirely: it spawns `--remote-workers` copies of
//! the `comptest` binary as `comptest worker` children and ships packaged
//! jobs to them over a length-prefixed stdio frame protocol (stands and
//! scripts are interned per worker, so each crosses the pipe once). The
//! cache stays in the parent — workers never touch disk — and the merged
//! matrix is byte-identical to [`SerialExecutor`](prelude::SerialExecutor).
//! A worker that dies mid-job is reaped, its jobs retried on the survivors
//! (the `jobs_retried` counter); only when every retry is exhausted does
//! the join report `JobsLost` with the exact job labels. If no worker can
//! be spawned at all, jobs degrade gracefully to in-process execution.
//! On the CLI: `comptest campaign … --executor remote --remote-workers N`.
//!
//! ```no_run
//! use comptest::prelude::*;
//! use comptest::core::campaign::CampaignEntry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! # let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! # let entries = vec![CampaignEntry {
//! #     suite: &workbook.suite,
//! #     device_factory: Box::new(|| {
//! #         comptest::device_for_stand("interior_light", &stand).expect("known ECU")
//! #     }),
//! # }];
//! # let stands = [&stand];
//! // Four worker processes; the worker command defaults to re-invoking
//! // the current executable as `comptest worker`.
//! let outcome = Campaign::new(&entries, &stands)
//!     .granularity(Granularity::Test)
//!     .launch(&RemoteExecutor::new(4))?
//!     .join()?;
//! assert!(outcome.result.all_green());
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — caching & cache-verify
//!
//! Regression campaigns mostly re-run unchanged cells. A content-addressed
//! cache ([`engine::cache`]) keys every suite×stand×DUT cell by stable
//! structural hashes ([`core::hash`]) and skips byte-identical
//! re-executions — across executors, granularities and (with
//! [`engine::DirCache`]) across processes. Hits merge the *exact* bytes a
//! cold run produces, full traces and per-test sim timing included, and a
//! cached failure still trips `stop_on_first_fail` and the exit code.
//! `cache_verify(true)` is the audit mode: everything re-executes and the
//! join errors if any cached outcome diverged. On the CLI:
//! `comptest campaign … --cache <dir> [--cache-verify]
//! [--cache-format bin|json]`.
//!
//! On-disk records are length-prefixed binary by default (`bin`, the fast
//! path: one read per record, no text parsing) with `json` available for
//! humans and older tooling; either way a [`engine::DirCache`] *reads* both
//! formats, so existing stores stay warm across the switch and
//! `--cache-format` only chooses what gets written. See
//! [`engine::RecordFormat`] and the [`engine::cache`] module docs for the
//! record layout.
//!
//! ```
//! use comptest::prelude::*;
//! use comptest::core::campaign::CampaignEntry;
//! use comptest::engine::MemoryCache;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! # let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! # let entries = vec![CampaignEntry {
//! #     suite: &workbook.suite,
//! #     device_factory: Box::new(|| {
//! #         comptest::device_for_stand("interior_light", &stand).expect("known ECU")
//! #     }),
//! # }];
//! # let stands = [&stand];
//! // Use engine::DirCache::open("…")? instead to persist across processes.
//! let cache = Arc::new(MemoryCache::new());
//! let campaign = Campaign::new(&entries, &stands).cache(cache);
//! let cold = campaign.run(&SerialExecutor)?;   // executes, fills the cache
//! let warm = campaign.run(&SerialExecutor)?;   // all hits, byte-identical
//! assert_eq!(warm, cold);
//! // Audit mode: re-execute and cross-check every cached outcome.
//! let audited = campaign.cache_verify(true).run(&SerialExecutor)?;
//! assert_eq!(audited, cold);
//! # Ok(())
//! # }
//! ```
//!
//! ## What invalidates the cache
//!
//! Two keying schemes decide when a cached cell is stale
//! ([`engine::CacheKeying`], CLI `--cache-key full|footprint`):
//!
//! * **`full`** — the key covers the whole suite, stand, device
//!   configuration and execution options. Editing any of them invalidates
//!   every cell that shares them: safe, but blunt — one ECU's fault-set
//!   tweak re-runs the entire regression matrix.
//! * **`footprint`** (the default) — during planning the engine records
//!   each cell's exact dependency footprint ([`core::hash::Footprint`]:
//!   the signals it reads and drives, the stand resources its plans
//!   allocate, the DUT slices behind the ports it touches) and keys the
//!   record by *that*. An edit re-executes only the cells whose footprint
//!   contains it; everything else stays a hit.
//!
//! Under either scheme a change *inside* a cell's footprint — a touched
//! signal, pin, resource or port slice, the suite itself, the execution
//! options, or the author-supplied
//! [`cache_salt`](prelude::Campaign::cache_salt) (bump it to force a
//! re-run without touching inputs) — moves the key, and the re-executed
//! result is byte-identical to a cold run. Devices whose
//! [`Behavior`](dut::Behavior) does not implement
//! [`port_slice`](dut::Behavior::port_slice) degrade gracefully: their
//! cells fall back to whole-device identity (exactly `full`'s blast
//! radius, never a stale hit). Cache stores written before the footprint
//! format existed (binary record v1) remain valid hits or clean misses —
//! never errors.
//!
//! ```
//! use comptest::prelude::*;
//! use comptest::core::campaign::CampaignEntry;
//! use comptest::engine::{CacheKeying, MemoryCache};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! # let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! # let entries = vec![CampaignEntry {
//! #     suite: &workbook.suite,
//! #     device_factory: Box::new(|| {
//! #         comptest::device_for_stand("interior_light", &stand).expect("known ECU")
//! #     }),
//! # }];
//! # let stands = [&stand];
//! let campaign = Campaign::new(&entries, &stands)
//!     .cache(Arc::new(MemoryCache::new()))
//!     .cache_keying(CacheKeying::Footprint) // the default; Full opts out
//!     .cache_salt("calibration-2026w32");   // joined into every footprint
//! let cold = campaign.run(&SerialExecutor)?;
//! let warm = campaign.run(&SerialExecutor)?; // hits for untouched cells
//! assert_eq!(warm, cold);
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — observability
//!
//! Attach a [`Recorder`](prelude::Recorder) to see *where the time goes*:
//! a metrics registry (jobs/tests/steps, cache hits, phase timings,
//! wall-vs-sim histograms) and span tracing (campaign → cell → test →
//! step) exportable as Chrome trace-event JSON for
//! <https://ui.perfetto.dev>. The default recorder is disabled and free;
//! enabling it never changes results — wall-clock readings are
//! export-only. On the CLI: `comptest campaign … --trace-out trace.json
//! --metrics [--metrics-out metrics.json]`. See the `comptest_engine`
//! crate docs for the counter glossary and trace-viewer walkthrough.
//!
//! ```
//! use comptest::prelude::*;
//! use comptest::core::campaign::CampaignEntry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
//! # let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
//! # let entries = vec![CampaignEntry {
//! #     suite: &workbook.suite,
//! #     device_factory: Box::new(|| {
//! #         comptest::device_for_stand("interior_light", &stand).expect("known ECU")
//! #     }),
//! # }];
//! # let stands = [&stand];
//! let obs = Recorder::enabled();
//! let outcome = Campaign::new(&entries, &stands)
//!     .recorder(obs.clone())
//!     .launch(&AsyncExecutor::new(64))?
//!     .join()?;
//! let metrics = obs.metrics().unwrap();
//! assert_eq!(
//!     metrics.counter("jobs_executed") + metrics.counter("jobs_cached"),
//!     metrics.counter("jobs_planned"),
//! );
//! eprint!("{}", comptest::report::metrics_text(&metrics));
//! let trace = obs.chrome_trace_json().unwrap(); // write to a file, load in Perfetto
//! assert!(trace.starts_with('['));
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — serving campaigns
//!
//! `comptest serve` keeps everything expensive **resident**: one daemon
//! loads the bundled suites once, owns one lane-fair worker pool, one
//! async-executor configuration and one shared on-disk cache, and
//! multiplexes any number of concurrently submitted campaigns onto them
//! over a newline-delimited JSON TCP protocol. Campaigns get stable ids
//! (`c-000001`), stream typed events to any number of watchers (late
//! subscribers get a full replay), survive client disconnects (fetch the
//! verdict by id later), and can be cancelled over the wire. `status`
//! and `metrics` expose each tenant's lifecycle state and its own
//! recorder snapshot. On the CLI:
//!
//! ```text
//! comptest serve  [--addr 127.0.0.1:7171] [--workers N] [--concurrency N]
//!                 [--max-active N] [--cache <dir>] [--cache-format bin|json]
//! comptest submit [--addr …] <stand.stand>... [--suite NAME]...
//!                 [--granularity cell|test] [--executor pooled|async]
//!                 [--stop-on-first-fail] [--no-cache] [--watch]
//! comptest watch  [--addr …] <campaign-id>
//! comptest cancel [--addr …] <campaign-id>
//! comptest status [--addr …]
//! ```
//!
//! Served verdicts are byte-identical to local execution, and the
//! one-shot `comptest campaign` now drains cooperatively on Ctrl-C. See
//! the [`server`] crate docs for the frame reference, lifecycle states
//! and an in-process quickstart.
//!
//! The PR-1/PR-2 free functions (`run_campaign`, `run_campaign_parallel`,
//! `run_campaign_with_pool`) still compile as `#[deprecated]` shims over
//! this API, reachable through [`core`] and [`engine`] (not the prelude).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

pub use comptest_core as core;
pub use comptest_dut as dut;
pub use comptest_engine as engine;
pub use comptest_model as model;
pub use comptest_report as report;
pub use comptest_script as script;
pub use comptest_server as server;
pub use comptest_sheets as sheets;
pub use comptest_stand as stand;

/// The most commonly used items in one import.
pub mod prelude {
    pub use comptest_core::{
        execute, run_suite, run_test, ExecOptions, RunState, SampleMode, SuiteResult, TestResult,
        TestRun, Verdict,
    };
    pub use comptest_dut::{Device, ElectricalConfig, FaultKind, FaultyBehavior};
    pub use comptest_engine::{
        AsyncExecutor, Campaign, CampaignExecutor, CampaignHandle, CampaignOutcome, CancelToken,
        EngineEvent, EventStream, Granularity, MetricsSnapshot, PooledExecutor, Recorder,
        RemoteExecutor, SerialExecutor, WorkerPool,
    };
    pub use comptest_model::{Env, MethodRegistry, TestSuite};
    pub use comptest_script::{generate, generate_all, TestScript};
    pub use comptest_sheets::Workbook;
    pub use comptest_stand::{plan, TestStand};
}

/// The repository's `assets/` directory (paper sheets and stands).
pub fn assets_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("assets")
}

/// Path of one asset file, e.g. `asset("interior_light.cts")`.
pub fn asset(name: &str) -> PathBuf {
    assets_dir().join(name)
}

/// Builds the simulated DUT for an ECU name, electrically matched to a
/// stand: the DUT's supply voltage is taken from the stand's `ubatt`
/// variable so `UBATT`-scaled bounds measure against the same rail.
///
/// Known ECUs: `interior_light`, `wiper`, `power_window`, `central_lock`
/// (suite names of the bundled workbooks match these).
pub fn device_for_stand(ecu: &str, stand: &stand::TestStand) -> Option<dut::Device> {
    let mut cfg = dut::ElectricalConfig::default();
    if let Some(ubatt) = stand.env().get("ubatt") {
        cfg.ubatt = ubatt;
    }
    dut::ecus::device_by_name(ecu, cfg)
}

/// Loads every bundled ECU suite (`assets/<ecu>.cts`), in
/// [`dut::ecus::NAMES`] order — the suite set the `comptest campaign` CLI,
/// the campaign example and the integration tests all run.
///
/// # Errors
///
/// Returns the first [`sheets::SheetError`] raised while loading a
/// workbook.
pub fn load_bundled_suites() -> Result<Vec<model::TestSuite>, sheets::SheetError> {
    dut::ecus::NAMES
        .iter()
        .map(|ecu| Ok(sheets::Workbook::load(asset(&format!("{ecu}.cts")))?.suite))
        .collect()
}

/// Campaign entries pairing the bundled suites (in [`load_bundled_suites`]
/// order) with factories building their simulated DUTs at the default
/// 12 V electrical config — both full stands' bounds tolerate either rail
/// because limits scale with the stand's own `ubatt`.
pub fn bundled_entries(suites: &[model::TestSuite]) -> Vec<core::campaign::CampaignEntry<'_>> {
    suites
        .iter()
        .zip(dut::ecus::NAMES)
        .map(|(suite, ecu)| core::campaign::CampaignEntry {
            suite,
            device_factory: Box::new(move || {
                dut::ecus::device_by_name(ecu, Default::default()).expect("bundled ECU")
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assets_exist() {
        for name in [
            "interior_light.cts",
            "wiper.cts",
            "power_window.cts",
            "central_lock.cts",
            "stand_a.stand",
            "stand_b.stand",
            "stand_minimal.stand",
        ] {
            assert!(asset(name).exists(), "missing asset {name}");
        }
    }

    #[test]
    fn device_matches_stand_supply() {
        let stand = stand::TestStand::load(asset("stand_b.stand")).unwrap();
        let dut = device_for_stand("interior_light", &stand).unwrap();
        assert_eq!(dut.config().ubatt, 13.8);
        assert!(device_for_stand("toaster", &stand).is_none());
    }
}
