//! The Section-5 campaign matrix through the `Campaign` builder: every
//! bundled ECU suite × both full stands, described once and launched on a
//! pooled executor with live progress from the typed event stream — then
//! the same campaign on the serial executor, at test granularity (with a
//! replay on the same persistent pool) and on the async event-loop
//! executor with every test in flight at once, to show the results are
//! cell-for-cell identical whatever executes them, and finally a
//! cancelled run via `stop_on_first_fail`.
//!
//! ```sh
//! cargo run --example campaign_parallel
//! ```

use std::time::Instant;

use comptest::prelude::*;

fn spawn_printer(stream: EventStream) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for event in stream {
            println!("  {}", comptest::report::progress_line(&event));
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stand_a = TestStand::load(comptest::asset("stand_a.stand"))?;
    let stand_b = TestStand::load(comptest::asset("stand_b.stand"))?;
    let stands = [&stand_a, &stand_b];
    let suites = comptest::load_bundled_suites()?;
    let entries = comptest::bundled_entries(&suites);

    // One campaign description; every run below launches this same value.
    let campaign = Campaign::new(&entries, &stands);
    let pool = PooledExecutor::new(4);

    // Cell-granular pooled run with live per-cell events.
    println!("cell-granular, 4 workers:");
    let t = Instant::now();
    let mut handle = campaign.launch(&pool)?;
    let printer = spawn_printer(handle.events());
    let parallel = handle.join()?;
    printer.join().expect("printer thread");
    let parallel_time = t.elapsed();

    // Test-granular run on the same persistent pool, with per-test events —
    // and a second launch on the same threads to show replay costs no
    // thread start-up.
    println!("\ntest-granular, same persistent 4-worker pool:");
    let test_campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);
    let t = Instant::now();
    let mut handle = test_campaign.launch(&pool)?;
    let printer = spawn_printer(handle.events());
    let test_granular = handle.join()?;
    printer.join().expect("printer thread");
    let test_time = t.elapsed();

    let t = Instant::now();
    let replay = test_campaign.run(&pool)?;
    let replay_time = t.elapsed();

    // The async event loop: every test of the matrix in flight at once on
    // a single OS thread, interleaved step by step in simulated-time
    // order — no worker threads at all.
    let t = Instant::now();
    let async_result = test_campaign.run(&AsyncExecutor::new(256))?;
    let async_time = t.elapsed();

    // Serial reference: same campaign, different executor.
    let t = Instant::now();
    let serial = campaign.run(&SerialExecutor)?;
    let serial_time = t.elapsed();

    println!("\n{}", parallel.result);
    println!("serial           {serial_time:>10.2?}");
    println!("4 workers/cell   {parallel_time:>10.2?}");
    println!("4 workers/test   {test_time:>10.2?}");
    println!("replay on pool   {replay_time:>10.2?}");
    println!("async event loop {async_time:>10.2?}");
    assert_eq!(
        parallel.result, serial,
        "the executor merges cells in deterministic order"
    );
    assert_eq!(
        test_granular.result, serial,
        "test-granular jobs merge back test-for-test identical"
    );
    assert_eq!(replay, serial, "pool reuse changes nothing");
    assert_eq!(
        async_result, serial,
        "step-interleaved runs merge back byte-identical"
    );
    println!("executors are interchangeable: results are cell-for-cell identical ✓");

    // Cancellation: stand A can only run the interior light, so with
    // stop-on-first-fail the first failing cell cancels the tail and the
    // result keeps its deterministic finished prefix.
    let solo = [&stand_a];
    let cancelling = Campaign::new(&entries, &solo)
        .granularity(Granularity::Test)
        .stop_on_first_fail(true);
    let outcome = cancelling.launch(&pool)?.join()?;
    println!(
        "\nstop-on-first-fail on stand A alone: {}",
        comptest::report::summary_line(&outcome)
    );
    assert!(outcome.cancelled > 0, "the failing matrix cancels its tail");
    Ok(())
}
