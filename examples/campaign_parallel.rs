//! The Section-5 campaign matrix on the parallel execution engine: every
//! bundled ECU suite × both full stands, sharded over a worker pool, with
//! live progress streamed over the engine's event channel — then the same
//! matrix serially, to show the results are cell-for-cell identical.
//!
//! ```sh
//! cargo run --example campaign_parallel
//! ```

use std::sync::mpsc;
use std::time::Instant;

use comptest::core::campaign::{run_campaign, CampaignEntry};
use comptest::prelude::*;

const ECUS: [&str; 5] = comptest::dut::ecus::NAMES;

fn load_entries(suites: &[TestSuite]) -> Vec<CampaignEntry<'_>> {
    suites
        .iter()
        .zip(ECUS)
        .map(|(suite, ecu)| CampaignEntry {
            suite,
            device_factory: Box::new(move || {
                comptest::dut::ecus::device_by_name(ecu, Default::default()).expect("bundled ECU")
            }),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stand_a = TestStand::load(comptest::asset("stand_a.stand"))?;
    let stand_b = TestStand::load(comptest::asset("stand_b.stand"))?;
    let stands = [&stand_a, &stand_b];
    let suites: Vec<TestSuite> = ECUS
        .iter()
        .map(|ecu| {
            Ok::<_, Box<dyn std::error::Error>>(
                Workbook::load(comptest::asset(&format!("{ecu}.cts")))?.suite,
            )
        })
        .collect::<Result<_, _>>()?;

    // Parallel run with live events.
    let (tx, rx) = mpsc::channel();
    let printer = std::thread::spawn(move || {
        for event in rx {
            match event {
                EngineEvent::JobStarted { cell, suite, stand } => {
                    println!("  [{cell}] {suite} on {stand} started");
                }
                EngineEvent::JobFinished { cell, status, .. } => {
                    println!("  [{cell}] finished: {status}");
                }
                EngineEvent::CampaignDone { passed, failed, .. } => {
                    println!("  campaign done: {passed} passed, {failed} failed");
                }
            }
        }
    });
    let entries = load_entries(&suites);
    let t = Instant::now();
    let parallel = run_campaign_parallel(
        &entries,
        &stands,
        &EngineOptions::with_workers(4),
        &ExecOptions::default(),
        Some(&tx),
    )?;
    drop(tx);
    printer.join().expect("printer thread");
    let parallel_time = t.elapsed();

    // Serial reference.
    let entries = load_entries(&suites);
    let t = Instant::now();
    let serial = run_campaign(&entries, &stands, &ExecOptions::default())?;
    let serial_time = t.elapsed();

    println!("\n{parallel}");
    println!("serial   {serial_time:>10.2?}");
    println!("4 workers{parallel_time:>10.2?}");
    assert_eq!(
        parallel, serial,
        "the engine merges cells in deterministic order"
    );
    println!("parallel result is cell-for-cell identical to serial ✓");
    Ok(())
}
