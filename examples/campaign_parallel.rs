//! The Section-5 campaign matrix on the parallel execution engine: every
//! bundled ECU suite × both full stands, sharded over a worker pool, with
//! live progress streamed over the engine's event channel — then the same
//! matrix serially and test-granularly, to show the results are
//! cell-for-cell identical at every granularity, and finally a second
//! test-granular run on the *same* persistent pool (replay mode).
//!
//! ```sh
//! cargo run --example campaign_parallel
//! ```

use std::sync::mpsc;
use std::time::Instant;

use comptest::core::campaign::{run_campaign, CampaignEntry};
use comptest::prelude::*;

const ECUS: [&str; 5] = comptest::dut::ecus::NAMES;

fn load_entries(suites: &[TestSuite]) -> Vec<CampaignEntry<'_>> {
    suites
        .iter()
        .zip(ECUS)
        .map(|(suite, ecu)| CampaignEntry {
            suite,
            device_factory: Box::new(move || {
                comptest::dut::ecus::device_by_name(ecu, Default::default()).expect("bundled ECU")
            }),
        })
        .collect()
}

fn spawn_printer(rx: mpsc::Receiver<EngineEvent>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for event in rx {
            match event {
                EngineEvent::JobStarted { cell, suite, stand } => {
                    println!("  [{cell}] {suite} on {stand} started");
                }
                EngineEvent::JobFinished { cell, status, .. } => {
                    println!("  [{cell}] finished: {status}");
                }
                EngineEvent::TestStarted {
                    cell, suite, name, ..
                } => {
                    println!("  [{cell}] {suite}::{name} started");
                }
                EngineEvent::TestFinished {
                    cell,
                    suite,
                    name,
                    status,
                    duration,
                    ..
                } => {
                    println!("  [{cell}] {suite}::{name}: {status} ({duration:.2?})");
                }
                EngineEvent::CampaignDone { passed, failed, .. } => {
                    println!("  campaign done: {passed} passed, {failed} failed");
                }
            }
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stand_a = TestStand::load(comptest::asset("stand_a.stand"))?;
    let stand_b = TestStand::load(comptest::asset("stand_b.stand"))?;
    let stands = [&stand_a, &stand_b];
    let suites: Vec<TestSuite> = ECUS
        .iter()
        .map(|ecu| {
            Ok::<_, Box<dyn std::error::Error>>(
                Workbook::load(comptest::asset(&format!("{ecu}.cts")))?.suite,
            )
        })
        .collect::<Result<_, _>>()?;

    // Cell-granular parallel run with live per-cell events.
    println!("cell-granular, 4 workers:");
    let (tx, rx) = mpsc::channel();
    let printer = spawn_printer(rx);
    let entries = load_entries(&suites);
    let t = Instant::now();
    let parallel = run_campaign_parallel(
        &entries,
        &stands,
        &EngineOptions::with_workers(4),
        &ExecOptions::default(),
        Some(&tx),
    )?;
    drop(tx);
    printer.join().expect("printer thread");
    let parallel_time = t.elapsed();

    // Test-granular run on a persistent pool, with per-test events — and a
    // second campaign on the same pool to show the threads are reusable.
    println!("\ntest-granular, persistent 4-worker pool:");
    let pool = WorkerPool::new(4);
    let (tx, rx) = mpsc::channel();
    let printer = spawn_printer(rx);
    let entries = load_entries(&suites);
    let t = Instant::now();
    let test_granular = run_campaign_with_pool(
        &pool,
        &entries,
        &stands,
        &EngineOptions::default(),
        &ExecOptions::default(),
        Some(&tx),
    )?;
    drop(tx);
    printer.join().expect("printer thread");
    let test_time = t.elapsed();

    let entries = load_entries(&suites);
    let t = Instant::now();
    let replay = run_campaign_with_pool(
        &pool,
        &entries,
        &stands,
        &EngineOptions::default(),
        &ExecOptions::default(),
        None,
    )?;
    let replay_time = t.elapsed();

    // Serial reference.
    let entries = load_entries(&suites);
    let t = Instant::now();
    let serial = run_campaign(&entries, &stands, &ExecOptions::default())?;
    let serial_time = t.elapsed();

    println!("\n{parallel}");
    println!("serial          {serial_time:>10.2?}");
    println!("4 workers/cell  {parallel_time:>10.2?}");
    println!("4 workers/test  {test_time:>10.2?}");
    println!("replay on pool  {replay_time:>10.2?}");
    assert_eq!(
        parallel, serial,
        "the engine merges cells in deterministic order"
    );
    assert_eq!(
        test_granular, serial,
        "test-granular jobs merge back test-for-test identical"
    );
    assert_eq!(replay, serial, "pool reuse changes nothing");
    println!("parallel results are cell-for-cell identical to serial at both granularities ✓");
    Ok(())
}
