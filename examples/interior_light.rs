//! The paper's running example, end to end: the interior-illumination
//! workbook (Section 3's three sheets), compiled to XML (Section 3's
//! listing), planned and executed on two differently equipped stands
//! (Section 4), with the full 309-second timeout test.
//!
//! ```sh
//! cargo run --example interior_light
//! ```

use comptest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
    println!(
        "workbook `{}`: {} signals, {} statuses, {} tests",
        workbook.suite.name,
        workbook.suite.signals.len(),
        workbook.suite.statuses.len(),
        workbook.suite.tests.len()
    );

    // The generated script fragment the paper prints in Section 3.
    let script = generate(&workbook.suite, "interior_illumination")?;
    let xml = script.to_xml();
    let fragment = xml
        .lines()
        .skip_while(|l| !l.contains("get_u"))
        .take(1)
        .collect::<String>();
    println!(
        "\npaper's method statement, regenerated:\n  {}",
        fragment.trim()
    );

    for stand_file in ["stand_a.stand", "stand_b.stand"] {
        let stand = TestStand::load(comptest::asset(stand_file))?;
        println!(
            "\n=== {} (ubatt = {} V) ===",
            stand.name(),
            stand.env().get("ubatt").unwrap_or(f64::NAN)
        );

        let result = run_suite(
            &workbook.suite,
            &stand,
            || comptest::device_for_stand("interior_light", &stand).expect("known ECU"),
            &ExecOptions::default(),
        )?;
        for test in &result.results {
            println!("\n{}", comptest::report::step_table(test));
        }
        println!("{}", comptest::report::suite_text(&result));
        assert_eq!(result.verdict(), Verdict::Pass);
    }

    Ok(())
}
