//! Fault-injection campaign: measures whether the bundled test sheets
//! actually detect realistic component bugs — the paper's "preserve the
//! knowledge about requirements of components, including bugs, that have
//! occured in the past", made quantitative.
//!
//! ```sh
//! cargo run --example fault_coverage
//! ```

use comptest::core::faultcamp::run_fault_campaign;
use comptest::dut::ecus::interior_light::{self, InteriorLight};
use comptest::dut::{Device, ElectricalConfig, PortValue};
use comptest::model::SimTime;
use comptest::prelude::*;

fn device(fault: Option<&FaultKind>) -> Device {
    match fault {
        None => interior_light::device(ElectricalConfig::default()),
        Some(f) if f.is_device_level() => {
            let mut d = interior_light::device(ElectricalConfig::default());
            f.apply_to_device(&mut d);
            d
        }
        Some(f) => interior_light::device_with(
            ElectricalConfig::default(),
            Box::new(FaultyBehavior::new(
                Box::new(InteriorLight::new()),
                vec![f.clone()],
            )),
        ),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workbook = Workbook::load(comptest::asset("interior_light.cts"))?;
    let stand = TestStand::load(comptest::asset("stand_a.stand"))?;

    let faults = vec![
        FaultKind::StuckOutput {
            port: "lamp",
            value: PortValue::Bool(true),
        },
        FaultKind::StuckOutput {
            port: "lamp",
            value: PortValue::Bool(false),
        },
        FaultKind::InvertedOutput { port: "lamp" },
        FaultKind::IgnoredInput { port: "door_fl" },
        FaultKind::IgnoredInput { port: "door_fr" },
        FaultKind::IgnoredInput { port: "night" },
        FaultKind::TimerScale { factor: 1.5 },
        FaultKind::TimerScale { factor: 0.5 },
        FaultKind::OutputDelay {
            port: "lamp",
            delay: SimTime::from_secs(1),
        },
        FaultKind::ThresholdShift { delta: 0.35 },
        FaultKind::DropCanFrame {
            frame: interior_light::NIGHT_FRAME,
        },
        FaultKind::DropCanFrame {
            frame: interior_light::IGN_FRAME,
        },
    ];

    let result = run_fault_campaign(
        &workbook.suite,
        &stand,
        device,
        &faults,
        &ExecOptions::default(),
    )?;
    println!("{result}");

    for escape in result.escapes() {
        println!(
            "escape analysis: `{}` is invisible to this suite —",
            escape.fault
        );
        println!("  a candidate for a new row in the shared knowledge base.");
    }
    println!(
        "coverage: {:.0}% of {} injected faults",
        result.coverage() * 100.0,
        faults.len()
    );
    Ok(())
}
