//! Quickstart: define a tiny component test inline, run it on the paper's
//! stand against the simulated interior-light ECU, and print the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use comptest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workbook: signal sheet, status sheet, one test sheet.
    //    (Normally loaded from a .cts file; see assets/.)
    let workbook = Workbook::parse_str(
        "quickstart.cts",
        "\
[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test lamp]
step, dt,  DS_FL,  NIGHT, INT_ILL, remarks
0,    0.5, Open,   1,     Ho,      night + door open -> light
1,    0.5, Closed, ,      Lo,      door closed -> dark
",
    )?;

    // 2. Generate the portable XML test script (what travels between
    //    OEM and supplier).
    let script = generate(&workbook.suite, "lamp")?;
    println!("--- generated test script ---\n{}", script.to_xml());

    // 3. A test stand: resources + connection matrix (the paper's stand A).
    let stand = TestStand::load(comptest::asset("stand_a.stand"))?;

    // 4. Plan the script on the stand and execute it against the DUT.
    let plan = plan(&script, &stand)?;
    let mut dut = comptest::device_for_stand("interior_light", &stand).expect("known ECU");
    let result = execute(&plan, &mut dut, &ExecOptions::default());

    println!("--- execution ---");
    println!("{}", comptest::report::step_table(&result));
    println!("verdict: {}", result.verdict());
    assert!(result.passed());
    Ok(())
}
