//! The knowledge-base workflow the paper's introduction argues for:
//!
//! "a method is needed, to preserve the knowledge about requirements of
//! components, including bugs, that have occured in the past … test cases
//! that are specfied in a way, so that a high percentage of them can be
//! reused in order to perserve the experience for future projects."
//!
//! This example plays one project cycle:
//!
//! 1. a fault campaign finds an *escape* (a bug the current sheets miss);
//! 2. the test engineer adds a new test row encoding that bug;
//! 3. the merged workbook is serialised back to `.cts` (the shared format);
//! 4. the supplier extends their stand description and re-runs everything;
//! 5. the new suite now catches the bug, and a JUnit report goes to CI.
//!
//! ```sh
//! cargo run --example knowledge_base
//! ```

use comptest::core::faultcamp::run_fault_campaign;
use comptest::dut::ecus::interior_light::{self, InteriorLight};
use comptest::dut::{Device, ElectricalConfig, PortValue};
use comptest::model::{SignalName, SimTime, StatusName, TestCase, TestStep};
use comptest::prelude::*;

fn device(fault: Option<&FaultKind>) -> Device {
    match fault {
        None => interior_light::device(ElectricalConfig::default()),
        Some(f) if f.is_device_level() => {
            let mut d = interior_light::device(ElectricalConfig::default());
            f.apply_to_device(&mut d);
            d
        }
        Some(f) => interior_light::device_with(
            ElectricalConfig::default(),
            Box::new(FaultyBehavior::new(
                Box::new(InteriorLight::new()),
                vec![f.clone()],
            )),
        ),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stand = TestStand::load(comptest::asset("stand_a.stand"))?;
    let mut suite = Workbook::load(comptest::asset("interior_light.cts"))?.suite;

    // 1. The paper's steps 7/8 bracket the 300 s timeout between 280.5 s
    //    (still lit) and 305.5 s (out). A field batch shipped with a timer
    //    ~4 % fast — it goes dark after ~288 s, comfortably *inside* the
    //    bracket, so today's knowledge base misses it:
    let subtle = FaultKind::TimerScale { factor: 1.04 };
    let before = run_fault_campaign(
        &suite,
        &stand,
        device,
        std::slice::from_ref(&subtle),
        &ExecOptions::default(),
    )?;
    println!("before: {}", before);
    assert!(
        !before.runs[0].detected,
        "a 288 s timeout slips through the 280.5..305.5 s bracket — an escape"
    );

    // 2. Encode the new knowledge: a test that tightens the lower edge of
    //    the bracket to 294.5 s. (In the original setting an engineer adds
    //    an Excel row; here we build it programmatically and serialise it.)
    let sig = |s: &str| SignalName::new(s).unwrap();
    let st = |s: &str| StatusName::new(s).unwrap();
    let mut regression = TestCase::new("bug_2026_fast_timer");
    regression.steps.push(
        TestStep::new(0, SimTime::from_millis(500))
            .assign(sig("NIGHT"), st("1"))
            .assign(sig("DS_FL"), st("Open"))
            .assign(sig("INT_ILL"), st("Ho"))
            .with_remark("REQ-IL-003 lamp lights"),
    );
    regression.steps.push(
        TestStep::new(1, SimTime::from_millis(294_500))
            .assign(sig("INT_ILL"), st("Ho"))
            .with_remark("REQ-IL-003 still lit just before 295s (field bug 2026-02)"),
    );
    regression.steps.push(
        TestStep::new(2, SimTime::from_secs(7))
            .assign(sig("INT_ILL"), st("Lo"))
            .with_remark("REQ-IL-003 and out after 300s"),
    );
    suite.tests.push(regression);

    // 3. Share the merged knowledge base.
    let merged = comptest::sheets::write_workbook(&suite);
    let out = std::env::temp_dir().join("interior_light_v2.cts");
    std::fs::write(&out, &merged)?;
    println!("wrote merged workbook to {}", out.display());

    // 4. Any stand with the right resources runs the new suite unchanged.
    let reloaded = Workbook::load(&out)?.suite;
    let after = run_fault_campaign(
        &reloaded,
        &stand,
        device,
        std::slice::from_ref(&subtle),
        &ExecOptions::default(),
    )?;
    println!("after: {}", after);
    assert!(after.runs[0].detected, "the new row catches the slow timer");

    // 5. CI artefact.
    let results = run_suite(&reloaded, &stand, || device(None), &ExecOptions::default())?;
    let junit = comptest::report::junit_xml(&results);
    println!("junit summary: {}", junit.lines().nth(1).unwrap_or(""));

    // Bonus: prove the stuck-on lamp from the anecdote is also caught.
    let stuck = FaultKind::StuckOutput {
        port: "lamp",
        value: PortValue::Bool(true),
    };
    let check = run_fault_campaign(
        &reloaded,
        &stand,
        device,
        std::slice::from_ref(&stuck),
        &ExecOptions::default(),
    )?;
    assert!(check.runs[0].detected);
    println!("knowledge preserved: future projects inherit both regressions.");
    Ok(())
}
