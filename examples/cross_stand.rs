//! Cross-stand portability: the same scripts on three stands — the paper's
//! stand A, a richer supplier stand B, and a deliberately under-equipped
//! stand that demonstrates the interpreter's error message ("If this is not
//! possible an error message is generated", Section 4).
//!
//! ```sh
//! cargo run --example cross_stand
//! ```

use comptest::core::portability::check_portability;
use comptest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stands: Vec<TestStand> = ["stand_a.stand", "stand_b.stand", "stand_minimal.stand"]
        .iter()
        .map(|f| TestStand::load(comptest::asset(f)))
        .collect::<Result<_, _>>()?;
    let stand_refs: Vec<&TestStand> = stands.iter().collect();

    for stand in &stands {
        println!("{stand}");
    }

    for workbook_file in [
        "interior_light.cts",
        "wiper.cts",
        "power_window.cts",
        "central_lock.cts",
    ] {
        let workbook = Workbook::load(comptest::asset(workbook_file))?;
        let report = check_portability(&workbook.suite, &stand_refs)?;
        println!("=== suite {} ===", workbook.suite.name);
        print!("{report}");
        println!();
    }

    println!("note: every failure names the method, the signal, and the");
    println!("per-resource reason — the knowledge a supplier needs to");
    println!("extend their stand, without ever seeing the OEM's lab.");
    Ok(())
}
