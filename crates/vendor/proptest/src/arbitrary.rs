//! `any::<T>()` — canonical strategies per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy generating any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bias toward human-scale finite magnitudes (bit-random doubles are
        // almost always astronomically large or tiny), with occasional
        // specials so filters like `is_finite` stay honest.
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => {
                let magnitude = rng.unit_f64() * 1e6;
                if rng.bool() {
                    magnitude
                } else {
                    -magnitude
                }
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
    }
}
