//! Test-case driving: configuration, error type, and the deterministic RNG.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline stub snappy
        // while still exercising plenty of inputs per run.
        Self { cases: 64 }
    }
}

/// A failed test case (raised by `prop_assert!` and friends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator state (SplitMix64). Every `proptest!` test seeds
/// one from its own name, so failures reproduce run over run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// An RNG seeded from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection-free multiply-shift; bias is irrelevant at these sizes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform index into a collection of `len` elements.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Runs `cases` generated cases of a test body. Used by the `proptest!`
/// macro; not part of the public proptest API but harmless to expose.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(test_name);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest: {test_name}: case {} of {} failed: {e}",
                i + 1,
                config.cases
            );
        }
    }
}

/// Defines the property tests of one block.
///
/// Supports the subset of the real macro's grammar this workspace uses:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly (the runner adds case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// One-of strategy union with uniform choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
