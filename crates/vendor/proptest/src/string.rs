//! String generation from the tiny regex subset the workspace's tests use:
//! a single atom (`.` or a `[...]` character class with `\xNN` escapes and
//! ranges) followed by a `{lo,hi}` repetition. Anything else generates the
//! pattern text literally.

use crate::test_runner::TestRng;

enum Atom {
    /// `.` — any char except newline.
    Dot,
    /// `[...]` — inclusive codepoint ranges.
    Class(Vec<(u32, u32)>),
}

/// Generates a string matching `pattern` (see module docs for the subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Some((atom, lo, hi)) => {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| gen_char(&atom, rng)).collect()
        }
        None => pattern.to_owned(),
    }
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => {
            // Mostly printable ASCII, sometimes raw bytes / wide chars —
            // good fuzzing material, never '\n' (regex `.` excludes it).
            loop {
                let c = match rng.below(10) {
                    0..=6 => (0x20 + rng.below(0x5F) as u32) as u8 as char,
                    7 => (rng.below(0x100) as u8) as char,
                    _ => char::from_u32(rng.below(0xD800) as u32).unwrap_or('?'),
                };
                if c != '\n' {
                    return c;
                }
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| u64::from(hi - lo) + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = u64::from(hi - lo) + 1;
                if pick < span {
                    return char::from_u32(lo + pick as u32).unwrap_or('?');
                }
                pick -= span;
            }
            unreachable!("pick is within total")
        }
    }
}

fn parse(pattern: &str) -> Option<(Atom, usize, usize)> {
    let (atom_src, rep) = split_repetition(pattern)?;
    let atom = if atom_src == "." {
        Atom::Dot
    } else {
        Atom::Class(parse_class(atom_src)?)
    };
    let (lo, hi) = parse_counts(rep)?;
    Some((atom, lo, hi))
}

/// Splits `X{lo,hi}` into (`X`, `lo,hi`).
fn split_repetition(pattern: &str) -> Option<(&str, &str)> {
    let open = pattern.rfind('{')?;
    let inner = pattern.strip_suffix('}')?.get(open + 1..)?;
    Some((&pattern[..open], inner))
}

fn parse_counts(rep: &str) -> Option<(usize, usize)> {
    let (lo, hi) = rep.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// Parses `[...]` class contents into codepoint ranges.
fn parse_class(src: &str) -> Option<Vec<(u32, u32)>> {
    let inner = src.strip_prefix('[')?.strip_suffix(']')?;
    let mut chars = inner.chars().peekable();
    let mut singles: Vec<u32> = Vec::new();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    while let Some(c) = chars.next() {
        let start = if c == '\\' {
            parse_escape(&mut chars)?
        } else {
            c as u32
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            let e = chars.next()?;
            let end = if e == '\\' {
                parse_escape(&mut chars)?
            } else {
                e as u32
            };
            (start <= end).then_some(())?;
            ranges.push((start, end));
        } else {
            singles.push(start);
        }
    }
    ranges.extend(singles.into_iter().map(|c| (c, c)));
    (!ranges.is_empty()).then_some(ranges)
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u32> {
    match chars.next()? {
        'x' => {
            let h1 = chars.next()?.to_digit(16)?;
            let h2 = chars.next()?.to_digit(16)?;
            Some(h1 * 16 + h2)
        }
        'n' => Some('\n' as u32),
        'r' => Some('\r' as u32),
        't' => Some('\t' as u32),
        '0' => Some(0),
        other => Some(other as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dot_repetition() {
        let (atom, lo, hi) = parse(".{0,300}").unwrap();
        assert!(matches!(atom, Atom::Dot));
        assert_eq!((lo, hi), (0, 300));
    }

    #[test]
    fn parses_byte_class() {
        let (atom, lo, hi) = parse("[\\x00-\\xff]{1,8}").unwrap();
        match atom {
            Atom::Class(ranges) => assert_eq!(ranges, vec![(0, 0xff)]),
            Atom::Dot => panic!("expected class"),
        }
        assert_eq!((lo, hi), (1, 8));
    }

    #[test]
    fn unknown_patterns_fall_back_to_literal() {
        let mut rng = TestRng::seeded(9);
        assert_eq!(generate_from_pattern("hello", &mut rng), "hello");
    }

    #[test]
    fn generated_lengths_respect_bounds() {
        let mut rng = TestRng::seeded(10);
        for _ in 0..100 {
            let s = generate_from_pattern(".{2,5}", &mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "{n}");
            assert!(!s.contains('\n'));
        }
    }
}
