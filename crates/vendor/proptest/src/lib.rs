//! A minimal, dependency-free stand-in for the [`proptest`] property-testing
//! crate, implementing exactly the API surface this workspace's tests use.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched. This stub is a *real* (if small) property-testing engine: every
//! `proptest!` test runs its body against freshly generated random inputs
//! from the same strategy combinators (`prop_map`, `prop_filter`,
//! `prop_flat_map`, `prop_recursive`, `prop_oneof!`, ranges, tuples,
//! collections, and a tiny regex subset for string strategies). What it does
//! *not* do is shrink failing cases — on failure it reports the case number
//! and panics. Generation is deterministic per test name, so failures
//! reproduce. Swap the workspace `proptest` path dependency for the registry
//! crate to get shrinking back; the test sources need no changes.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The conventional `proptest::prelude` — everything tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module: the strategy toolbox
    /// under its conventional name (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seeded(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-2.0..2.0f64), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let w = Strategy::generate(&(1u8..=64), &mut rng);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::TestRng::seeded(2);
        let strat = (0usize..5)
            .prop_flat_map(|n| crate::collection::vec(any::<bool>(), n))
            .prop_map(|v| v.len())
            .prop_filter("whatever", |n| *n < 5);
        for _ in 0..50 {
            assert!(Strategy::generate(&strat, &mut rng) < 5);
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => (*n == u64::MAX) as usize,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::seeded(3);
        for _ in 0..100 {
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 3);
        }
    }

    #[test]
    fn string_patterns_generate() {
        let mut rng = crate::test_runner::TestRng::seeded(4);
        for _ in 0..50 {
            let s = Strategy::generate(&".{0,30}", &mut rng);
            assert!(s.chars().count() <= 30);
            let b = Strategy::generate(&"[\\x00-\\xff]{1,8}", &mut rng);
            let n = b.chars().count();
            assert!((1..=8).contains(&n));
            assert!(b.chars().all(|c| (c as u32) <= 0xff));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a, "commutativity of {} and {}", a, b);
            prop_assert_ne!(a + b + 1, a + b);
        }
    }
}
