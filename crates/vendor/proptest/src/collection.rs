//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of an element strategy (see [`vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` strategy with a size (count or range) and an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + rng.below(span as u64 + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
