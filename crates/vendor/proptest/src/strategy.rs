//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this stub
/// produces plain values. All the combinators the workspace uses are here
/// with their upstream signatures.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generates a value, then generates from the strategy `f` builds on it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, `f` wraps
    /// an inner strategy into branches, nesting at most `depth` levels.
    /// (`_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility; the stub only bounds by depth.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let f = Rc::new(f);
        Recursive {
            leaf: self.boxed(),
            branch: Rc::new(move |inner| f(inner).boxed()),
            depth,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): no accepted value in 1000 tries",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            leaf: self.leaf.clone(),
            branch: Rc::clone(&self.branch),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // 1-in-4 leaves early so generated sizes vary; always leaf at 0.
        if self.depth == 0 || rng.below(4) == 0 {
            self.leaf.generate(rng)
        } else {
            let inner = Recursive {
                leaf: self.leaf.clone(),
                branch: Rc::clone(&self.branch),
                depth: self.depth - 1,
            }
            .boxed();
            (self.branch)(inner).generate(rng)
        }
    }
}

/// Always generates a clone of one value (`Just(x)`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
