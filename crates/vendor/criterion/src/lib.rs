//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness, implementing exactly the API surface this workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched; this stub keeps `cargo bench` working offline. Measurements are
//! real wall-clock timings (warm-up + N samples, median/mean/min reported),
//! just without criterion's statistical machinery, HTML reports or
//! command-line filtering. Swap the workspace `criterion` path dependency
//! for the registry crate to get the full harness back — the bench sources
//! need no changes.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (recorded, echoed in the
/// header line, but not used to normalise results in this stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Anything that can label a benchmark: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Self {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches and lazy statics).
        let _ = routine();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".to_owned();
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        format!(
            "median {:>12?}   mean {:>12?}   min {:>12?}   ({} samples)",
            median,
            mean,
            min,
            sorted.len()
        )
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group's throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        println!("{}/{:<28} {}", self.name, label, bencher.report());
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher, input);
        println!("{}/{:<28} {}", self.name, label, bencher.report());
        self
    }

    /// Ends the group (prints a trailing separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        let mut bencher = Bencher::with_sample_size(sample_size);
        f(&mut bencher);
        println!("{:<36} {}", name, bencher.report());
        self
    }

    /// Runs one standalone benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        let label = id.into_label();
        let mut bencher = Bencher::with_sample_size(sample_size);
        f(&mut bencher, input);
        println!("{:<36} {}", label, bencher.report());
        self
    }
}

/// Opaque value sink preventing the optimiser from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_sample_size(5);
        b.iter(|| 40 + 2);
        assert_eq!(b.samples.len(), 5);
        assert!(b.report().contains("5 samples"));
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(1));
        let mut ran = 0;
        group.bench_function("a", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("b", 7), &3, |b, x| b.iter(|| *x + 1));
        group.finish();
        assert!(ran >= 2);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
