//! The resident campaign service: admission queue, shared executors,
//! per-tenant event hubs, graceful drain.
//!
//! One [`Server`] owns everything expensive exactly once — the bundled
//! suites, a lane-fair [`WorkerPool`], an [`AsyncExecutor`] configuration
//! and (optionally) a shared [`DirCache`] — and multiplexes every
//! submitted campaign onto them. Each submission becomes a *tenant*: a
//! stable [`CampaignId`], a private [`CancelToken`], a private enabled
//! [`Recorder`] (so `metrics` answers per tenant, not per process) and an
//! [`EventHub`] that replays history to late subscribers. A campaign's
//! pool lane is its id, so concurrently running tenants interleave
//! round-robin on the shared workers instead of convoying.
//!
//! Lifecycle: `submit` enqueues (`Queued`); a scheduler thread launches
//! up to `max_active` campaigns at once (`Running`, each on its own
//! runner thread); the runner joins into the [`ResultStore`] (`Done`) or
//! records the error (`Failed`). A cancel on a queued tenant resolves it
//! to `Cancelled` without ever launching; on a running tenant it trips
//! the token and the verdict (with its cancelled-job count) still lands
//! in the store. Clients are entirely decoupled from this: a dropped
//! watch connection only drops a hub subscriber, never the campaign.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use comptest_core::campaign::CampaignEntry;
use comptest_core::service::{CampaignId, CampaignState, ResultStore, StoredOutcome};
use comptest_dut::ecus;
use comptest_engine::codec::{self, Value};
use comptest_engine::{
    AsyncExecutor, Campaign, CampaignCache, CampaignOutcome, CancelToken, DirCache, EngineEvent,
    RecordFormat, Recorder, WorkerPool,
};
use comptest_model::TestSuite;
use comptest_sheets::Workbook;
use comptest_stand::TestStand;

use crate::protocol::{CampaignSpec, ExecutorChoice, Frame, ResultFrame, StatusRow};
use crate::signals;

/// How a [`Server`] is provisioned. Everything here is shared by all
/// tenants for the process lifetime.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the bundled `<ecu>.cts` workbooks (the facade's
    /// `assets/` in the stock layout).
    pub assets_dir: PathBuf,
    /// OS threads in the shared lane-fair worker pool.
    pub workers: usize,
    /// In-flight run limit of the shared event-loop executor.
    pub concurrency: usize,
    /// Campaigns allowed to run simultaneously; further submissions wait
    /// in the admission queue. `1` serialises campaigns (and makes
    /// queued-cancel deterministic — the conformance suite relies on it).
    pub max_active: usize,
    /// Optional shared on-disk cell cache, consulted by every submission
    /// that asks for caching.
    pub cache_dir: Option<PathBuf>,
    /// Record format the shared cache writes (reads always accept both).
    pub cache_format: Option<RecordFormat>,
}

impl ServeConfig {
    /// A config with stock sizing: 4 workers, 64 async slots, 4 active
    /// campaigns, no cache.
    pub fn new(assets_dir: impl Into<PathBuf>) -> Self {
        Self {
            assets_dir: assets_dir.into(),
            workers: 4,
            concurrency: 64,
            max_active: 4,
            cache_dir: None,
            cache_format: None,
        }
    }
}

/// One message from a campaign's [`EventHub`] to a subscriber.
#[derive(Debug, Clone)]
pub enum HubMsg {
    /// A live (or replayed) engine event.
    Event(EngineEvent),
    /// The terminal verdict; always the last message a subscriber sees.
    Done(ResultFrame),
}

/// A per-campaign event fan-out with replay: subscribers joining late
/// first receive the full history, then live events, then the terminal
/// [`HubMsg::Done`]. Publishing never blocks on slow subscribers
/// (channels are unbounded) and a dropped subscriber is silently
/// retired — the campaign outlives its watchers.
#[derive(Debug, Default)]
pub struct EventHub {
    inner: Mutex<HubInner>,
}

#[derive(Debug, Default)]
struct HubInner {
    history: Vec<EngineEvent>,
    done: Option<ResultFrame>,
    subs: Vec<Sender<HubMsg>>,
}

impl EventHub {
    fn new() -> Self {
        Self::default()
    }

    /// Subscribes, replaying history (and the verdict, if the campaign
    /// already finished) before any live event. The single lock makes
    /// replay-then-live gapless: no event can slip between the replay
    /// and the subscription.
    pub fn subscribe(&self) -> Receiver<HubMsg> {
        let (tx, rx) = channel();
        let mut inner = self.inner.lock().expect("event hub lock");
        for event in &inner.history {
            let _ = tx.send(HubMsg::Event(event.clone()));
        }
        match &inner.done {
            Some(done) => {
                let _ = tx.send(HubMsg::Done(done.clone()));
            }
            None => inner.subs.push(tx),
        }
        rx
    }

    fn publish(&self, event: EngineEvent) {
        let mut inner = self.inner.lock().expect("event hub lock");
        inner
            .subs
            .retain(|sub| sub.send(HubMsg::Event(event.clone())).is_ok());
        inner.history.push(event);
    }

    fn finish(&self, frame: ResultFrame) {
        let mut inner = self.inner.lock().expect("event hub lock");
        for sub in inner.subs.drain(..) {
            let _ = sub.send(HubMsg::Done(frame.clone()));
        }
        inner.done = Some(frame);
    }
}

/// A validated submission, detached from the wire spec: stands are
/// loaded eagerly at submit time (so path errors surface to the
/// submitting client, not into a `Failed` state later), suites resolved
/// to indices into the server's bundled set.
#[derive(Debug)]
struct Submission {
    suite_indices: Vec<usize>,
    stands: Vec<TestStand>,
    granularity: comptest_engine::Granularity,
    stop_on_first_fail: bool,
    use_cache: bool,
    executor: ExecutorChoice,
}

#[derive(Debug)]
struct Tenant {
    state: CampaignState,
    /// Present while `Queued`; taken by the scheduler at launch.
    job: Option<Submission>,
    cancel: CancelToken,
    obs: Recorder,
    hub: Arc<EventHub>,
}

#[derive(Debug, Default)]
struct ServiceState {
    tenants: BTreeMap<CampaignId, Tenant>,
    queue: VecDeque<CampaignId>,
    active: usize,
    next_id: u64,
    runners: Vec<JoinHandle<()>>,
    draining: bool,
}

#[derive(Debug)]
struct Inner {
    cfg: ServeConfig,
    suites: Vec<TestSuite>,
    suite_names: Vec<String>,
    pool: WorkerPool,
    async_exec: AsyncExecutor,
    cache: Option<Arc<DirCache>>,
    store: ResultStore,
    state: Mutex<ServiceState>,
    sched: Condvar,
    /// Connection frames currently being handled (request dispatched, or
    /// response not yet flushed). [`Server::run`] waits for this to reach
    /// zero before draining on SIGTERM/SIGINT, so a submission accepted
    /// just before the signal still gets its `submitted` response written
    /// instead of the process exiting with the reply half-flushed.
    admissions: Mutex<usize>,
    admissions_cv: Condvar,
}

/// The resident campaign service. Cheap to clone (connection threads
/// each hold one); all clones share the same state. Create with
/// [`Server::new`], serve sockets with [`Server::run`] or drive it
/// in-process through [`submit`](Server::submit) /
/// [`subscribe`](Server::subscribe) / [`fetch`](Server::fetch) — the
/// conformance tests and the `s10_serve` bench do both.
#[derive(Debug, Clone)]
pub struct Server {
    inner: Arc<Inner>,
    scheduler: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl Server {
    /// Builds the service: loads every bundled suite once, opens the
    /// shared cache (if configured) and starts the scheduler thread.
    ///
    /// # Errors
    ///
    /// Returns a rendered error if a bundled workbook fails to load or
    /// the cache directory cannot be opened.
    pub fn new(mut cfg: ServeConfig) -> Result<Self, String> {
        cfg.workers = cfg.workers.max(1);
        cfg.concurrency = cfg.concurrency.max(1);
        cfg.max_active = cfg.max_active.max(1);
        let mut suites = Vec::new();
        let mut suite_names = Vec::new();
        for ecu in ecus::NAMES {
            let path = cfg.assets_dir.join(format!("{ecu}.cts"));
            let workbook = Workbook::load(&path)
                .map_err(|e| format!("loading bundled suite {}: {e}", path.display()))?;
            suites.push(workbook.suite);
            suite_names.push(ecu.to_owned());
        }
        let cache = match &cfg.cache_dir {
            Some(dir) => {
                let mut cache = DirCache::open(dir)
                    .map_err(|e| format!("opening cache {}: {e}", dir.display()))?;
                if let Some(format) = cfg.cache_format {
                    cache = cache.with_format(format);
                }
                Some(Arc::new(cache))
            }
            None => None,
        };
        let inner = Arc::new(Inner {
            pool: WorkerPool::new(cfg.workers),
            async_exec: AsyncExecutor::new(cfg.concurrency),
            cfg,
            suites,
            suite_names,
            cache,
            store: ResultStore::new(),
            state: Mutex::new(ServiceState {
                next_id: 1,
                ..ServiceState::default()
            }),
            sched: Condvar::new(),
            admissions: Mutex::new(0),
            admissions_cv: Condvar::new(),
        });
        let sched_inner = inner.clone();
        let scheduler = std::thread::spawn(move || scheduler_loop(sched_inner));
        Ok(Self {
            inner,
            scheduler: Arc::new(Mutex::new(Some(scheduler))),
        })
    }

    /// The config the server was built with (sizes normalised to ≥ 1).
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// The bundled suite names this server can run.
    pub fn suite_names(&self) -> &[String] {
        &self.inner.suite_names
    }

    /// Validates and enqueues a submission, returning its stable id.
    /// Stand files load now (errors surface here); execution starts when
    /// the scheduler has a free active slot.
    ///
    /// # Errors
    ///
    /// Returns a rendered error for an empty stand list, an unknown
    /// suite name, an unloadable stand file, or a draining server.
    pub fn submit(&self, spec: &CampaignSpec) -> Result<CampaignId, String> {
        if spec.stands.is_empty() {
            return Err("a submission needs at least one stand path".to_owned());
        }
        let suite_indices: Vec<usize> = if spec.suites.is_empty() {
            (0..self.inner.suites.len()).collect()
        } else {
            spec.suites
                .iter()
                .map(|name| {
                    self.inner
                        .suite_names
                        .iter()
                        .position(|bundled| bundled == name)
                        .ok_or_else(|| {
                            format!(
                                "unknown suite {name:?} (bundled: {})",
                                self.inner.suite_names.join(", ")
                            )
                        })
                })
                .collect::<Result<_, _>>()?
        };
        let stands = spec
            .stands
            .iter()
            .map(|path| TestStand::load(path).map_err(|e| format!("loading stand {path}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let job = Submission {
            suite_indices,
            stands,
            granularity: spec.granularity,
            stop_on_first_fail: spec.stop_on_first_fail,
            use_cache: spec.cache,
            executor: spec.executor,
        };
        let mut st = self.inner.state.lock().expect("service state lock");
        if st.draining {
            return Err("server is shutting down".to_owned());
        }
        let id = CampaignId(st.next_id);
        st.next_id += 1;
        st.tenants.insert(
            id,
            Tenant {
                state: CampaignState::Queued,
                job: Some(job),
                cancel: CancelToken::new(),
                obs: Recorder::enabled(),
                hub: Arc::new(EventHub::new()),
            },
        );
        st.queue.push_back(id);
        self.inner.sched.notify_all();
        Ok(id)
    }

    /// Subscribes to a campaign's events: full replay, then live, then
    /// the terminal [`HubMsg::Done`].
    ///
    /// # Errors
    ///
    /// Returns a rendered error for an unknown id.
    pub fn subscribe(&self, id: CampaignId) -> Result<Receiver<HubMsg>, String> {
        let hub = {
            let st = self.inner.state.lock().expect("service state lock");
            st.tenants
                .get(&id)
                .ok_or_else(|| format!("unknown campaign id {id}"))?
                .hub
                .clone()
        };
        Ok(hub.subscribe())
    }

    /// Cancels a campaign. Queued: it resolves to `Cancelled` and never
    /// launches. Running: its token trips and the drained verdict lands
    /// in the store as usual. Terminal states ignore the cancel
    /// (idempotent).
    ///
    /// # Errors
    ///
    /// Returns a rendered error for an unknown id.
    pub fn cancel(&self, id: CampaignId) -> Result<(), String> {
        let finish = {
            let mut st = self.inner.state.lock().expect("service state lock");
            let tenant = st
                .tenants
                .get_mut(&id)
                .ok_or_else(|| format!("unknown campaign id {id}"))?;
            let mut finish = None;
            match tenant.state {
                CampaignState::Queued => {
                    tenant.state = CampaignState::Cancelled;
                    tenant.job = None;
                    finish = Some(tenant.hub.clone());
                }
                CampaignState::Running => tenant.cancel.cancel(),
                _ => {}
            }
            if finish.is_some() {
                st.queue.retain(|queued| *queued != id);
            }
            self.inner.sched.notify_all();
            finish
        };
        if let Some(hub) = finish {
            hub.finish(cancelled_frame(id));
        }
        Ok(())
    }

    /// The verdict for `id` as a wire frame: `result` when terminal,
    /// `pending` while queued/running, `error` for an unknown id. This
    /// is what makes verdicts survive client disconnects — any client
    /// can fetch by id for the rest of the server's life.
    pub fn fetch(&self, id: CampaignId) -> Frame {
        let state = {
            let st = self.inner.state.lock().expect("service state lock");
            st.tenants.get(&id).map(|tenant| tenant.state.clone())
        };
        match state {
            None => Frame::Error {
                message: format!("unknown campaign id {id}"),
            },
            Some(CampaignState::Done) => match self.inner.store.get(id) {
                Some(stored) => Frame::Result(done_frame(id, &stored)),
                None => Frame::Error {
                    message: format!("campaign {id} finished but stored no verdict"),
                },
            },
            Some(CampaignState::Cancelled) => Frame::Result(cancelled_frame(id)),
            Some(CampaignState::Failed(error)) => Frame::Result(failed_frame(id, error)),
            Some(live) => Frame::Pending {
                id,
                state: live.name().to_owned(),
            },
        }
    }

    /// Every known campaign's lifecycle state, in id (= submission)
    /// order.
    pub fn status_rows(&self) -> Vec<StatusRow> {
        let st = self.inner.state.lock().expect("service state lock");
        st.tenants
            .iter()
            .map(|(id, tenant)| StatusRow {
                id: *id,
                state: tenant.state.name().to_owned(),
            })
            .collect()
    }

    /// One campaign's metrics snapshot (counters, gauges, phase timers,
    /// histograms) as a JSON value — each tenant has its own recorder,
    /// so the numbers are per-campaign even under concurrency.
    ///
    /// # Errors
    ///
    /// Returns a rendered error for an unknown id.
    pub fn metrics(&self, id: CampaignId) -> Result<Value, String> {
        let obs = {
            let st = self.inner.state.lock().expect("service state lock");
            st.tenants
                .get(&id)
                .ok_or_else(|| format!("unknown campaign id {id}"))?
                .obs
                .clone()
        };
        let snapshot = obs
            .metrics()
            .ok_or_else(|| format!("campaign {id} has no enabled recorder"))?;
        codec::parse(&snapshot.to_json()).map_err(|e| e.0)
    }

    /// True once shutdown has begun (no new submissions are accepted).
    pub fn is_draining(&self) -> bool {
        self.inner
            .state
            .lock()
            .expect("service state lock")
            .draining
    }

    /// Begins graceful shutdown: refuses new submissions, resolves every
    /// queued campaign to `Cancelled`, trips every running campaign's
    /// token. Does not wait — pair with [`drain`](Server::drain).
    pub fn begin_shutdown(&self) {
        let cancelled = {
            let mut st = self.inner.state.lock().expect("service state lock");
            st.draining = true;
            let mut cancelled = Vec::new();
            while let Some(id) = st.queue.pop_front() {
                if let Some(tenant) = st.tenants.get_mut(&id) {
                    if tenant.state == CampaignState::Queued {
                        tenant.state = CampaignState::Cancelled;
                        tenant.job = None;
                        cancelled.push((id, tenant.hub.clone()));
                    }
                }
            }
            for tenant in st.tenants.values() {
                if tenant.state == CampaignState::Running {
                    tenant.cancel.cancel();
                }
            }
            self.inner.sched.notify_all();
            cancelled
        };
        for (id, hub) in cancelled {
            hub.finish(cancelled_frame(id));
        }
    }

    /// Waits for the scheduler and every runner thread to finish. Call
    /// after [`begin_shutdown`](Server::begin_shutdown); in-flight
    /// campaigns drain cooperatively (their verdicts, with cancelled-job
    /// counts, still land in the store).
    pub fn drain(&self) {
        if let Some(handle) = self.scheduler.lock().expect("scheduler handle lock").take() {
            let _ = handle.join();
        }
        let runners =
            std::mem::take(&mut self.inner.state.lock().expect("service state lock").runners);
        for runner in runners {
            let _ = runner.join();
        }
    }

    /// [`begin_shutdown`](Server::begin_shutdown) + [`drain`](Server::drain).
    pub fn shutdown(&self) {
        self.begin_shutdown();
        self.drain();
    }

    /// Marks one connection frame as in flight — held from decode through
    /// the response flush, so [`Server::run`] will not tear the process
    /// down between a dispatched `submit` and its `submitted` reply.
    fn begin_admission(&self) -> AdmissionGuard<'_> {
        *self.inner.admissions.lock().expect("admissions lock") += 1;
        AdmissionGuard { inner: &self.inner }
    }

    /// Waits (bounded) for every in-flight connection frame to finish.
    /// The bound keeps a wedged client from holding shutdown hostage.
    fn await_admissions(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut pending = self.inner.admissions.lock().expect("admissions lock");
        while *pending > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return;
            }
            pending = self
                .inner
                .admissions_cv
                .wait_timeout(pending, deadline - now)
                .expect("admissions lock")
                .0;
        }
    }

    /// Serves connections on `listener` until a `shutdown` frame arrives
    /// or a SIGINT/SIGTERM is observed (see [`signals`]), then drains
    /// and returns. Each connection gets its own thread; the listener is
    /// polled non-blockingly so shutdown is noticed within ~20 ms.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener cannot be polled.
    pub fn run(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if signals::triggered() {
                self.begin_shutdown();
            }
            if self.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    // Small frames + request/response: without nodelay,
                    // Nagle + delayed ACK adds ~40 ms per round-trip.
                    let _ = stream.set_nodelay(true);
                    let server = self.clone();
                    std::thread::spawn(move || handle_connection(server, stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Final backlog sweep: clients that connected before the signal
        // but were not yet accepted would otherwise see a reset when the
        // listener drops. They get a thread like everyone else — whose
        // submits now resolve to a clean `draining` refusal.
        while let Ok((stream, _peer)) = listener.accept() {
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_nodelay(true);
            let server = self.clone();
            std::thread::spawn(move || handle_connection(server, stream));
        }
        // Let in-flight connection frames finish before draining: a
        // submit dispatched just before the signal must flush its
        // `submitted` response (and an already-admitted campaign then
        // drains to a stored verdict like any other). The short sleep
        // lets connection threads pick frames already in their socket
        // buffers out and register them before the admission count is
        // consulted.
        std::thread::sleep(Duration::from_millis(50));
        self.await_admissions(Duration::from_secs(5));
        self.drain();
        Ok(())
    }
}

/// RAII for [`Server::begin_admission`].
struct AdmissionGuard<'a> {
    inner: &'a Inner,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut pending = self.inner.admissions.lock().expect("admissions lock");
        *pending -= 1;
        if *pending == 0 {
            self.inner.admissions_cv.notify_all();
        }
    }
}

fn scheduler_loop(inner: Arc<Inner>) {
    loop {
        let next = {
            let mut st = inner.state.lock().expect("service state lock");
            loop {
                if st.draining && st.queue.is_empty() {
                    return;
                }
                if st.active < inner.cfg.max_active {
                    if let Some(id) = st.queue.pop_front() {
                        let tenant = st.tenants.get_mut(&id).expect("queued id has a tenant");
                        if tenant.state != CampaignState::Queued {
                            // Cancelled while waiting; already resolved.
                            continue;
                        }
                        tenant.state = CampaignState::Running;
                        let job = tenant.job.take().expect("queued tenant keeps its job");
                        let ctx = (
                            id,
                            job,
                            tenant.cancel.clone(),
                            tenant.obs.clone(),
                            tenant.hub.clone(),
                        );
                        st.active += 1;
                        break ctx;
                    }
                }
                st = inner
                    .sched
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("service state lock")
                    .0;
            }
        };
        let (id, job, cancel, obs, hub) = next;
        let runner_inner = inner.clone();
        let handle =
            std::thread::spawn(move || run_campaign(runner_inner, id, job, cancel, obs, hub));
        inner
            .state
            .lock()
            .expect("service state lock")
            .runners
            .push(handle);
    }
}

fn run_campaign(
    inner: Arc<Inner>,
    id: CampaignId,
    job: Submission,
    cancel: CancelToken,
    obs: Recorder,
    hub: Arc<EventHub>,
) {
    let outcome = execute_submission(&inner, id, &job, cancel, obs, &hub);
    let (state, frame) = match outcome {
        Ok(outcome) => {
            let stored = StoredOutcome {
                result: outcome.result,
                cancelled: outcome.cancelled,
            };
            inner.store.insert(id, stored.clone());
            (CampaignState::Done, done_frame(id, &stored))
        }
        Err(message) => (
            CampaignState::Failed(message.clone()),
            failed_frame(id, message),
        ),
    };
    {
        let mut st = inner.state.lock().expect("service state lock");
        if let Some(tenant) = st.tenants.get_mut(&id) {
            tenant.state = state;
        }
        st.active -= 1;
        inner.sched.notify_all();
    }
    hub.finish(frame);
}

fn execute_submission(
    inner: &Inner,
    id: CampaignId,
    job: &Submission,
    cancel: CancelToken,
    obs: Recorder,
    hub: &EventHub,
) -> Result<CampaignOutcome, String> {
    let entries: Vec<CampaignEntry<'_>> = job
        .suite_indices
        .iter()
        .map(|&idx| {
            let ecu = inner.suite_names[idx].clone();
            CampaignEntry {
                suite: &inner.suites[idx],
                device_factory: Box::new(move || {
                    ecus::device_by_name(&ecu, Default::default()).expect("bundled ECU")
                }),
            }
        })
        .collect();
    let stand_refs: Vec<&TestStand> = job.stands.iter().collect();
    let mut campaign = Campaign::new(&entries, &stand_refs)
        .granularity(job.granularity)
        .stop_on_first_fail(job.stop_on_first_fail)
        .cancel_token(cancel)
        .recorder(obs)
        // The pool lane is the campaign id: concurrent tenants
        // round-robin on the shared workers.
        .lane(id.0);
    if job.use_cache {
        if let Some(cache) = &inner.cache {
            campaign = campaign.cache(cache.clone() as Arc<dyn CampaignCache>);
        }
    }
    let mut handle = match job.executor {
        ExecutorChoice::Pooled => campaign.launch(&inner.pool),
        ExecutorChoice::Async => campaign.launch(&inner.async_exec),
    }
    .map_err(|e| e.to_string())?;
    for event in handle.events() {
        hub.publish(event);
    }
    handle.join().map_err(|e| e.to_string())
}

fn done_frame(id: CampaignId, stored: &StoredOutcome) -> ResultFrame {
    let (passed, failed, errored, not_runnable) = stored.result.totals();
    ResultFrame {
        id,
        state: CampaignState::Done.name().to_owned(),
        error: None,
        cancelled: stored.cancelled as u64,
        all_green: stored.result.all_green(),
        report: stored.result.to_string(),
        passed: passed as u64,
        failed: failed as u64,
        errored: errored as u64,
        not_runnable: not_runnable as u64,
    }
}

fn cancelled_frame(id: CampaignId) -> ResultFrame {
    ResultFrame {
        id,
        state: CampaignState::Cancelled.name().to_owned(),
        error: None,
        cancelled: 0,
        all_green: false,
        report: String::new(),
        passed: 0,
        failed: 0,
        errored: 0,
        not_runnable: 0,
    }
}

fn failed_frame(id: CampaignId, error: String) -> ResultFrame {
    ResultFrame {
        id,
        state: CampaignState::Failed(String::new()).name().to_owned(),
        error: Some(error),
        cancelled: 0,
        all_green: false,
        report: String::new(),
        passed: 0,
        failed: 0,
        errored: 0,
        not_runnable: 0,
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let mut line = frame.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(server: Server, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let frame = match Frame::decode(&line) {
            Ok(frame) => frame,
            Err(e) => {
                let reply = Frame::Error {
                    message: format!("bad frame: {}", e.0),
                };
                if write_frame(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        // Held until this frame's response is flushed: a SIGTERM arriving
        // mid-dispatch waits for the reply instead of racing it.
        let _admission = server.begin_admission();
        let keep = match frame {
            Frame::Submit(spec) => match server.submit(&spec) {
                Ok(id) => {
                    write_frame(&mut writer, &Frame::Submitted { id }).is_ok()
                        && (!spec.watch || stream_campaign(&server, &mut writer, id))
                }
                Err(message) => write_frame(&mut writer, &Frame::Error { message }).is_ok(),
            },
            Frame::Watch { id } => stream_campaign(&server, &mut writer, id),
            Frame::Fetch { id } => write_frame(&mut writer, &server.fetch(id)).is_ok(),
            Frame::Cancel { id } => {
                let reply = match server.cancel(id) {
                    Ok(()) => Frame::Ok,
                    Err(message) => Frame::Error { message },
                };
                write_frame(&mut writer, &reply).is_ok()
            }
            Frame::Status => write_frame(
                &mut writer,
                &Frame::Status2 {
                    rows: server.status_rows(),
                },
            )
            .is_ok(),
            Frame::Metrics { id } => {
                let reply = match server.metrics(id) {
                    Ok(metrics) => Frame::MetricsReply { id, metrics },
                    Err(message) => Frame::Error { message },
                };
                write_frame(&mut writer, &reply).is_ok()
            }
            Frame::Shutdown => {
                let ok = write_frame(&mut writer, &Frame::Ok).is_ok();
                server.begin_shutdown();
                ok
            }
            Frame::Ping => write_frame(&mut writer, &Frame::Pong).is_ok(),
            _ => write_frame(
                &mut writer,
                &Frame::Error {
                    message: "unexpected response frame".to_owned(),
                },
            )
            .is_ok(),
        };
        if !keep {
            return;
        }
    }
}

/// Streams one campaign to one connection: replayed + live `event`
/// frames, then the `result`. A write failure (client gone) just drops
/// the subscription; the campaign keeps running.
fn stream_campaign(server: &Server, writer: &mut TcpStream, id: CampaignId) -> bool {
    let rx = match server.subscribe(id) {
        Ok(rx) => rx,
        Err(message) => return write_frame(writer, &Frame::Error { message }).is_ok(),
    };
    for msg in rx {
        let ok = match msg {
            HubMsg::Event(event) => write_frame(writer, &Frame::Event { id, event }).is_ok(),
            HubMsg::Done(result) => return write_frame(writer, &Frame::Result(result)).is_ok(),
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    // Socket-level coverage lives in tests/server_conformance.rs (its
    // own process, away from the signal-flag unit test). These cover
    // the hub's replay contract in isolation.

    #[test]
    fn hub_replays_history_and_verdict_to_late_subscribers() {
        let hub = EventHub::new();
        let event = EngineEvent::JobStarted {
            cell: 0,
            suite: "s".into(),
            stand: "t".into(),
        };
        let live = hub.subscribe();
        hub.publish(event.clone());
        hub.finish(cancelled_frame(CampaignId(1)));
        let late = hub.subscribe();
        for rx in [live, late] {
            let msgs: Vec<HubMsg> = rx.into_iter().collect();
            assert_eq!(msgs.len(), 2);
            assert!(matches!(&msgs[0], HubMsg::Event(e) if *e == event));
            assert!(matches!(&msgs[1], HubMsg::Done(done) if done.state == "cancelled"));
        }
    }

    #[test]
    fn hub_retires_dropped_subscribers() {
        let hub = EventHub::new();
        drop(hub.subscribe());
        hub.publish(EngineEvent::JobStarted {
            cell: 0,
            suite: "s".into(),
            stand: "t".into(),
        });
        assert_eq!(hub.inner.lock().unwrap().subs.len(), 0);
        assert_eq!(hub.inner.lock().unwrap().history.len(), 1);
    }
}
