//! A blocking wire client for `comptest serve`.
//!
//! [`Client`] wraps one TCP connection with typed request/reply helpers
//! over the [`protocol`](crate::protocol) frames. It is deliberately
//! synchronous — the CLI subcommands, the conformance tests and the
//! `s10_serve` load generator all drive it from plain threads.
//!
//! Errors are rendered `String`s throughout: transport failures and
//! server-side `error` frames arrive through the same channel, so call
//! sites report them uniformly.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use comptest_core::service::CampaignId;
use comptest_engine::codec::Value;
use comptest_engine::EngineEvent;

use crate::protocol::{CampaignSpec, Frame, ResultFrame, StatusRow};

/// A fetched campaign's reply: ready verdict or still-live state.
#[derive(Debug, Clone, PartialEq)]
pub enum Fetched {
    /// The campaign reached a terminal state; here is its verdict.
    Ready(ResultFrame),
    /// The campaign is still `queued` or `running` (the payload).
    Pending(String),
}

/// One blocking connection to a `comptest serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// Returns a rendered error if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        // Frames are small and the protocol is request/response; Nagle's
        // algorithm colliding with delayed ACKs would put a ~40 ms floor
        // under every round-trip.
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| format!("connect: {e}"))
            .map(BufReader::new)?;
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Sends one frame (one line).
    ///
    /// # Errors
    ///
    /// Returns a rendered transport error.
    pub fn send(&mut self, frame: &Frame) -> Result<(), String> {
        let mut line = frame.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))
    }

    /// Receives the next frame, skipping blank lines.
    ///
    /// # Errors
    ///
    /// Returns a rendered error on EOF (server gone), transport failure
    /// or an undecodable line.
    pub fn recv(&mut self) -> Result<Frame, String> {
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("recv: connection closed".to_owned());
            }
            if line.trim().is_empty() {
                continue;
            }
            return Frame::decode(line.trim_end()).map_err(|e| format!("recv: {}", e.0));
        }
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, String> {
        self.send(frame)?;
        match self.recv()? {
            Frame::Error { message } => Err(message),
            reply => Ok(reply),
        }
    }

    /// Submits a campaign (with `spec.watch` forced off — use
    /// [`submit_and_watch`](Client::submit_and_watch) to stream) and
    /// returns its stable id.
    ///
    /// # Errors
    ///
    /// Returns the server's rendered rejection or a transport error.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<CampaignId, String> {
        let mut spec = spec.clone();
        spec.watch = false;
        match self.request(&Frame::Submit(spec))? {
            Frame::Submitted { id } => Ok(id),
            other => Err(format!("unexpected reply to submit: {other:?}")),
        }
    }

    /// Submits with streaming: calls `on_event` for every event frame
    /// and returns `(id, verdict)` when the terminal `result` arrives.
    ///
    /// # Errors
    ///
    /// Returns the server's rendered rejection or a transport error.
    pub fn submit_and_watch(
        &mut self,
        spec: &CampaignSpec,
        on_event: impl FnMut(&EngineEvent),
    ) -> Result<(CampaignId, ResultFrame), String> {
        let mut spec = spec.clone();
        spec.watch = true;
        match self.request(&Frame::Submit(spec))? {
            Frame::Submitted { id } => {
                let result = self.stream_until_result(on_event)?;
                Ok((id, result))
            }
            other => Err(format!("unexpected reply to submit: {other:?}")),
        }
    }

    /// Subscribes to a campaign: replayed + live events through
    /// `on_event`, returning the terminal verdict.
    ///
    /// # Errors
    ///
    /// Returns the server's rendered error (unknown id) or a transport
    /// error.
    pub fn watch(
        &mut self,
        id: CampaignId,
        on_event: impl FnMut(&EngineEvent),
    ) -> Result<ResultFrame, String> {
        self.send(&Frame::Watch { id })?;
        self.stream_until_result(on_event)
    }

    fn stream_until_result(
        &mut self,
        mut on_event: impl FnMut(&EngineEvent),
    ) -> Result<ResultFrame, String> {
        loop {
            match self.recv()? {
                Frame::Event { event, .. } => on_event(&event),
                Frame::Result(result) => return Ok(result),
                Frame::Error { message } => return Err(message),
                other => return Err(format!("unexpected frame in stream: {other:?}")),
            }
        }
    }

    /// Fetches a campaign's verdict by id, without subscribing.
    ///
    /// # Errors
    ///
    /// Returns the server's rendered error (unknown id) or a transport
    /// error.
    pub fn fetch(&mut self, id: CampaignId) -> Result<Fetched, String> {
        match self.request(&Frame::Fetch { id })? {
            Frame::Result(result) => Ok(Fetched::Ready(result)),
            Frame::Pending { state, .. } => Ok(Fetched::Pending(state)),
            other => Err(format!("unexpected reply to fetch: {other:?}")),
        }
    }

    /// Cancels a campaign by id (queued: never launches; running:
    /// cooperative).
    ///
    /// # Errors
    ///
    /// Returns the server's rendered error (unknown id) or a transport
    /// error.
    pub fn cancel(&mut self, id: CampaignId) -> Result<(), String> {
        match self.request(&Frame::Cancel { id })? {
            Frame::Ok => Ok(()),
            other => Err(format!("unexpected reply to cancel: {other:?}")),
        }
    }

    /// Every campaign's lifecycle state, in submission order.
    ///
    /// # Errors
    ///
    /// Returns a rendered transport error.
    pub fn status(&mut self) -> Result<Vec<StatusRow>, String> {
        match self.request(&Frame::Status)? {
            Frame::Status2 { rows } => Ok(rows),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// One campaign's metrics snapshot document.
    ///
    /// # Errors
    ///
    /// Returns the server's rendered error (unknown id) or a transport
    /// error.
    pub fn metrics(&mut self, id: CampaignId) -> Result<Value, String> {
        match self.request(&Frame::Metrics { id })? {
            Frame::MetricsReply { metrics, .. } => Ok(metrics),
            other => Err(format!("unexpected reply to metrics: {other:?}")),
        }
    }

    /// Asks the daemon to shut down gracefully (drain, then exit).
    ///
    /// # Errors
    ///
    /// Returns a rendered transport error.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Frame::Shutdown)? {
            Frame::Ok => Ok(()),
            other => Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns a rendered transport error.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(format!("unexpected reply to ping: {other:?}")),
        }
    }
}
