//! SIGINT/SIGTERM handling for graceful shutdown, without a libc crate.
//!
//! The build container has no registry access, so the usual `ctrlc` /
//! `signal-hook` crates are unavailable; the process is already linked
//! against the platform C library through `std`, so one `extern "C"`
//! declaration of `signal(2)` is all that is needed. The handler does
//! the only async-signal-safe thing a handler should: it stores into a
//! static atomic flag. Everything else — draining campaigns, flushing
//! caches — happens on normal threads that poll [`triggered`].
//!
//! This module is the crate's single `#[allow(unsafe_code)]` island (the
//! crate root denies it everywhere else).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use comptest_engine::CancelToken;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the flag-setting handler for SIGINT and SIGTERM. Idempotent;
/// call once near process start. After this, Ctrl-C no longer kills the
/// process — pair it with a [`triggered`] poll (or
/// [`cancel_on_signal`]) that drains and exits.
pub fn install() {
    #[allow(unsafe_code)]
    // SAFETY: `signal` is the C standard library's handler registration;
    // the handler only stores to a static atomic, which is
    // async-signal-safe.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// True once SIGINT/SIGTERM arrived (or [`trigger`] was called).
pub fn triggered() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag programmatically — what the wire `shutdown`
/// frame and the tests use; indistinguishable from a real signal to
/// every poller.
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Spawns a watcher thread that trips `token` as soon as a shutdown
/// signal arrives, then exits. This is how the one-shot
/// `comptest campaign` gets cooperative Ctrl-C cancellation: the
/// campaign drains at the next job boundary and the process exits
/// through the normal reporting path instead of dying mid-write.
///
/// The thread polls every 50 ms and parks forever if no signal ever
/// comes — it is a daemon thread, reaped at process exit.
pub fn cancel_on_signal(token: CancelToken) {
    std::thread::spawn(move || loop {
        if triggered() {
            token.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_trips_watched_tokens() {
        install();
        let token = CancelToken::new();
        cancel_on_signal(token.clone());
        assert!(!token.is_cancelled());
        trigger();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() {
            assert!(std::time::Instant::now() < deadline, "watcher never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(triggered());
    }
}
