//! The `comptest serve` wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one JSON object on one line, with a `"type"` field
//! naming the frame kind — the same framing in both directions, encoded
//! and parsed by the shared [`comptest_engine::codec`] (the hand-rolled
//! JSON layer the cache records already use, hoisted for exactly this).
//! The parser is hostile-input hardened, so a garbage line from a peer
//! becomes an [`Error`](Frame::Error) frame, never a panic.
//!
//! # Frame reference
//!
//! Client → server requests:
//!
//! | frame | fields | reply |
//! |---|---|---|
//! | `submit` | `stands` (paths), optional `suites` (bundled names, default all), `granularity` (`cell`\|`test`), `stop_on_first_fail`, `cache` (use the shared store, default `true`), `executor` (`pooled`\|`async`), `watch` | `submitted`, then (with `watch`) `event`… and a final `result` |
//! | `watch` | `id` | replayed + live `event` frames, then `result` |
//! | `fetch` | `id` | `result` if terminal, else `pending` |
//! | `cancel` | `id` | `ok` |
//! | `status` | — | `status` (every campaign's lifecycle state) |
//! | `metrics` | `id` | `metrics` (that campaign's recorder snapshot) |
//! | `shutdown` | — | `ok`, then graceful drain |
//! | `ping` | — | `pong` |
//!
//! Server → client frames: `submitted {id}`, `event {id, event}`,
//! `result {id, state, …}`, `pending {id, state}`, `status`, `metrics`,
//! `ok`, `pong`, `error {message}`.
//!
//! Campaign lifecycle states a `result`/`pending`/`status` frame can
//! carry: `queued → running → done`, with `cancelled` (never launched)
//! and `failed` (launch/join error, rendered in `error`) terminal
//! branches — see [`comptest_core::service::CampaignState`].

use std::collections::BTreeMap;
use std::str::FromStr;
use std::time::Duration;

use comptest_core::service::CampaignId;
use comptest_engine::codec::{parse, JsonError, Value};
use comptest_engine::{EngineEvent, Granularity};

/// Which shared executor a submission runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorChoice {
    /// The daemon's shared lane-fair [`WorkerPool`](comptest_engine::WorkerPool).
    #[default]
    Pooled,
    /// The daemon's shared [`AsyncExecutor`](comptest_engine::AsyncExecutor)
    /// configuration (sim-time event loop).
    Async,
}

impl ExecutorChoice {
    fn name(self) -> &'static str {
        match self {
            ExecutorChoice::Pooled => "pooled",
            ExecutorChoice::Async => "async",
        }
    }
}

impl FromStr for ExecutorChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pooled" => Ok(ExecutorChoice::Pooled),
            "async" => Ok(ExecutorChoice::Async),
            other => Err(format!("unknown executor {other:?} (pooled, async)")),
        }
    }
}

/// One campaign submission as it travels on the wire. Stand files are
/// loaded **server-side** from `stands` paths; suites name a subset of
/// the daemon's bundled workbooks (empty = all of them).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Stand file paths, resolved on the server's filesystem.
    pub stands: Vec<String>,
    /// Bundled suite names to run (empty = every bundled suite).
    pub suites: Vec<String>,
    /// Scheduling granularity.
    pub granularity: Granularity,
    /// Cancel remaining jobs on the first failure.
    pub stop_on_first_fail: bool,
    /// Consult/fill the daemon's shared cache (if one is configured).
    pub cache: bool,
    /// Which shared executor runs the campaign.
    pub executor: ExecutorChoice,
    /// Stream events back on the submitting connection.
    pub watch: bool,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self {
            stands: Vec::new(),
            suites: Vec::new(),
            granularity: Granularity::default(),
            stop_on_first_fail: false,
            cache: true,
            executor: ExecutorChoice::default(),
            watch: false,
        }
    }
}

/// A finished (or failed) campaign's verdict as one wire frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// The campaign id.
    pub id: CampaignId,
    /// Terminal lifecycle state: `done`, `cancelled` or `failed`.
    pub state: String,
    /// The rendered launch/join error when `state == "failed"`.
    pub error: Option<String>,
    /// Jobs skipped by cancellation.
    pub cancelled: u64,
    /// True when every cell ran and passed.
    pub all_green: bool,
    /// The result matrix rendered exactly as local execution renders it
    /// (`CampaignResult`'s `Display`) — the byte-identity surface.
    pub report: String,
    /// Tests passed across the matrix.
    pub passed: u64,
    /// Tests failed across the matrix.
    pub failed: u64,
    /// Tests errored across the matrix.
    pub errored: u64,
    /// Cells that could not be planned.
    pub not_runnable: u64,
}

/// One campaign's row in a `status` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusRow {
    /// The campaign id.
    pub id: CampaignId,
    /// Lifecycle state name (`queued`, `running`, `done`, `cancelled`,
    /// `failed`).
    pub state: String,
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- requests ----
    /// Submit a campaign.
    Submit(CampaignSpec),
    /// Subscribe to a campaign's events (replay + live).
    Watch {
        /// Campaign to watch.
        id: CampaignId,
    },
    /// Fetch a campaign's verdict without subscribing.
    Fetch {
        /// Campaign to fetch.
        id: CampaignId,
    },
    /// Cancel a campaign (queued: never launches; running: cooperative).
    Cancel {
        /// Campaign to cancel.
        id: CampaignId,
    },
    /// List every campaign's lifecycle state.
    Status,
    /// Request one campaign's metrics snapshot.
    Metrics {
        /// Campaign whose recorder to snapshot.
        id: CampaignId,
    },
    /// Begin graceful shutdown (drain in-flight campaigns, then exit).
    Shutdown,
    /// Liveness probe.
    Ping,

    // ---- responses ----
    /// A submission was accepted under this id.
    Submitted {
        /// The assigned stable id.
        id: CampaignId,
    },
    /// One live engine event of a watched campaign.
    Event {
        /// The campaign the event belongs to.
        id: CampaignId,
        /// The typed engine event.
        event: EngineEvent,
    },
    /// A terminal verdict.
    Result(ResultFrame),
    /// The campaign exists but is not terminal yet.
    Pending {
        /// The campaign id.
        id: CampaignId,
        /// Current lifecycle state (`queued` or `running`).
        state: String,
    },
    /// The daemon's campaign table.
    Status2 {
        /// One row per known campaign, id order (= submission order).
        rows: Vec<StatusRow>,
    },
    /// One campaign's metrics snapshot (the recorder's counters, gauges,
    /// phase timers and histograms as `MetricsSnapshot::to_json` emits
    /// them).
    MetricsReply {
        /// The campaign id.
        id: CampaignId,
        /// The snapshot document.
        metrics: Value,
    },
    /// Generic success.
    Ok,
    /// Liveness reply.
    Pong,
    /// A request failed; the connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn id_value(id: CampaignId) -> Value {
    Value::str(id.to_string())
}

fn id_from(value: &Value) -> Result<CampaignId, JsonError> {
    value.field("id")?.as_str()?.parse().map_err(JsonError)
}

/// Encodes an engine event as its wire object. Unknown future variants
/// encode as `{"kind":"other"}` so an old client degrades gracefully
/// instead of killing the stream. `duration` travels as integer
/// microseconds.
pub fn event_to_value(event: &EngineEvent) -> Value {
    let kind = |name: &str| ("kind", Value::str(name));
    match event {
        EngineEvent::JobStarted { cell, suite, stand } => obj(vec![
            kind("job_started"),
            ("cell", Value::u64(*cell as u64)),
            ("suite", Value::str(suite.clone())),
            ("stand", Value::str(stand.clone())),
        ]),
        EngineEvent::JobFinished {
            cell,
            suite,
            stand,
            status,
            failed,
        } => obj(vec![
            kind("job_finished"),
            ("cell", Value::u64(*cell as u64)),
            ("suite", Value::str(suite.clone())),
            ("stand", Value::str(stand.clone())),
            ("status", Value::str(status.clone())),
            ("failed", Value::Bool(*failed)),
        ]),
        EngineEvent::TestStarted {
            cell,
            test,
            suite,
            stand,
            name,
        } => obj(vec![
            kind("test_started"),
            ("cell", Value::u64(*cell as u64)),
            ("test", Value::u64(*test as u64)),
            ("suite", Value::str(suite.clone())),
            ("stand", Value::str(stand.clone())),
            ("name", Value::str(name.clone())),
        ]),
        EngineEvent::TestFinished {
            cell,
            test,
            suite,
            stand,
            name,
            status,
            failed,
            duration,
        } => obj(vec![
            kind("test_finished"),
            ("cell", Value::u64(*cell as u64)),
            ("test", Value::u64(*test as u64)),
            ("suite", Value::str(suite.clone())),
            ("stand", Value::str(stand.clone())),
            ("name", Value::str(name.clone())),
            ("status", Value::str(status.clone())),
            ("failed", Value::Bool(*failed)),
            ("duration_micros", Value::u64(duration.as_micros() as u64)),
        ]),
        EngineEvent::CellCached {
            cell,
            test,
            suite,
            stand,
            status,
        } => obj(vec![
            kind("cell_cached"),
            ("cell", Value::u64(*cell as u64)),
            (
                "test",
                match test {
                    Some(t) => Value::u64(*t as u64),
                    None => Value::Null,
                },
            ),
            ("suite", Value::str(suite.clone())),
            ("stand", Value::str(stand.clone())),
            ("status", Value::str(status.clone())),
        ]),
        EngineEvent::CellCacheCorrupt { cell, suite, stand } => obj(vec![
            kind("cell_cache_corrupt"),
            ("cell", Value::u64(*cell as u64)),
            ("suite", Value::str(suite.clone())),
            ("stand", Value::str(stand.clone())),
        ]),
        EngineEvent::CampaignDone {
            passed,
            failed,
            errored,
            not_runnable,
            cancelled,
        } => obj(vec![
            kind("campaign_done"),
            ("passed", Value::u64(*passed as u64)),
            ("failed", Value::u64(*failed as u64)),
            ("errored", Value::u64(*errored as u64)),
            ("not_runnable", Value::u64(*not_runnable as u64)),
            ("cancelled", Value::u64(*cancelled as u64)),
        ]),
        _ => obj(vec![kind("other")]),
    }
}

/// Decodes a wire event object back into an [`EngineEvent`].
///
/// # Errors
///
/// Returns a [`JsonError`] for unknown kinds (including `other`) or
/// missing/mistyped fields.
pub fn event_from_value(value: &Value) -> Result<EngineEvent, JsonError> {
    let get_usize =
        |name: &str| -> Result<usize, JsonError> { Ok(value.field(name)?.as_u64()? as usize) };
    let get_str =
        |name: &str| -> Result<String, JsonError> { Ok(value.field(name)?.as_str()?.to_owned()) };
    let get_bool = |name: &str| -> Result<bool, JsonError> { value.field(name)?.as_bool() };
    match value.field("kind")?.as_str()? {
        "job_started" => Ok(EngineEvent::JobStarted {
            cell: get_usize("cell")?,
            suite: get_str("suite")?,
            stand: get_str("stand")?,
        }),
        "job_finished" => Ok(EngineEvent::JobFinished {
            cell: get_usize("cell")?,
            suite: get_str("suite")?,
            stand: get_str("stand")?,
            status: get_str("status")?,
            failed: get_bool("failed")?,
        }),
        "test_started" => Ok(EngineEvent::TestStarted {
            cell: get_usize("cell")?,
            test: get_usize("test")?,
            suite: get_str("suite")?,
            stand: get_str("stand")?,
            name: get_str("name")?,
        }),
        "test_finished" => Ok(EngineEvent::TestFinished {
            cell: get_usize("cell")?,
            test: get_usize("test")?,
            suite: get_str("suite")?,
            stand: get_str("stand")?,
            name: get_str("name")?,
            status: get_str("status")?,
            failed: get_bool("failed")?,
            duration: Duration::from_micros(value.field("duration_micros")?.as_u64()?),
        }),
        "cell_cached" => Ok(EngineEvent::CellCached {
            cell: get_usize("cell")?,
            test: match value.field("test")? {
                Value::Null => None,
                other => Some(other.as_u64()? as usize),
            },
            suite: get_str("suite")?,
            stand: get_str("stand")?,
            status: get_str("status")?,
        }),
        "cell_cache_corrupt" => Ok(EngineEvent::CellCacheCorrupt {
            cell: get_usize("cell")?,
            suite: get_str("suite")?,
            stand: get_str("stand")?,
        }),
        "campaign_done" => Ok(EngineEvent::CampaignDone {
            passed: get_usize("passed")?,
            failed: get_usize("failed")?,
            errored: get_usize("errored")?,
            not_runnable: get_usize("not_runnable")?,
            cancelled: get_usize("cancelled")?,
        }),
        other => Err(JsonError(format!("unknown event kind {other:?}"))),
    }
}

impl Frame {
    /// Encodes the frame as its one-line JSON document (no trailing
    /// newline — the transport adds the frame delimiter).
    pub fn encode(&self) -> String {
        self.to_value().render()
    }

    fn to_value(&self) -> Value {
        let typed = |name: &str, mut rest: Vec<(&str, Value)>| {
            let mut fields = vec![("type", Value::str(name))];
            fields.append(&mut rest);
            obj(fields)
        };
        match self {
            Frame::Submit(spec) => typed(
                "submit",
                vec![
                    (
                        "stands",
                        Value::Array(spec.stands.iter().map(Value::str).collect()),
                    ),
                    (
                        "suites",
                        Value::Array(spec.suites.iter().map(Value::str).collect()),
                    ),
                    ("granularity", Value::str(spec.granularity.to_string())),
                    ("stop_on_first_fail", Value::Bool(spec.stop_on_first_fail)),
                    ("cache", Value::Bool(spec.cache)),
                    ("executor", Value::str(spec.executor.name())),
                    ("watch", Value::Bool(spec.watch)),
                ],
            ),
            Frame::Watch { id } => typed("watch", vec![("id", id_value(*id))]),
            Frame::Fetch { id } => typed("fetch", vec![("id", id_value(*id))]),
            Frame::Cancel { id } => typed("cancel", vec![("id", id_value(*id))]),
            Frame::Status => typed("status", vec![]),
            Frame::Metrics { id } => typed("metrics", vec![("id", id_value(*id))]),
            Frame::Shutdown => typed("shutdown", vec![]),
            Frame::Ping => typed("ping", vec![]),
            Frame::Submitted { id } => typed("submitted", vec![("id", id_value(*id))]),
            Frame::Event { id, event } => typed(
                "event",
                vec![("id", id_value(*id)), ("event", event_to_value(event))],
            ),
            Frame::Result(result) => typed(
                "result",
                vec![
                    ("id", id_value(result.id)),
                    ("state", Value::str(result.state.clone())),
                    (
                        "error",
                        match &result.error {
                            Some(e) => Value::str(e.clone()),
                            None => Value::Null,
                        },
                    ),
                    ("cancelled", Value::u64(result.cancelled)),
                    ("all_green", Value::Bool(result.all_green)),
                    ("report", Value::str(result.report.clone())),
                    ("passed", Value::u64(result.passed)),
                    ("failed", Value::u64(result.failed)),
                    ("errored", Value::u64(result.errored)),
                    ("not_runnable", Value::u64(result.not_runnable)),
                ],
            ),
            Frame::Pending { id, state } => typed(
                "pending",
                vec![("id", id_value(*id)), ("state", Value::str(state.clone()))],
            ),
            Frame::Status2 { rows } => typed(
                "status",
                vec![(
                    "campaigns",
                    Value::Array(
                        rows.iter()
                            .map(|row| {
                                obj(vec![
                                    ("id", id_value(row.id)),
                                    ("state", Value::str(row.state.clone())),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            Frame::MetricsReply { id, metrics } => typed(
                "metrics",
                vec![("id", id_value(*id)), ("metrics", metrics.clone())],
            ),
            Frame::Ok => typed("ok", vec![]),
            Frame::Pong => typed("pong", vec![]),
            Frame::Error { message } => {
                typed("error", vec![("message", Value::str(message.clone()))])
            }
        }
    }

    /// Decodes one frame line (request or response).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, an unknown `type` or
    /// missing/mistyped fields.
    pub fn decode(line: &str) -> Result<Frame, JsonError> {
        let value = parse(line)?;
        let frame_type = value.field("type")?.as_str()?.to_owned();
        // Responses and requests share the `status`/`metrics` names; the
        // presence of payload fields disambiguates.
        match frame_type.as_str() {
            "submit" => {
                let strings = |name: &str| -> Result<Vec<String>, JsonError> {
                    value
                        .field(name)?
                        .as_array()?
                        .iter()
                        .map(|v| Ok(v.as_str()?.to_owned()))
                        .collect()
                };
                Ok(Frame::Submit(CampaignSpec {
                    stands: strings("stands")?,
                    suites: strings("suites")?,
                    granularity: value
                        .field("granularity")?
                        .as_str()?
                        .parse()
                        .map_err(JsonError)?,
                    stop_on_first_fail: value.field("stop_on_first_fail")?.as_bool()?,
                    cache: value.field("cache")?.as_bool()?,
                    executor: value
                        .field("executor")?
                        .as_str()?
                        .parse()
                        .map_err(JsonError)?,
                    watch: value.field("watch")?.as_bool()?,
                }))
            }
            "watch" => Ok(Frame::Watch {
                id: id_from(&value)?,
            }),
            "fetch" => Ok(Frame::Fetch {
                id: id_from(&value)?,
            }),
            "cancel" => Ok(Frame::Cancel {
                id: id_from(&value)?,
            }),
            "status" => match value.field("campaigns") {
                Err(_) => Ok(Frame::Status),
                Ok(campaigns) => Ok(Frame::Status2 {
                    rows: campaigns
                        .as_array()?
                        .iter()
                        .map(|row| {
                            Ok(StatusRow {
                                id: id_from(row)?,
                                state: row.field("state")?.as_str()?.to_owned(),
                            })
                        })
                        .collect::<Result<_, JsonError>>()?,
                }),
            },
            "metrics" => match value.field("metrics") {
                Err(_) => Ok(Frame::Metrics {
                    id: id_from(&value)?,
                }),
                Ok(metrics) => Ok(Frame::MetricsReply {
                    id: id_from(&value)?,
                    metrics: metrics.clone(),
                }),
            },
            "shutdown" => Ok(Frame::Shutdown),
            "ping" => Ok(Frame::Ping),
            "submitted" => Ok(Frame::Submitted {
                id: id_from(&value)?,
            }),
            "event" => Ok(Frame::Event {
                id: id_from(&value)?,
                event: event_from_value(value.field("event")?)?,
            }),
            "result" => Ok(Frame::Result(ResultFrame {
                id: id_from(&value)?,
                state: value.field("state")?.as_str()?.to_owned(),
                error: match value.field("error")? {
                    Value::Null => None,
                    other => Some(other.as_str()?.to_owned()),
                },
                cancelled: value.field("cancelled")?.as_u64()?,
                all_green: value.field("all_green")?.as_bool()?,
                report: value.field("report")?.as_str()?.to_owned(),
                passed: value.field("passed")?.as_u64()?,
                failed: value.field("failed")?.as_u64()?,
                errored: value.field("errored")?.as_u64()?,
                not_runnable: value.field("not_runnable")?.as_u64()?,
            })),
            "pending" => Ok(Frame::Pending {
                id: id_from(&value)?,
                state: value.field("state")?.as_str()?.to_owned(),
            }),
            "ok" => Ok(Frame::Ok),
            "pong" => Ok(Frame::Pong),
            "error" => Ok(Frame::Error {
                message: value.field("message")?.as_str()?.to_owned(),
            }),
            other => Err(JsonError(format!("unknown frame type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let line = frame.encode();
        assert!(!line.contains('\n'), "frames must be one line: {line}");
        assert_eq!(Frame::decode(&line).unwrap(), frame, "{line}");
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Submit(CampaignSpec {
            stands: vec!["assets/stand_a.stand".into()],
            suites: vec!["interior_light".into()],
            granularity: Granularity::Test,
            stop_on_first_fail: true,
            cache: false,
            executor: ExecutorChoice::Async,
            watch: true,
        }));
        roundtrip(Frame::Submit(CampaignSpec::default()));
        roundtrip(Frame::Watch { id: CampaignId(7) });
        roundtrip(Frame::Fetch { id: CampaignId(7) });
        roundtrip(Frame::Cancel { id: CampaignId(7) });
        roundtrip(Frame::Status);
        roundtrip(Frame::Metrics { id: CampaignId(1) });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Ping);
        roundtrip(Frame::Submitted { id: CampaignId(3) });
        roundtrip(Frame::Result(ResultFrame {
            id: CampaignId(3),
            state: "done".into(),
            error: None,
            cancelled: 2,
            all_green: false,
            report: "interior_light on HIL-A PASS (3P/0F/0E)\n".into(),
            passed: 3,
            failed: 0,
            errored: 0,
            not_runnable: 0,
        }));
        roundtrip(Frame::Result(ResultFrame {
            id: CampaignId(4),
            state: "failed".into(),
            error: Some("launch exploded".into()),
            cancelled: 0,
            all_green: false,
            report: String::new(),
            passed: 0,
            failed: 0,
            errored: 0,
            not_runnable: 0,
        }));
        roundtrip(Frame::Pending {
            id: CampaignId(3),
            state: "running".into(),
        });
        roundtrip(Frame::Status2 {
            rows: vec![
                StatusRow {
                    id: CampaignId(1),
                    state: "done".into(),
                },
                StatusRow {
                    id: CampaignId(2),
                    state: "queued".into(),
                },
            ],
        });
        roundtrip(Frame::MetricsReply {
            id: CampaignId(1),
            metrics: parse("{\"counters\":{\"jobs_planned\":4}}").unwrap(),
        });
        roundtrip(Frame::Ok);
        roundtrip(Frame::Pong);
        roundtrip(Frame::Error {
            message: "unknown id \"c-9\"".into(),
        });
    }

    #[test]
    fn events_roundtrip() {
        let events = [
            EngineEvent::JobStarted {
                cell: 1,
                suite: "s".into(),
                stand: "t".into(),
            },
            EngineEvent::JobFinished {
                cell: 1,
                suite: "s".into(),
                stand: "t".into(),
                status: "PASS (1P/0F/0E)".into(),
                failed: false,
            },
            EngineEvent::TestStarted {
                cell: 0,
                test: 2,
                suite: "s".into(),
                stand: "t".into(),
                name: "n".into(),
            },
            EngineEvent::TestFinished {
                cell: 0,
                test: 2,
                suite: "s".into(),
                stand: "t".into(),
                name: "n".into(),
                status: "FAIL".into(),
                failed: true,
                duration: Duration::from_micros(1234),
            },
            EngineEvent::CellCached {
                cell: 0,
                test: None,
                suite: "s".into(),
                stand: "t".into(),
                status: "PASS (1P/0F/0E)".into(),
            },
            EngineEvent::CellCached {
                cell: 0,
                test: Some(4),
                suite: "s".into(),
                stand: "t".into(),
                status: "PASS".into(),
            },
            EngineEvent::CellCacheCorrupt {
                cell: 3,
                suite: "s".into(),
                stand: "t".into(),
            },
            EngineEvent::CampaignDone {
                passed: 1,
                failed: 2,
                errored: 3,
                not_runnable: 4,
                cancelled: 5,
            },
        ];
        for event in events {
            let round = event_from_value(&event_to_value(&event)).unwrap();
            assert_eq!(round, event);
        }
    }

    #[test]
    fn hostile_lines_error_cleanly() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"type\":\"nope\"}",
            "{\"type\":\"watch\"}",
            "{\"type\":\"watch\",\"id\":\"zzz\"}",
            "{\"type\":\"submit\"}",
            "{\"type\":\"event\",\"id\":\"c-1\",\"event\":{\"kind\":\"other\"}}",
            "[1,2,3]",
        ] {
            assert!(Frame::decode(line).is_err(), "{line:?} should not decode");
        }
    }
}
