//! `comptest-server` — a resident multi-tenant campaign service.
//!
//! The batch CLI pays campaign startup (suite parsing, executor
//! construction, cold caches) on every invocation. This crate keeps all
//! of that **resident**: a [`Server`] daemon loads the bundled suites
//! once, owns one shared lane-fair worker pool, one async-executor
//! configuration and one on-disk cell cache, and multiplexes any number
//! of concurrently submitted campaigns onto them — each tenant isolated
//! by its own [`CampaignId`], [`CancelToken`](comptest_engine::CancelToken),
//! metrics [`Recorder`](comptest_engine::Recorder) and event hub.
//!
//! # Protocol
//!
//! Newline-delimited JSON frames over TCP, encoded by the same
//! hand-rolled [`comptest_engine::codec`] the cache records use; see
//! [`protocol`] for the full frame reference and [`Frame`] for the
//! typed form. The important properties:
//!
//! - **Stable ids.** `submit` replies `submitted {id}`; the id stays
//!   valid for the daemon's lifetime.
//! - **Live streaming with replay.** `watch {id}` replays every event
//!   the campaign already emitted, then streams live, then delivers the
//!   terminal `result` — so a late (or reconnecting) client never
//!   misses anything.
//! - **Disconnect survival.** Dropping a connection only drops its
//!   subscription; the campaign keeps running and `fetch {id}` returns
//!   the verdict afterwards, from any connection.
//! - **Per-tenant observability.** `status` lists every campaign's
//!   lifecycle state; `metrics {id}` returns that campaign's own
//!   counter/gauge/phase snapshot.
//! - **Graceful shutdown.** `shutdown` (or SIGINT/SIGTERM, see
//!   [`signals`]) stops admissions, cancels queued campaigns, trips
//!   running ones and drains before exit.
//!
//! # Quickstart (in-process)
//!
//! ```no_run
//! use comptest_server::{CampaignSpec, Client, ServeConfig, Server};
//!
//! # fn main() -> Result<(), String> {
//! // Daemon side (usually `comptest serve --addr 127.0.0.1:7171`):
//! let server = Server::new(ServeConfig::new("assets"))?;
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
//! let addr = listener.local_addr().map_err(|e| e.to_string())?;
//! std::thread::spawn(move || server.run(listener));
//!
//! // Client side (usually `comptest submit` / `comptest watch`):
//! let mut client = Client::connect(addr)?;
//! let spec = CampaignSpec {
//!     stands: vec!["assets/stand_a.stand".into()],
//!     ..CampaignSpec::default()
//! };
//! let (id, verdict) = client.submit_and_watch(&spec, |event| {
//!     eprintln!("{event:?}");
//! })?;
//! println!("{id}: all green = {}", verdict.all_green);
//! print!("{}", verdict.report); // byte-identical to a local run
//! # Ok(())
//! # }
//! ```
//!
//! Served verdicts are **byte-identical** to direct local execution —
//! `ResultFrame::report` is the exact `CampaignResult` rendering a
//! `SerialExecutor` produces for the same matrix
//! (`tests/server_conformance.rs` proves it per granularity and cache
//! mode).

#![deny(unsafe_code)] // one scoped allow lives in `signals`

pub mod client;
pub mod protocol;
pub mod server;
pub mod signals;

pub use client::{Client, Fetched};
pub use protocol::{CampaignSpec, ExecutorChoice, Frame, ResultFrame, StatusRow};
pub use server::{EventHub, HubMsg, ServeConfig, Server};

pub use comptest_core::service::{CampaignId, CampaignState, ResultStore, StoredOutcome};
