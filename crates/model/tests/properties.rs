//! Property-based tests for the model crate's core invariants.

use comptest_model::{BitPattern, Env, Expr, SimTime};
use proptest::prelude::*;

/// Strategy producing arbitrary expressions over variables `a`, `b`, `u`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Finite literals formatted with `{}` roundtrip exactly.
        any::<f64>()
            .prop_filter("finite", |n| n.is_finite())
            .prop_map(Expr::Num),
        Just(Expr::Num(f64::INFINITY)),
        prop_oneof![Just("a"), Just("b"), Just("u")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
                comptest_model::expr::BinOp::Add,
                Box::new(x),
                Box::new(y)
            )),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
                comptest_model::expr::BinOp::Mul,
                Box::new(x),
                Box::new(y)
            )),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
                comptest_model::expr::BinOp::Sub,
                Box::new(x),
                Box::new(y)
            )),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
                comptest_model::expr::BinOp::Div,
                Box::new(x),
                Box::new(y)
            )),
            inner.clone().prop_map(|x| match x {
                // Mirror the parser's literal folding so roundtrips stay structural.
                Expr::Num(n) => Expr::Num(-n),
                other => Expr::Neg(Box::new(other)),
            }),
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|args| Expr::Call(comptest_model::expr::Func::Min, args)),
            prop::collection::vec(inner, 1..4)
                .prop_map(|args| Expr::Call(comptest_model::expr::Func::Max, args)),
        ]
    })
}

proptest! {
    /// `parse(display(e))` reproduces the expression structurally.
    #[test]
    fn expr_display_parse_roundtrip(e in arb_expr()) {
        let text = e.to_string();
        let reparsed = Expr::parse(&text)
            .unwrap_or_else(|err| panic!("display produced unparseable {text:?}: {err}"));
        prop_assert_eq!(&reparsed, &e, "roundtrip of {}", text);
    }

    /// Structural roundtrip implies evaluation equivalence.
    #[test]
    fn expr_roundtrip_preserves_value(e in arb_expr(), a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let mut env = Env::new();
        env.set("a", a);
        env.set("b", b);
        env.set("u", 12.0);
        let reparsed = Expr::parse(&e.to_string()).unwrap();
        match (e.eval(&env), reparsed.eval(&env)) {
            (Ok(x), Ok(y)) => prop_assert!(
                x == y || (x - y).abs() < 1e-9,
                "values diverged: {x} vs {y}"
            ),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "eval outcome diverged: {x:?} vs {y:?}"),
        }
    }

    /// Bit patterns roundtrip through their display form.
    #[test]
    fn bit_pattern_roundtrip(bits in any::<u64>(), width in 1u8..=64) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let p = BitPattern::new(bits & mask, width).unwrap();
        let back = BitPattern::parse(&p.to_string()).unwrap();
        prop_assert_eq!(back, p);
        prop_assert!(p.matches(bits & mask));
    }

    /// SimTime: parse of a formatted value is exact; ordering matches µs.
    #[test]
    fn simtime_roundtrip(us in 0u64..=10_000_000_000) {
        let t = SimTime::from_micros(us);
        let back: SimTime = t.to_string().trim_end_matches('s').parse::<SimTime>().unwrap();
        prop_assert_eq!(back, t);
    }

    /// SimTime arithmetic is associative and monotone.
    #[test]
    fn simtime_arithmetic(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000, c in 0u64..1_000_000_000) {
        let (ta, tb, tc) = (SimTime::from_micros(a), SimTime::from_micros(b), SimTime::from_micros(c));
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert!(ta + tb >= ta);
        prop_assert_eq!((ta + tb) - tb, ta);
    }

    /// Number parsing accepts both decimal separators identically.
    #[test]
    fn decimal_comma_equivalence(int_part in 0u32..100_000, frac in 0u32..1000) {
        let with_dot = format!("{int_part}.{frac:03}");
        let with_comma = format!("{int_part},{frac:03}");
        let a = comptest_model::value::parse_number(&with_dot).unwrap();
        let b = comptest_model::value::parse_number(&with_comma).unwrap();
        prop_assert_eq!(a, b);
    }
}
