//! Fixed-point simulation time.
//!
//! Step durations in the paper's sheets are seconds with a decimal comma
//! (`0,5`, `280`, `25`).  Accumulating such durations in `f64` would make the
//! 300 s interior-light timeout comparison fragile, so simulation time is an
//! integer number of **microseconds**.  The same type is used both for
//! instants (time since test start) and for durations.

use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulation time with microsecond resolution.
///
/// # Example
///
/// ```
/// use comptest_model::SimTime;
///
/// let step = SimTime::from_secs_f64(0.5);
/// let total = step * 7;
/// assert_eq!(total.to_string(), "3.5s");
/// assert!(total < SimTime::from_secs(300));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as "never" for event scheduling).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e6).round() as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (exact for times below ~2^53 µs).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// True if this is [`SimTime::ZERO`].
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parses a duration in seconds as written in a sheet cell: decimal
    /// point **or** decimal comma (`0,5`), optional trailing `s` unit.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSimTimeError`] for empty, negative or non-numeric input.
    ///
    /// ```
    /// use comptest_model::SimTime;
    /// assert_eq!("0,5".parse::<SimTime>()?, SimTime::from_millis(500));
    /// assert_eq!("280".parse::<SimTime>()?, SimTime::from_secs(280));
    /// # Ok::<(), comptest_model::time::ParseSimTimeError>(())
    /// ```
    pub fn parse_secs(s: &str) -> Result<SimTime, ParseSimTimeError> {
        let raw = s.trim();
        let raw = raw.strip_suffix(['s', 'S']).unwrap_or(raw).trim();
        if raw.is_empty() {
            return Err(ParseSimTimeError::new(s));
        }
        let normalized = raw.replace(',', ".");
        let secs: f64 = normalized.parse().map_err(|_| ParseSimTimeError::new(s))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(ParseSimTimeError::new(s));
        }
        Ok(SimTime::from_secs_f64(secs))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::MAX {
            return f.write_str("∞");
        }
        let secs = self.0 / 1_000_000;
        let frac = self.0 % 1_000_000;
        if frac == 0 {
            write!(f, "{secs}s")
        } else {
            let mut frac_str = format!("{frac:06}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            write!(f, "{secs}.{frac_str}s")
        }
    }
}

impl std::str::FromStr for SimTime {
    type Err = ParseSimTimeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SimTime::parse_secs(s)
    }
}

/// Error parsing a [`SimTime`] from a sheet cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimTimeError {
    offending: String,
}

impl ParseSimTimeError {
    fn new(s: &str) -> Self {
        Self {
            offending: s.to_owned(),
        }
    }
}

impl fmt::Display for ParseSimTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid duration {:?}: expected non-negative seconds such as \"0,5\" or \"280\"",
            self.offending
        )
    }
}

impl Error for ParseSimTimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_decimal_comma_and_point() {
        assert_eq!(
            SimTime::parse_secs("0,5").unwrap(),
            SimTime::from_millis(500)
        );
        assert_eq!(
            SimTime::parse_secs("0.5").unwrap(),
            SimTime::from_millis(500)
        );
        assert_eq!(SimTime::parse_secs("280").unwrap(), SimTime::from_secs(280));
        assert_eq!(
            SimTime::parse_secs(" 25 s ").unwrap(),
            SimTime::from_secs(25)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "-1", "abc", "1,2,3", "inf", "NaN"] {
            assert!(SimTime::parse_secs(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn paper_step_arithmetic_is_exact() {
        // Steps 0..=6 of the paper's table are 0.5 s each; the door opens at
        // the start of step 6 (t = 3.0 s).  End of step 7 = 283.5 s; the lamp
        // timer (300 s) must not yet have expired.  End of step 8 = 308.5 s.
        let half = SimTime::parse_secs("0,5").unwrap();
        let mut t = SimTime::ZERO;
        for _ in 0..7 {
            t += half;
        }
        assert_eq!(t, SimTime::from_millis(3_500));
        let door_open_at = SimTime::from_secs(3);
        let end_step7 = t + SimTime::from_secs(280);
        let end_step8 = end_step7 + SimTime::from_secs(25);
        let timeout = SimTime::from_secs(300);
        assert!(end_step7 - door_open_at < timeout);
        assert!(end_step8 - door_open_at > timeout);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_secs(283).to_string(), "283s");
        assert_eq!(SimTime::from_millis(3_500).to_string(), "3.5s");
        assert_eq!(SimTime::from_micros(1).to_string(), "0.000001s");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(1)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(0.0000005), SimTime::from_micros(1)); // rounds
    }
}
