//! Case-insensitive identifier newtypes.
//!
//! The paper's sheets mix spellings freely (`INT_ILL` in the test sheet,
//! `int_ill` in the generated XML, `UBATT`/`ubatt` in expressions).  All name
//! types in this crate therefore preserve the original spelling for display
//! but compare, hash and order **ASCII-case-insensitively**.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a name type from an invalid string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidNameError {
    kind: &'static str,
    offending: String,
}

impl InvalidNameError {
    pub(crate) fn new(kind: &'static str, offending: impl Into<String>) -> Self {
        Self {
            kind,
            offending: offending.into(),
        }
    }

    /// The offending input string.
    pub fn offending(&self) -> &str {
        &self.offending
    }
}

impl fmt::Display for InvalidNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} name {:?}: must be non-empty ASCII of [A-Za-z0-9_.-]",
            self.kind, self.offending
        )
    }
}

impl Error for InvalidNameError {}

pub(crate) fn validate_name(kind: &'static str, s: &str) -> Result<(), InvalidNameError> {
    let ok = !s.is_empty()
        && s.is_ascii()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(InvalidNameError::new(kind, s))
    }
}

/// Compares two strings ASCII-case-insensitively, byte-wise.
pub(crate) fn cmp_ignore_case(a: &str, b: &str) -> std::cmp::Ordering {
    let la = a.bytes().map(|b| b.to_ascii_lowercase());
    let lb = b.bytes().map(|b| b.to_ascii_lowercase());
    la.cmp(lb)
}

/// Defines a validated, case-insensitive identifier newtype.
macro_rules! define_name {
    ($(#[$meta:meta])* $T:ident, $kind:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $T(String);

        impl $T {
            /// Creates a new name, validating the character set.
            ///
            /// # Errors
            ///
            /// Returns [`crate::InvalidNameError`] if the string is empty or
            /// contains characters outside `[A-Za-z0-9_.-]`.
            pub fn new(s: impl Into<String>) -> Result<Self, $crate::name::InvalidNameError> {
                let s = s.into();
                $crate::name::validate_name($kind, &s)?;
                Ok(Self(s))
            }

            /// The name exactly as written in the source sheet.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Canonical lowercase key (used for map lookups and XML output).
            pub fn key(&self) -> String {
                self.0.to_ascii_lowercase()
            }
        }

        impl std::fmt::Display for $T {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl PartialEq for $T {
            fn eq(&self, other: &Self) -> bool {
                self.0.eq_ignore_ascii_case(&other.0)
            }
        }

        impl Eq for $T {}

        impl PartialEq<str> for $T {
            fn eq(&self, other: &str) -> bool {
                self.0.eq_ignore_ascii_case(other)
            }
        }

        impl PartialEq<&str> for $T {
            fn eq(&self, other: &&str) -> bool {
                self.0.eq_ignore_ascii_case(other)
            }
        }

        impl std::hash::Hash for $T {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                for b in self.0.bytes() {
                    state.write_u8(b.to_ascii_lowercase());
                }
            }
        }

        impl PartialOrd for $T {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $T {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                $crate::name::cmp_ignore_case(&self.0, &other.0)
            }
        }

        impl std::str::FromStr for $T {
            type Err = $crate::name::InvalidNameError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Self::new(s)
            }
        }

        impl AsRef<str> for $T {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

#[cfg(test)]
mod tests {
    // The macro generates the full API; the test type only exercises parts
    // of it, so allow the rest to go unused here.
    #![allow(dead_code)]

    define_name!(
        /// Test-only name type.
        TestName,
        "test"
    );

    #[test]
    fn accepts_typical_names() {
        for s in [
            "INT_ILL",
            "ds_fl",
            "Sw1.1",
            "Mx4.2",
            "0",
            "1",
            "Lo",
            "REQ-IL-001",
        ] {
            assert!(TestName::new(s).is_ok(), "{s} should be valid");
        }
    }

    #[test]
    fn rejects_bad_names() {
        for s in ["", "has space", "umläut", "semi;colon", "tab\t"] {
            assert!(TestName::new(s).is_err(), "{s:?} should be invalid");
        }
    }

    #[test]
    fn case_insensitive_eq_hash_ord() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = TestName::new("INT_ILL").unwrap();
        let b = TestName::new("int_ill").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        // Display preserves the original spelling.
        assert_eq!(a.to_string(), "INT_ILL");
        assert_eq!(a.key(), "int_ill");
    }

    #[test]
    fn compares_to_str() {
        let a = TestName::new("Night").unwrap();
        assert_eq!(a, "NIGHT");
        assert_eq!(a, "night");
    }
}
