//! The parameter expression language of generated test scripts.
//!
//! The paper's XML listing uses attribute values such as `(1.1*ubatt)` so
//! that acceptance limits scale with the DUT supply voltage known only to the
//! test stand at run time.  This module implements a small, total arithmetic
//! language over `f64` with variables, the four basic operators, unary minus,
//! the functions `min`, `max`, `abs`, `clamp`, and the constant `INF`.
//!
//! # Example
//!
//! ```
//! use comptest_model::{Env, Expr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let e = Expr::parse("clamp(0.5 * ubatt + 1, 0, max(5, 6))")?;
//! let mut env = Env::new();
//! env.set("UBATT", 12.0);
//! assert_eq!(e.eval(&env)?, 6.0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::value::number_to_string;

/// A binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    fn symbol(self) -> char {
        match self {
            BinOp::Add => '+',
            BinOp::Sub => '-',
            BinOp::Mul => '*',
            BinOp::Div => '/',
        }
    }
}

/// A built-in function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// `min(a, b, …)` — smallest argument (at least one required).
    Min,
    /// `max(a, b, …)` — largest argument (at least one required).
    Max,
    /// `abs(x)`.
    Abs,
    /// `clamp(x, lo, hi)`.
    Clamp,
}

impl Func {
    fn name(self) -> &'static str {
        match self {
            Func::Min => "min",
            Func::Max => "max",
            Func::Abs => "abs",
            Func::Clamp => "clamp",
        }
    }

    fn lookup(name: &str) -> Option<Func> {
        match name.to_ascii_lowercase().as_str() {
            "min" => Some(Func::Min),
            "max" => Some(Func::Max),
            "abs" => Some(Func::Abs),
            "clamp" => Some(Func::Clamp),
            _ => None,
        }
    }
}

/// A parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal number (may be ±infinity, spelled `INF`).
    Num(f64),
    /// A variable reference; names are normalised to lowercase.
    Var(String),
    /// Unary minus.
    Neg(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A function call.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// Parses an expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] with a byte offset on syntax errors,
    /// unknown functions, or trailing input.
    pub fn parse(input: &str) -> Result<Expr, ParseExprError> {
        let tokens = tokenize(input)?;
        let mut p = Parser {
            tokens: &tokens,
            pos: 0,
            input,
        };
        let e = p.expr()?;
        if p.pos != tokens.len() {
            return Err(ParseExprError::new(
                input,
                p.offset(),
                "unexpected trailing input",
            ));
        }
        Ok(e)
    }

    /// Shorthand for a literal.
    pub fn num(n: f64) -> Expr {
        Expr::Num(n)
    }

    /// Shorthand for a variable reference (name is lowercased).
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_ascii_lowercase())
    }

    /// Builds `lhs * rhs` (used by status → script code generation).
    /// This is a plain constructor, not an operator impl — `Expr` values are
    /// AST nodes, and `a * b` syntax would suggest evaluation.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluates the expression against an environment.
    ///
    /// Infinities propagate according to IEEE 754 (`INF` is a legitimate
    /// bound meaning "unbounded").
    ///
    /// # Errors
    ///
    /// Returns [`EvalExprError`] for unknown variables, wrong argument
    /// counts, or a NaN result (e.g. `0/0` or `INF - INF`).
    pub fn eval(&self, env: &Env) -> Result<f64, EvalExprError> {
        let v = self.eval_inner(env)?;
        if v.is_nan() {
            return Err(EvalExprError::NotANumber {
                expr: self.to_string(),
            });
        }
        Ok(v)
    }

    fn eval_inner(&self, env: &Env) -> Result<f64, EvalExprError> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Var(name) => env
                .get(name)
                .ok_or_else(|| EvalExprError::UnknownVariable { name: name.clone() }),
            Expr::Neg(e) => Ok(-e.eval_inner(env)?),
            Expr::Bin(op, a, b) => {
                let a = a.eval_inner(env)?;
                let b = b.eval_inner(env)?;
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                })
            }
            Expr::Call(f, args) => {
                let vals: Vec<f64> = args
                    .iter()
                    .map(|a| a.eval_inner(env))
                    .collect::<Result<_, _>>()?;
                match (f, vals.as_slice()) {
                    (Func::Abs, [x]) => Ok(x.abs()),
                    (Func::Clamp, [x, lo, hi]) => Ok(x.max(*lo).min(*hi)),
                    (Func::Min, xs) if !xs.is_empty() => {
                        Ok(xs.iter().copied().fold(f64::INFINITY, f64::min))
                    }
                    (Func::Max, xs) if !xs.is_empty() => {
                        Ok(xs.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                    }
                    _ => Err(EvalExprError::BadArity {
                        func: f.name(),
                        got: vals.len(),
                    }),
                }
            }
        }
    }

    /// All variable names referenced by the expression, lowercased and
    /// deduplicated.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// True if the expression contains no variables (so it can be folded).
    pub fn is_constant(&self) -> bool {
        self.variables().is_empty()
    }
}

impl fmt::Display for Expr {
    /// Canonical, fully-parenthesised form, matching the paper's style:
    /// `(1.1*ubatt)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => f.write_str(&number_to_string(*n)),
            Expr::Var(v) => f.write_str(v),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Bin(op, a, b) => write!(f, "({a}{}{b})", op.symbol()),
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl std::str::FromStr for Expr {
    type Err = ParseExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Expr::parse(s)
    }
}

/// The variable environment an expression is evaluated against.
///
/// Variable names are case-insensitive (stored lowercased); the paper writes
/// `UBATT` in sheets and `ubatt` in XML.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    vars: BTreeMap<String, f64>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Convenience: an environment with only `ubatt` set — the variable every
    /// stand provides (the DUT supply voltage).
    pub fn with_ubatt(ubatt: f64) -> Env {
        let mut env = Env::new();
        env.set("ubatt", ubatt);
        env
    }

    /// Sets a variable (name is lowercased). Returns the previous value.
    pub fn set(&mut self, name: &str, value: f64) -> Option<f64> {
        self.vars.insert(name.to_ascii_lowercase(), value)
    }

    /// Looks a variable up case-insensitively.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.vars.get(&name.to_ascii_lowercase()).copied()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

// ---------------------------------------------------------------------------
// Tokenizer + recursive-descent parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

#[derive(Debug, Clone, PartialEq)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseExprError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'+' => toks.push(Spanned {
                tok: Tok::Plus,
                offset: start,
            }),
            b'-' => toks.push(Spanned {
                tok: Tok::Minus,
                offset: start,
            }),
            b'*' => toks.push(Spanned {
                tok: Tok::Star,
                offset: start,
            }),
            b'/' => toks.push(Spanned {
                tok: Tok::Slash,
                offset: start,
            }),
            b'(' => toks.push(Spanned {
                tok: Tok::LParen,
                offset: start,
            }),
            b')' => toks.push(Spanned {
                tok: Tok::RParen,
                offset: start,
            }),
            b',' => toks.push(Spanned {
                tok: Tok::Comma,
                offset: start,
            }),
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                let mut seen_e = false;
                while j < bytes.len() {
                    let b = bytes[j];
                    let is_num = b.is_ascii_digit() || b == b'.';
                    let is_exp = (b == b'e' || b == b'E') && !seen_e;
                    let is_exp_sign = (b == b'+' || b == b'-')
                        && j > i
                        && (bytes[j - 1] == b'e' || bytes[j - 1] == b'E');
                    if is_num || is_exp || is_exp_sign {
                        if is_exp {
                            seen_e = true;
                        }
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseExprError::new(input, start, "malformed number literal"))?;
                toks.push(Spanned {
                    tok: Tok::Num(n),
                    offset: start,
                });
                i = j;
                continue;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let ident = &input[i..j];
                if ident.eq_ignore_ascii_case("inf") {
                    toks.push(Spanned {
                        tok: Tok::Num(f64::INFINITY),
                        offset: start,
                    });
                } else {
                    toks.push(Spanned {
                        tok: Tok::Ident(ident.to_ascii_lowercase()),
                        offset: start,
                    });
                }
                i = j;
                continue;
            }
            _ => return Err(ParseExprError::new(input, start, "unexpected character")),
        }
        i += 1;
    }
    Ok(toks)
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
    input: &'a str,
}

impl<'a> Parser<'a> {
    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.input.len())
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.tokens.get(self.pos).map(|s| &s.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &'static str) -> Result<(), ParseExprError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseExprError::new(self.input, self.offset(), what))
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseExprError> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            let inner = self.factor()?;
            // Fold unary minus into literals so `-3` parses as Num(-3.0) and
            // Display/parse roundtrips structurally.
            return Ok(match inner {
                Expr::Num(n) => Expr::Num(-n),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseExprError> {
        let offset = self.offset();
        match self.bump().cloned() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let func = Func::lookup(&name).ok_or_else(|| {
                        ParseExprError::new(self.input, offset, "unknown function")
                    })?;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "expected `)` to close call")?;
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "expected `)`")?;
                Ok(e)
            }
            _ => Err(ParseExprError::new(
                self.input,
                offset,
                "expected number, variable or `(`",
            )),
        }
    }
}

/// Error parsing an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    input: String,
    offset: usize,
    message: &'static str,
}

impl ParseExprError {
    fn new(input: &str, offset: usize, message: &'static str) -> Self {
        Self {
            input: input.to_owned(),
            offset,
            message,
        }
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error in expression {:?} at byte {}: {}",
            self.input, self.offset, self.message
        )
    }
}

impl Error for ParseExprError {}

/// Error evaluating an [`Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum EvalExprError {
    /// A referenced variable is not present in the [`Env`].
    UnknownVariable {
        /// The missing variable (lowercased).
        name: String,
    },
    /// A function was called with the wrong number of arguments.
    BadArity {
        /// Function name.
        func: &'static str,
        /// Number of arguments supplied.
        got: usize,
    },
    /// Evaluation produced NaN (e.g. `0/0`, `INF-INF`).
    NotANumber {
        /// Canonical form of the offending expression.
        expr: String,
    },
}

impl fmt::Display for EvalExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalExprError::UnknownVariable { name } => {
                write!(
                    f,
                    "unknown variable `{name}` (not provided by the test stand)"
                )
            }
            EvalExprError::BadArity { func, got } => {
                write!(f, "wrong number of arguments for `{func}` (got {got})")
            }
            EvalExprError::NotANumber { expr } => {
                write!(f, "expression {expr} evaluated to NaN")
            }
        }
    }
}

impl Error for EvalExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str, ubatt: f64) -> f64 {
        Expr::parse(src)
            .unwrap()
            .eval(&Env::with_ubatt(ubatt))
            .unwrap()
    }

    #[test]
    fn paper_expressions() {
        assert!((ev("(1.1*ubatt)", 12.0) - 13.2).abs() < 1e-12);
        assert!((ev("(0.7*ubatt)", 12.0) - 8.4).abs() < 1e-12);
        // Case-insensitive variables.
        assert!((ev("(0.7*UBATT)", 10.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(ev("1+2*3", 0.0), 7.0);
        assert_eq!(ev("(1+2)*3", 0.0), 9.0);
        assert_eq!(ev("2-3-4", 0.0), -5.0);
        assert_eq!(ev("24/4/2", 0.0), 3.0);
        assert_eq!(ev("-2*3", 0.0), -6.0);
        assert_eq!(ev("--2", 0.0), 2.0);
    }

    #[test]
    fn functions() {
        assert_eq!(ev("min(3,1,2)", 0.0), 1.0);
        assert_eq!(ev("max(3,1,2)", 0.0), 3.0);
        assert_eq!(ev("abs(-4)", 0.0), 4.0);
        assert_eq!(ev("clamp(10,0,5)", 0.0), 5.0);
        assert_eq!(ev("clamp(-1,0,5)", 0.0), 0.0);
        assert_eq!(ev("clamp(3,0,5)", 0.0), 3.0);
    }

    #[test]
    fn infinity() {
        assert_eq!(ev("INF", 0.0), f64::INFINITY);
        assert_eq!(ev("-INF", 0.0), f64::NEG_INFINITY);
        assert_eq!(ev("inf/2", 0.0), f64::INFINITY);
        // INF - INF is NaN -> error.
        assert!(matches!(
            Expr::parse("INF-INF").unwrap().eval(&Env::new()),
            Err(EvalExprError::NotANumber { .. })
        ));
    }

    #[test]
    fn eval_errors() {
        assert!(matches!(
            Expr::parse("nosuchvar").unwrap().eval(&Env::new()),
            Err(EvalExprError::UnknownVariable { name }) if name == "nosuchvar"
        ));
        assert!(matches!(
            Expr::parse("abs(1,2)").unwrap().eval(&Env::new()),
            Err(EvalExprError::BadArity {
                func: "abs",
                got: 2
            })
        ));
        assert!(matches!(
            Expr::parse("min()").unwrap().eval(&Env::new()),
            Err(EvalExprError::BadArity {
                func: "min",
                got: 0
            })
        ));
    }

    #[test]
    fn parse_errors_have_offsets() {
        let err = Expr::parse("1 + §").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("foo(1)").is_err(), "unknown function must fail");
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("1 2").is_err(), "trailing input must fail");
    }

    #[test]
    fn display_matches_paper_style() {
        let e = Expr::mul(Expr::num(1.1), Expr::var("UBATT"));
        assert_eq!(e.to_string(), "(1.1*ubatt)");
        let e = Expr::parse("min(1, 2*x)").unwrap();
        assert_eq!(e.to_string(), "min(1,(2*x))");
    }

    #[test]
    fn display_parse_roundtrip_structural() {
        for src in [
            "(1.1*ubatt)",
            "min(1,(2*x))",
            "clamp(x,0,5)",
            "-3",
            "(-x)",
            "((1+2)-(3/4))",
            "INF",
            "-INF",
        ] {
            let e = Expr::parse(src).unwrap();
            let round = Expr::parse(&e.to_string()).unwrap();
            assert_eq!(e, round, "roundtrip of {src}");
        }
    }

    #[test]
    fn variables_are_collected() {
        let e = Expr::parse("a + min(B, c*a)").unwrap();
        assert_eq!(e.variables(), vec!["a".to_string(), "b".into(), "c".into()]);
        assert!(!e.is_constant());
        assert!(Expr::parse("1+2").unwrap().is_constant());
    }

    #[test]
    fn env_basics() {
        let mut env = Env::new();
        assert_eq!(env.set("UBATT", 12.0), None);
        assert_eq!(env.set("ubatt", 13.8), Some(12.0));
        assert_eq!(env.get("Ubatt"), Some(13.8));
        let pairs: Vec<_> = env.iter().collect();
        assert_eq!(pairs, vec![("ubatt", 13.8)]);
    }
}
