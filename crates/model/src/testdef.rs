//! Test definitions: steps, cases and suites (the test definition sheet).

use std::collections::BTreeSet;
use std::fmt;

use crate::method::{MethodDirection, MethodRegistry};
use crate::signal::{SignalDef, SignalDirection, SignalName};
use crate::status::{StatusName, StatusTable};
use crate::time::SimTime;

/// One status assignment inside a test step: "signal X takes status S".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The signal being stimulated or checked.
    pub signal: SignalName,
    /// The status applied or expected.
    pub status: StatusName,
}

impl Assignment {
    /// Creates an assignment.
    pub fn new(signal: SignalName, status: StatusName) -> Self {
        Self { signal, status }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.signal, self.status)
    }
}

/// One row of a test definition sheet.
///
/// Stimuli of the step are applied atomically at step start; expected-output
/// statuses are checked at step end (see DESIGN.md "Timing semantics").
#[derive(Debug, Clone, PartialEq)]
pub struct TestStep {
    /// Step number as written in the sheet.
    pub nr: u32,
    /// Step duration `Δt`.
    pub dt: SimTime,
    /// Status assignments of this row, in column order.
    pub assignments: Vec<Assignment>,
    /// Free-text remark (also carries requirement tags such as `REQ-IL-001`).
    pub remark: String,
}

impl TestStep {
    /// Creates a step without assignments.
    pub fn new(nr: u32, dt: SimTime) -> Self {
        Self {
            nr,
            dt,
            assignments: Vec::new(),
            remark: String::new(),
        }
    }

    /// Adds an assignment (builder style).
    pub fn assign(mut self, signal: SignalName, status: StatusName) -> Self {
        self.assignments.push(Assignment::new(signal, status));
        self
    }

    /// Sets the remark (builder style).
    pub fn with_remark(mut self, remark: impl Into<String>) -> Self {
        self.remark = remark.into();
        self
    }
}

/// A named test case: an ordered sequence of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// The test's name (the `[test …]` section header of a workbook).
    pub name: String,
    /// Steps in execution order.
    pub steps: Vec<TestStep>,
}

impl TestCase {
    /// Creates an empty test case.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Total duration (sum of all `Δt`).
    pub fn duration(&self) -> SimTime {
        self.steps
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc.saturating_add(s.dt))
    }

    /// All requirement tags mentioned in step remarks. A tag is any word of
    /// the form `REQ-…` (case-insensitive prefix).
    pub fn requirement_tags(&self) -> Vec<String> {
        let mut tags = BTreeSet::new();
        for step in &self.steps {
            for word in step
                .remark
                .split(|c: char| !c.is_ascii_alphanumeric() && c != '-')
            {
                if word.len() > 4 && word[..4].eq_ignore_ascii_case("REQ-") {
                    tags.insert(word.to_ascii_uppercase());
                }
            }
        }
        tags.into_iter().collect()
    }

    /// All signals referenced by the test, deduplicated.
    pub fn signals_used(&self) -> Vec<SignalName> {
        let mut set = BTreeSet::new();
        for step in &self.steps {
            for a in &step.assignments {
                set.insert(a.signal.clone());
            }
        }
        set.into_iter().collect()
    }
}

/// A complete component-test suite: the three sheets of the paper bound
/// together — signal definitions, the status table, and the test cases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TestSuite {
    /// Suite name (usually the workbook file stem).
    pub name: String,
    /// The signal definition sheet.
    pub signals: Vec<SignalDef>,
    /// The status definition sheet.
    pub statuses: StatusTable,
    /// The test definition sheets.
    pub tests: Vec<TestCase>,
}

impl TestSuite {
    /// Creates an empty suite.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            signals: Vec::new(),
            statuses: StatusTable::new(),
            tests: Vec::new(),
        }
    }

    /// Looks a signal up by name.
    pub fn signal(&self, name: &SignalName) -> Option<&SignalDef> {
        self.signals.iter().find(|s| &s.name == name)
    }

    /// Looks a test case up by name (case-insensitive).
    pub fn test(&self, name: &str) -> Option<&TestCase> {
        self.tests
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Merges another suite into this one — the knowledge-base operation
    /// the paper's Section 2 calls for (OEM and supplier exchanging and
    /// accumulating test definitions).
    ///
    /// Semantics:
    /// * signals: the other suite's definition wins on name collision (the
    ///   donor is assumed newer); otherwise appended;
    /// * statuses: donor definitions replace same-named entries
    ///   ([`StatusTable::insert`](crate::StatusTable::insert) semantics);
    /// * tests: donor tests with a name already present are skipped and
    ///   reported back, so callers can resolve collisions deliberately.
    ///
    /// Returns the names of skipped (colliding) tests.
    pub fn merge(&mut self, other: TestSuite) -> Vec<String> {
        for sig in other.signals {
            match self.signals.iter_mut().find(|s| s.name == sig.name) {
                Some(existing) => *existing = sig,
                None => self.signals.push(sig),
            }
        }
        for def in other.statuses.iter() {
            self.statuses.insert(def.clone());
        }
        let mut skipped = Vec::new();
        for test in other.tests {
            if self.test(&test.name).is_some() {
                skipped.push(test.name);
            } else {
                self.tests.push(test);
            }
        }
        skipped
    }

    /// Cross-validates the suite: every referenced status and signal must be
    /// defined, status methods must exist and be direction-compatible with
    /// the signal (`put_*` on inputs, `get_*` on outputs), durations must be
    /// positive, and every status definition must pass
    /// [`StatusDef::check`](crate::StatusDef::check).
    ///
    /// Returns all problems found (empty = valid).
    pub fn validate(&self, registry: &MethodRegistry) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();

        for def in self.statuses.iter() {
            if let Err(msg) = def.check(registry) {
                issues.push(ValidationIssue::BadStatus {
                    status: def.name.clone(),
                    message: msg,
                });
            }
        }

        for sig in &self.signals {
            if let Some(init) = &sig.init {
                match self.statuses.get(init) {
                    None => issues.push(ValidationIssue::UnknownStatus {
                        test: "<signal sheet>".into(),
                        step: 0,
                        status: init.clone(),
                    }),
                    Some(_) => {
                        self.check_direction(registry, sig, init, "<signal sheet>", 0, &mut issues)
                    }
                }
            }
        }

        for test in &self.tests {
            for step in &test.steps {
                if step.dt.is_zero() {
                    issues.push(ValidationIssue::ZeroDuration {
                        test: test.name.clone(),
                        step: step.nr,
                    });
                }
                for a in &step.assignments {
                    let Some(sig) = self.signal(&a.signal) else {
                        issues.push(ValidationIssue::UnknownSignal {
                            test: test.name.clone(),
                            step: step.nr,
                            signal: a.signal.clone(),
                        });
                        continue;
                    };
                    if self.statuses.get(&a.status).is_none() {
                        issues.push(ValidationIssue::UnknownStatus {
                            test: test.name.clone(),
                            step: step.nr,
                            status: a.status.clone(),
                        });
                        continue;
                    }
                    self.check_direction(
                        registry,
                        sig,
                        &a.status,
                        &test.name,
                        step.nr,
                        &mut issues,
                    );
                }
            }
        }
        issues
    }

    fn check_direction(
        &self,
        registry: &MethodRegistry,
        sig: &SignalDef,
        status: &StatusName,
        test: &str,
        step: u32,
        issues: &mut Vec<ValidationIssue>,
    ) {
        let Some(def) = self.statuses.get(status) else {
            return;
        };
        let Some(spec) = registry.get(&def.method) else {
            return; // already reported by StatusDef::check
        };
        let compatible = matches!(
            (spec.direction, sig.direction),
            (MethodDirection::Put, SignalDirection::Input)
                | (MethodDirection::Get, SignalDirection::Output)
        );
        if !compatible {
            issues.push(ValidationIssue::DirectionMismatch {
                test: test.to_owned(),
                step,
                signal: sig.name.clone(),
                status: status.clone(),
                method_direction: spec.direction,
                signal_direction: sig.direction,
            });
        }
    }
}

/// A problem found by [`TestSuite::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationIssue {
    /// A test step references a signal not present in the signal sheet.
    UnknownSignal {
        /// Test case name.
        test: String,
        /// Step number.
        step: u32,
        /// The missing signal.
        signal: SignalName,
    },
    /// A test step (or the signal sheet) references an undefined status.
    UnknownStatus {
        /// Test case name, or `<signal sheet>`.
        test: String,
        /// Step number (0 for the signal sheet).
        step: u32,
        /// The missing status.
        status: StatusName,
    },
    /// A status definition is internally inconsistent.
    BadStatus {
        /// The status.
        status: StatusName,
        /// Explanation from [`StatusDef::check`](crate::StatusDef::check).
        message: String,
    },
    /// A `put_*` status was assigned to an output, or `get_*` to an input.
    DirectionMismatch {
        /// Test case name.
        test: String,
        /// Step number.
        step: u32,
        /// The signal.
        signal: SignalName,
        /// The status.
        status: StatusName,
        /// The method's direction.
        method_direction: MethodDirection,
        /// The signal's direction.
        signal_direction: SignalDirection,
    },
    /// A step has `Δt = 0`.
    ZeroDuration {
        /// Test case name.
        test: String,
        /// Step number.
        step: u32,
    },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::UnknownSignal { test, step, signal } => {
                write!(f, "[{test} step {step}] unknown signal {signal}")
            }
            ValidationIssue::UnknownStatus { test, step, status } => {
                write!(f, "[{test} step {step}] undefined status {status}")
            }
            ValidationIssue::BadStatus { status, message } => {
                write!(f, "[status table] {status}: {message}")
            }
            ValidationIssue::DirectionMismatch {
                test,
                step,
                signal,
                status,
                method_direction,
                signal_direction,
            } => write!(
                f,
                "[{test} step {step}] status {status} is a {method_direction} method but {signal} is an {signal_direction}"
            ),
            ValidationIssue::ZeroDuration { test, step } => {
                write!(f, "[{test} step {step}] step duration must be positive")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::MethodName;
    use crate::signal::SignalKind;
    use crate::status::StatusDef;
    use crate::value::BitPattern;

    fn sname(s: &str) -> SignalName {
        SignalName::new(s).unwrap()
    }

    fn st(s: &str) -> StatusName {
        StatusName::new(s).unwrap()
    }

    fn m(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    fn tiny_suite() -> TestSuite {
        let mut suite = TestSuite::new("tiny");
        suite.signals.push(SignalDef::new(
            sname("DS_FL"),
            SignalKind::parse("pin:DS_FL").unwrap(),
            SignalDirection::Input,
        ));
        suite.signals.push(SignalDef::new(
            sname("INT_ILL"),
            SignalKind::parse("pin:INT_ILL_F/INT_ILL_R").unwrap(),
            SignalDirection::Output,
        ));
        suite.statuses.insert(StatusDef::numeric(
            st("Open"),
            m("put_r"),
            "r",
            0.0,
            0.0,
            2.0,
        ));
        suite
            .statuses
            .insert(StatusDef::numeric(st("Ho"), m("get_u"), "u", 1.0, 0.7, 1.1).with_var("ubatt"));
        let mut tc = TestCase::new("basic");
        tc.steps.push(
            TestStep::new(0, SimTime::from_millis(500))
                .assign(sname("DS_FL"), st("Open"))
                .assign(sname("INT_ILL"), st("Ho"))
                .with_remark("REQ-IL-001 light on when door open"),
        );
        suite.tests.push(tc);
        suite
    }

    #[test]
    fn valid_suite_has_no_issues() {
        let suite = tiny_suite();
        let issues = suite.validate(&MethodRegistry::builtin());
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }

    #[test]
    fn duration_and_tags() {
        let suite = tiny_suite();
        let tc = suite.test("BASIC").expect("case-insensitive test lookup");
        assert_eq!(tc.duration(), SimTime::from_millis(500));
        assert_eq!(tc.requirement_tags(), vec!["REQ-IL-001".to_string()]);
        assert_eq!(tc.signals_used().len(), 2);
    }

    #[test]
    fn detects_unknown_signal_and_status() {
        let mut suite = tiny_suite();
        suite.tests[0].steps.push(
            TestStep::new(1, SimTime::from_millis(500))
                .assign(sname("NO_SUCH"), st("Open"))
                .assign(sname("DS_FL"), st("Wobble")),
        );
        let issues = suite.validate(&MethodRegistry::builtin());
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::UnknownSignal { signal, .. } if signal == "NO_SUCH")
        ));
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::UnknownStatus { status, .. } if status == "Wobble")
        ));
    }

    #[test]
    fn detects_direction_mismatch() {
        let mut suite = tiny_suite();
        // `Ho` (get_u) applied to an input signal.
        suite.tests[0]
            .steps
            .push(TestStep::new(1, SimTime::from_millis(500)).assign(sname("DS_FL"), st("Ho")));
        let issues = suite.validate(&MethodRegistry::builtin());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DirectionMismatch { .. })));
    }

    #[test]
    fn detects_zero_duration_and_bad_status() {
        let mut suite = tiny_suite();
        suite.tests[0]
            .steps
            .push(TestStep::new(2, SimTime::ZERO).assign(sname("DS_FL"), st("Open")));
        suite.statuses.insert(StatusDef::bits(
            st("Junk"),
            m("put_r"),
            "r",
            BitPattern::parse("1B").unwrap(),
        ));
        let issues = suite.validate(&MethodRegistry::builtin());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::ZeroDuration { step: 2, .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::BadStatus { .. })));
    }

    #[test]
    fn init_status_is_validated() {
        let mut suite = tiny_suite();
        suite.signals[0].init = Some(st("Missing"));
        let issues = suite.validate(&MethodRegistry::builtin());
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::UnknownStatus { test, .. } if test == "<signal sheet>")
        ));
    }

    #[test]
    fn merge_combines_and_reports_collisions() {
        let mut base = tiny_suite();
        let mut donor = TestSuite::new("donor");
        // New signal.
        donor.signals.push(SignalDef::new(
            sname("EXTRA"),
            SignalKind::parse("pin:EXTRA").unwrap(),
            SignalDirection::Input,
        ));
        // Redefined signal: donor wins.
        donor.signals.push(SignalDef::new(
            sname("DS_FL"),
            SignalKind::parse("pin:DS_FL_V2").unwrap(),
            SignalDirection::Input,
        ));
        // New + redefined status.
        donor.statuses.insert(StatusDef::numeric(
            st("Open"),
            m("put_r"),
            "r",
            0.0,
            0.0,
            5.0, // widened tolerance
        ));
        donor.statuses.insert(StatusDef::numeric(
            st("Fresh"),
            m("put_r"),
            "r",
            1.0,
            0.0,
            2.0,
        ));
        // One colliding and one new test.
        donor.tests.push(TestCase::new("basic"));
        donor.tests.push(TestCase::new("extra_case"));

        let skipped = base.merge(donor);
        assert_eq!(skipped, vec!["basic".to_string()]);
        assert_eq!(base.signals.len(), 3);
        assert_eq!(
            base.signal(&sname("DS_FL")).unwrap().kind.pins()[0],
            "DS_FL_V2"
        );
        assert_eq!(base.statuses.get(&st("Open")).unwrap().max, Some(5.0));
        assert!(base.statuses.get(&st("Fresh")).is_some());
        assert_eq!(base.tests.len(), 2);
        assert!(base.test("extra_case").is_some());
        // The colliding donor test did not clobber the original's steps.
        assert_eq!(base.test("basic").unwrap().steps.len(), 1);
    }

    #[test]
    fn issue_display_is_informative() {
        let issue = ValidationIssue::UnknownSignal {
            test: "basic".into(),
            step: 3,
            signal: sname("GHOST"),
        };
        let text = issue.to_string();
        assert!(text.contains("basic"));
        assert!(text.contains("step 3"));
        assert!(text.contains("GHOST"));
    }
}
