//! Abstract instrument methods.
//!
//! A *method* is the unit of portability in the paper: test definitions say
//! `put_r` ("apply this resistance") or `get_u` ("measure this voltage and
//! compare"), and every test stand maps methods onto whatever instruments it
//! actually owns. The registry below carries the built-in vocabulary and can
//! be extended with custom methods.

use std::collections::BTreeMap;
use std::fmt;

use crate::units::Unit;

define_name!(
    /// The name of a method (`put_r`, `get_u`, `put_can`, …).
    MethodName,
    "method"
);

/// Whether a method applies a stimulus or observes a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodDirection {
    /// Applies a stimulus to a DUT input (`put_*`).
    Put,
    /// Measures a DUT output and compares against limits (`get_*`).
    Get,
}

impl fmt::Display for MethodDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodDirection::Put => f.write_str("put"),
            MethodDirection::Get => f.write_str("get"),
        }
    }
}

/// The kind of a method's principal attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// A number in a physical unit (voltage, resistance, …).
    Numeric(Unit),
    /// A bit pattern (`data="0001B"`).
    Bits,
}

/// The signature of a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name.
    pub name: MethodName,
    /// Put or get.
    pub direction: MethodDirection,
    /// Principal attribute name (`u`, `r`, `i`, `f`, `data`).
    pub attribut: String,
    /// Kind/unit of the principal attribute.
    pub attr_kind: AttrKind,
    /// Human description.
    pub description: &'static str,
}

impl MethodSpec {
    /// The unit of the principal attribute, if numeric.
    pub fn unit(&self) -> Option<Unit> {
        match self.attr_kind {
            AttrKind::Numeric(u) => Some(u),
            AttrKind::Bits => None,
        }
    }
}

/// The set of methods known to the toolchain.
///
/// # Example
///
/// ```
/// use comptest_model::{MethodRegistry, MethodName};
///
/// let reg = MethodRegistry::builtin();
/// let get_u = reg.get(&MethodName::new("get_u")?).expect("builtin");
/// assert_eq!(get_u.attribut, "u");
/// # Ok::<(), comptest_model::InvalidNameError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MethodRegistry {
    map: BTreeMap<MethodName, MethodSpec>,
}

impl MethodRegistry {
    /// An empty registry (no methods at all).
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in vocabulary used throughout the paper and this crate:
    ///
    /// | method    | dir | attr  | unit |
    /// |-----------|-----|-------|------|
    /// | `put_u`   | put | `u`   | V    |
    /// | `put_i`   | put | `i`   | A    |
    /// | `put_r`   | put | `r`   | Ohm  |
    /// | `put_f`   | put | `f`   | Hz   |
    /// | `put_can` | put | `data`| bits |
    /// | `get_u`   | get | `u`   | V    |
    /// | `get_i`   | get | `i`   | A    |
    /// | `get_r`   | get | `r`   | Ohm  |
    /// | `get_f`   | get | `f`   | Hz   |
    /// | `get_can` | get | `data`| bits |
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        let rows: [(&str, MethodDirection, &str, AttrKind, &'static str); 10] = [
            (
                "put_u",
                MethodDirection::Put,
                "u",
                AttrKind::Numeric(Unit::Volt),
                "apply a voltage",
            ),
            (
                "put_i",
                MethodDirection::Put,
                "i",
                AttrKind::Numeric(Unit::Ampere),
                "apply/sink a current",
            ),
            (
                "put_r",
                MethodDirection::Put,
                "r",
                AttrKind::Numeric(Unit::Ohm),
                "apply a resistance to ground",
            ),
            (
                "put_f",
                MethodDirection::Put,
                "f",
                AttrKind::Numeric(Unit::Hertz),
                "apply a frequency",
            ),
            (
                "put_can",
                MethodDirection::Put,
                "data",
                AttrKind::Bits,
                "transmit a CAN-mapped bit field",
            ),
            (
                "get_u",
                MethodDirection::Get,
                "u",
                AttrKind::Numeric(Unit::Volt),
                "measure a voltage",
            ),
            (
                "get_i",
                MethodDirection::Get,
                "i",
                AttrKind::Numeric(Unit::Ampere),
                "measure a current",
            ),
            (
                "get_r",
                MethodDirection::Get,
                "r",
                AttrKind::Numeric(Unit::Ohm),
                "measure a resistance",
            ),
            (
                "get_f",
                MethodDirection::Get,
                "f",
                AttrKind::Numeric(Unit::Hertz),
                "measure a frequency",
            ),
            (
                "get_can",
                MethodDirection::Get,
                "data",
                AttrKind::Bits,
                "receive and compare a CAN-mapped bit field",
            ),
        ];
        for (name, direction, attribut, attr_kind, description) in rows {
            reg.register(MethodSpec {
                name: MethodName::new(name).expect("builtin names are valid"),
                direction,
                attribut: attribut.to_owned(),
                attr_kind,
                description,
            });
        }
        reg
    }

    /// Registers (or replaces) a method, returning any previous spec.
    pub fn register(&mut self, spec: MethodSpec) -> Option<MethodSpec> {
        self.map.insert(spec.name.clone(), spec)
    }

    /// Looks a method up by name.
    pub fn get(&self, name: &MethodName) -> Option<&MethodSpec> {
        self.map.get(name)
    }

    /// Looks a method up by raw string.
    ///
    /// Returns `None` both for unknown methods and for strings that are not
    /// valid method names at all.
    pub fn get_str(&self, name: &str) -> Option<&MethodSpec> {
        let name = MethodName::new(name).ok()?;
        self.map.get(&name)
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no methods are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over specs in name order.
    pub fn iter(&self) -> impl Iterator<Item = &MethodSpec> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_paper_methods() {
        let reg = MethodRegistry::builtin();
        assert_eq!(reg.len(), 10);
        for m in ["put_r", "get_u", "put_can"] {
            assert!(reg.get_str(m).is_some(), "{m} should be builtin");
        }
        let get_u = reg.get_str("GET_U").expect("case-insensitive");
        assert_eq!(get_u.direction, MethodDirection::Get);
        assert_eq!(get_u.attribut, "u");
        assert_eq!(get_u.unit(), Some(Unit::Volt));
        let put_can = reg.get_str("put_can").unwrap();
        assert_eq!(put_can.attr_kind, AttrKind::Bits);
        assert_eq!(put_can.unit(), None);
    }

    #[test]
    fn register_custom_method() {
        let mut reg = MethodRegistry::builtin();
        let spec = MethodSpec {
            name: MethodName::new("put_pwm").unwrap(),
            direction: MethodDirection::Put,
            attribut: "duty".into(),
            attr_kind: AttrKind::Numeric(Unit::Percent),
            description: "apply a PWM duty cycle",
        };
        assert!(reg.register(spec.clone()).is_none());
        assert_eq!(reg.get_str("put_pwm"), Some(&spec));
        // Re-registering replaces.
        assert_eq!(reg.register(spec.clone()).as_ref(), Some(&spec));
    }

    #[test]
    fn get_str_invalid_name() {
        let reg = MethodRegistry::builtin();
        assert!(reg.get_str("not a method!").is_none());
        assert!(reg.get_str("").is_none());
    }

    #[test]
    fn iteration_is_ordered() {
        let reg = MethodRegistry::builtin();
        let names: Vec<String> = reg.iter().map(|s| s.name.key()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
