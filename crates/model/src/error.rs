//! The crate-wide error type.

use std::error::Error;
use std::fmt;

use crate::expr::{EvalExprError, ParseExprError};
use crate::name::InvalidNameError;
use crate::signal::ParseSignalKindError;
use crate::status::ResolveStatusError;
use crate::time::ParseSimTimeError;
use crate::units::ParseUnitError;
use crate::value::ParseValueError;

/// Any error produced by this crate, for callers that want a single type.
///
/// Individual functions return their specific error; `From` impls allow `?`
/// to widen into `ModelError`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Invalid identifier.
    InvalidName(InvalidNameError),
    /// Invalid cell value / number / bit pattern.
    ParseValue(ParseValueError),
    /// Invalid duration cell.
    ParseSimTime(ParseSimTimeError),
    /// Invalid unit symbol.
    ParseUnit(ParseUnitError),
    /// Expression syntax error.
    ParseExpr(ParseExprError),
    /// Expression evaluation error.
    EvalExpr(EvalExprError),
    /// Invalid signal kind or direction.
    ParseSignal(ParseSignalKindError),
    /// Status could not be resolved against the stand environment.
    ResolveStatus(ResolveStatusError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidName(e) => e.fmt(f),
            ModelError::ParseValue(e) => e.fmt(f),
            ModelError::ParseSimTime(e) => e.fmt(f),
            ModelError::ParseUnit(e) => e.fmt(f),
            ModelError::ParseExpr(e) => e.fmt(f),
            ModelError::EvalExpr(e) => e.fmt(f),
            ModelError::ParseSignal(e) => e.fmt(f),
            ModelError::ResolveStatus(e) => e.fmt(f),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::InvalidName(e) => Some(e),
            ModelError::ParseValue(e) => Some(e),
            ModelError::ParseSimTime(e) => Some(e),
            ModelError::ParseUnit(e) => Some(e),
            ModelError::ParseExpr(e) => Some(e),
            ModelError::EvalExpr(e) => Some(e),
            ModelError::ParseSignal(e) => Some(e),
            ModelError::ResolveStatus(e) => Some(e),
        }
    }
}

impl From<InvalidNameError> for ModelError {
    fn from(e: InvalidNameError) -> Self {
        ModelError::InvalidName(e)
    }
}

impl From<ParseValueError> for ModelError {
    fn from(e: ParseValueError) -> Self {
        ModelError::ParseValue(e)
    }
}

impl From<ParseSimTimeError> for ModelError {
    fn from(e: ParseSimTimeError) -> Self {
        ModelError::ParseSimTime(e)
    }
}

impl From<ParseUnitError> for ModelError {
    fn from(e: ParseUnitError) -> Self {
        ModelError::ParseUnit(e)
    }
}

impl From<ParseExprError> for ModelError {
    fn from(e: ParseExprError) -> Self {
        ModelError::ParseExpr(e)
    }
}

impl From<EvalExprError> for ModelError {
    fn from(e: EvalExprError) -> Self {
        ModelError::EvalExpr(e)
    }
}

impl From<ParseSignalKindError> for ModelError {
    fn from(e: ParseSignalKindError) -> Self {
        ModelError::ParseSignal(e)
    }
}

impl From<ResolveStatusError> for ModelError {
    fn from(e: ResolveStatusError) -> Self {
        ModelError::ResolveStatus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn widening_with_question_mark() {
        fn parse_all() -> Result<(), ModelError> {
            let _ = Expr::parse("1+")?; // syntax error
            Ok(())
        }
        let err = parse_all().unwrap_err();
        assert!(matches!(err, ModelError::ParseExpr(_)));
        assert!(err.source().is_some());
        assert!(!err.to_string().is_empty());
    }
}
