//! Signal definitions: the DUT's interface as declared in the signal sheet.

use std::error::Error;
use std::fmt;

use crate::status::StatusName;
use crate::value::ParseValueError;

define_name!(
    /// The name of a DUT signal (`INT_ILL`, `DS_FL`, `NIGHT`, …).
    SignalName,
    "signal"
);

define_name!(
    /// The name of a physical DUT pin as it appears in the connection matrix
    /// (`INT_ILL_F`, `DS_FL`, `CAN0`, …). A [`SignalName`] maps to one or two
    /// pins.
    PinId,
    "pin"
);

/// A CAN frame identifier (11- or 29-bit; stored as the raw id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanFrameId(pub u32);

impl fmt::Display for CanFrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:X}", self.0)
    }
}

/// Direction of a signal from the DUT's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDirection {
    /// Stimulus applied by the test stand (DUT input).
    Input,
    /// Observed response (DUT output).
    Output,
}

impl SignalDirection {
    /// Parses `input`/`in` or `output`/`out`, case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSignalKindError`] on anything else.
    pub fn parse(s: &str) -> Result<Self, ParseSignalKindError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "input" | "in" | "i" => Ok(SignalDirection::Input),
            "output" | "out" | "o" => Ok(SignalDirection::Output),
            other => Err(ParseSignalKindError::new(format!(
                "unknown direction {other:?} (expected input/output)"
            ))),
        }
    }
}

impl fmt::Display for SignalDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalDirection::Input => f.write_str("input"),
            SignalDirection::Output => f.write_str("output"),
        }
    }
}

/// How a signal is physically realised.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// One or two electrical pins. Two pins model differential connections
    /// such as the paper's `INT_ILL_F`/`INT_ILL_R` lamp measurement; a
    /// resource must be connectable to *all* pins of the signal.
    Pin {
        /// The pins, in `forward, return` order.
        pins: Vec<PinId>,
    },
    /// A bit field inside a CAN frame on the stand's CAN bus attachment.
    Can {
        /// The frame carrying the signal.
        frame: CanFrameId,
        /// Bit offset of the least significant bit within the frame payload.
        start_bit: u8,
        /// Field width in bits (1..=64).
        width: u8,
    },
}

impl SignalKind {
    /// Creates a single-pin electrical signal.
    pub fn pin(pin: PinId) -> SignalKind {
        SignalKind::Pin { pins: vec![pin] }
    }

    /// Creates a differential (two-pin) electrical signal.
    pub fn pin_pair(forward: PinId, ret: PinId) -> SignalKind {
        SignalKind::Pin {
            pins: vec![forward, ret],
        }
    }

    /// Creates a CAN-mapped signal.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSignalKindError`] for a zero or >64 bit width, or when
    /// the field crosses the 64-byte CAN-FD payload boundary.
    pub fn can(
        frame: CanFrameId,
        start_bit: u8,
        width: u8,
    ) -> Result<SignalKind, ParseSignalKindError> {
        if width == 0 || width > 64 {
            return Err(ParseSignalKindError::new(format!(
                "CAN field width {width} out of range 1..=64"
            )));
        }
        if start_bit as u16 + width as u16 > 512 {
            return Err(ParseSignalKindError::new(format!(
                "CAN field {start_bit}+{width} exceeds a 64-byte payload"
            )));
        }
        Ok(SignalKind::Can {
            frame,
            start_bit,
            width,
        })
    }

    /// Parses the compact sheet notation:
    ///
    /// * `pin:INT_ILL_F` — one pin;
    /// * `pin:INT_ILL_F/INT_ILL_R` — differential pair;
    /// * `can:0x130:4:2` — frame 0x130, start bit 4, width 2.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSignalKindError`] on malformed notation.
    pub fn parse(s: &str) -> Result<SignalKind, ParseSignalKindError> {
        let t = s.trim();
        if let Some(rest) = prefix(t, "pin:") {
            let mut pins = Vec::new();
            for part in rest.split('/') {
                let pin = PinId::new(part.trim())
                    .map_err(|e| ParseSignalKindError::new(e.to_string()))?;
                pins.push(pin);
            }
            if pins.is_empty() || pins.len() > 2 {
                return Err(ParseSignalKindError::new(format!(
                    "pin signal must have 1 or 2 pins, got {}",
                    pins.len()
                )));
            }
            return Ok(SignalKind::Pin { pins });
        }
        if let Some(rest) = prefix(t, "can:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 3 {
                return Err(ParseSignalKindError::new(format!(
                    "CAN signal must be can:<frame>:<start_bit>:<width>, got {t:?}"
                )));
            }
            let frame = parse_frame_id(parts[0])?;
            let start_bit: u8 = parts[1]
                .trim()
                .parse()
                .map_err(|_| ParseSignalKindError::new(format!("bad start bit {:?}", parts[1])))?;
            let width: u8 = parts[2]
                .trim()
                .parse()
                .map_err(|_| ParseSignalKindError::new(format!("bad width {:?}", parts[2])))?;
            return SignalKind::can(frame, start_bit, width);
        }
        Err(ParseSignalKindError::new(format!(
            "unknown signal kind {t:?} (expected pin:… or can:…)"
        )))
    }

    /// The electrical pins of the signal (empty for CAN signals).
    pub fn pins(&self) -> &[PinId] {
        match self {
            SignalKind::Pin { pins } => pins,
            SignalKind::Can { .. } => &[],
        }
    }

    /// True if the signal is CAN-mapped.
    pub fn is_can(&self) -> bool {
        matches!(self, SignalKind::Can { .. })
    }
}

fn prefix<'a>(s: &'a str, p: &str) -> Option<&'a str> {
    // `get` (not slicing) so a multi-byte character straddling the prefix
    // length cannot panic — found by the mutation fuzz tests.
    let head = s.get(..p.len())?;
    if head.eq_ignore_ascii_case(p) {
        Some(&s[p.len()..])
    } else {
        None
    }
}

fn parse_frame_id(s: &str) -> Result<CanFrameId, ParseSignalKindError> {
    let t = s.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        t.parse()
    };
    parsed
        .map(CanFrameId)
        .map_err(|_| ParseSignalKindError::new(format!("bad CAN frame id {t:?}")))
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalKind::Pin { pins } => {
                f.write_str("pin:")?;
                for (i, p) in pins.iter().enumerate() {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            SignalKind::Can {
                frame,
                start_bit,
                width,
            } => write!(f, "can:{frame}:{start_bit}:{width}"),
        }
    }
}

/// A row of the signal definition sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDef {
    /// The signal's name, referenced by test sheets.
    pub name: SignalName,
    /// Physical realisation.
    pub kind: SignalKind,
    /// Stimulus or observation.
    pub direction: SignalDirection,
    /// Status applied before the test starts (column "status before start").
    /// `None` for outputs or don't-care inputs.
    pub init: Option<StatusName>,
    /// Free-text description.
    pub description: String,
}

impl SignalDef {
    /// Creates a signal definition without an initial status or description.
    pub fn new(name: SignalName, kind: SignalKind, direction: SignalDirection) -> Self {
        Self {
            name,
            kind,
            direction,
            init: None,
            description: String::new(),
        }
    }

    /// Sets the initial status (builder style).
    pub fn with_init(mut self, init: StatusName) -> Self {
        self.init = Some(init);
        self
    }

    /// Sets the description (builder style).
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }
}

/// Error parsing a [`SignalKind`] or [`SignalDirection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSignalKindError {
    message: String,
}

impl ParseSignalKindError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSignalKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid signal: {}", self.message)
    }
}

impl Error for ParseSignalKindError {}

impl From<ParseSignalKindError> for ParseValueError {
    fn from(e: ParseSignalKindError) -> Self {
        ParseValueError::new(e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pin_kinds() {
        let k = SignalKind::parse("pin:DS_FL").unwrap();
        assert_eq!(k.pins().len(), 1);
        assert_eq!(k.to_string(), "pin:DS_FL");

        let k = SignalKind::parse("pin:INT_ILL_F/INT_ILL_R").unwrap();
        assert_eq!(k.pins().len(), 2);
        assert!(!k.is_can());
        assert_eq!(k.to_string(), "pin:INT_ILL_F/INT_ILL_R");
    }

    #[test]
    fn parse_can_kinds() {
        let k = SignalKind::parse("can:0x130:4:2").unwrap();
        assert_eq!(
            k,
            SignalKind::Can {
                frame: CanFrameId(0x130),
                start_bit: 4,
                width: 2
            }
        );
        assert!(k.is_can());
        assert!(k.pins().is_empty());
        assert_eq!(k.to_string(), "can:0x130:4:2");
        // Decimal frame id also works.
        let k = SignalKind::parse("can:304:0:1").unwrap();
        assert_eq!(
            k,
            SignalKind::Can {
                frame: CanFrameId(304),
                start_bit: 0,
                width: 1
            }
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "pin:",
            "pin:A/B/C",
            "can:0x130:4",
            "can:zz:0:1",
            "can:0x130:0:0",
            "can:0x130:0:65",
            "spi:0",
            "",
            // Multi-byte characters near the prefix boundary must not panic.
            "pí:x",
            "cañ:0:0:1",
            "ö",
        ] {
            assert!(SignalKind::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn direction_parse() {
        assert_eq!(
            SignalDirection::parse("Input").unwrap(),
            SignalDirection::Input
        );
        assert_eq!(
            SignalDirection::parse("out").unwrap(),
            SignalDirection::Output
        );
        assert!(SignalDirection::parse("sideways").is_err());
    }

    #[test]
    fn signal_def_builder() {
        let s = SignalDef::new(
            SignalName::new("DS_FL").unwrap(),
            SignalKind::parse("pin:DS_FL").unwrap(),
            SignalDirection::Input,
        )
        .with_init(StatusName::new("Closed").unwrap())
        .with_description("door switch front left");
        assert_eq!(s.init.as_ref().unwrap(), &"closed");
        assert_eq!(s.description, "door switch front left");
    }

    #[test]
    fn frame_id_display() {
        assert_eq!(CanFrameId(0x130).to_string(), "0x130");
    }
}
