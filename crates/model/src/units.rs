//! Physical units for method attributes and resource parameter ranges.

use std::error::Error;
use std::fmt;

/// The unit of a numeric method attribute (`u` is volts, `r` is ohms, …).
///
/// Units are informational plus a consistency check: a status can only be
/// realised by a resource whose parameter range is declared in the same unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Unit {
    /// Volts (`V`).
    Volt,
    /// Ohms (`Ohm` / `Ω`).
    Ohm,
    /// Amperes (`A`).
    Ampere,
    /// Hertz (`Hz`).
    Hertz,
    /// Seconds (`s`).
    Second,
    /// Percent (`%`), e.g. PWM duty cycle.
    Percent,
    /// Dimensionless (ratios, counts, bit values).
    #[default]
    Dimensionless,
}

impl Unit {
    /// The canonical symbol (`V`, `Ohm`, `A`, `Hz`, `s`, `%`, or empty).
    pub fn symbol(self) -> &'static str {
        match self {
            Unit::Volt => "V",
            Unit::Ohm => "Ohm",
            Unit::Ampere => "A",
            Unit::Hertz => "Hz",
            Unit::Second => "s",
            Unit::Percent => "%",
            Unit::Dimensionless => "",
        }
    }

    /// Parses a unit symbol as written in a resource table.
    ///
    /// Accepts the usual spellings case-insensitively, including the Greek
    /// `Ω` the paper uses for the resistor decades. An empty string is
    /// [`Unit::Dimensionless`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseUnitError`] for unknown symbols.
    pub fn parse(s: &str) -> Result<Unit, ParseUnitError> {
        let t = s.trim();
        match t.to_ascii_lowercase().as_str() {
            "v" | "volt" | "volts" => Ok(Unit::Volt),
            "ohm" | "ohms" | "r" => Ok(Unit::Ohm),
            "a" | "amp" | "ampere" | "amperes" => Ok(Unit::Ampere),
            "hz" | "hertz" => Ok(Unit::Hertz),
            "s" | "sec" | "second" | "seconds" => Ok(Unit::Second),
            "%" | "percent" => Ok(Unit::Percent),
            "" | "-" => Ok(Unit::Dimensionless),
            _ if t == "Ω" || t == "ω" => Ok(Unit::Ohm),
            _ => Err(ParseUnitError {
                offending: t.to_owned(),
            }),
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl std::str::FromStr for Unit {
    type Err = ParseUnitError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Unit::parse(s)
    }
}

/// Error parsing a [`Unit`] symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUnitError {
    offending: String,
}

impl fmt::Display for ParseUnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown unit {:?}: expected one of V, Ohm, A, Hz, s, %",
            self.offending
        )
    }
}

impl Error for ParseUnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_units() {
        assert_eq!(Unit::parse("V").unwrap(), Unit::Volt);
        assert_eq!(Unit::parse("Ω").unwrap(), Unit::Ohm);
        assert_eq!(Unit::parse("ohm").unwrap(), Unit::Ohm);
        assert_eq!(Unit::parse("").unwrap(), Unit::Dimensionless);
        assert_eq!(Unit::parse("Hz").unwrap(), Unit::Hertz);
    }

    #[test]
    fn rejects_unknown() {
        assert!(Unit::parse("parsec").is_err());
    }

    #[test]
    fn symbol_roundtrip() {
        for u in [
            Unit::Volt,
            Unit::Ohm,
            Unit::Ampere,
            Unit::Hertz,
            Unit::Second,
            Unit::Percent,
            Unit::Dimensionless,
        ] {
            assert_eq!(Unit::parse(u.symbol()).unwrap(), u);
        }
    }
}
