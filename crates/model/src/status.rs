//! Status definitions: the status table of the paper's Section 3.
//!
//! Every status used in the signal or test sheets is defined here: which
//! method realises it, the method attribute, an optional scaling variable
//! (e.g. `UBATT`) and nominal/min/max values.  See DESIGN.md §2 for the exact
//! column semantics (the paper leaves them partly implicit).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::expr::{Env, EvalExprError, Expr};
use crate::method::{MethodDirection, MethodName, MethodRegistry};
use crate::time::SimTime;
use crate::value::{number_to_string, BitPattern};

define_name!(
    /// The name of a status (`Open`, `Closed`, `Lo`, `Ho`, `0`, `1`, …).
    StatusName,
    "status"
);

/// One row of the status definition sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusDef {
    /// Status name, referenced from signal and test sheets.
    pub name: StatusName,
    /// The abstract method realising the status (`put_r`, `get_u`, …).
    pub method: MethodName,
    /// The method's principal attribute (`r`, `u`, `data`, …).
    pub attribut: String,
    /// Optional scaling variable: when set, `nom`/`min`/`max` are multiplied
    /// by the stand's value of this variable (the paper's `var (x)` column).
    pub var: Option<String>,
    /// Nominal value — the target for `put_*`, informational for `get_*`.
    /// `None` only for bit-pattern statuses where `bits` is set instead.
    pub nom: Option<f64>,
    /// Lower limit (multiplier if `var` is set). `None` means unbounded.
    pub min: Option<f64>,
    /// Upper limit (multiplier if `var` is set). `None` means unbounded.
    pub max: Option<f64>,
    /// Bit pattern for `data`-attribute statuses (`0001B`).
    pub bits: Option<BitPattern>,
    /// `D1`: settle time in seconds before the status is considered applied
    /// (for `put_*`) or before sampling may begin (for `get_*`).
    pub d1: Option<f64>,
    /// `D2`: sample window in seconds (reserved for continuous monitoring).
    pub d2: Option<f64>,
    /// `D3`: reserved.
    pub d3: Option<f64>,
}

impl StatusDef {
    /// Creates a numeric status with nominal value and limits.
    pub fn numeric(
        name: StatusName,
        method: MethodName,
        attribut: impl Into<String>,
        nom: f64,
        min: f64,
        max: f64,
    ) -> Self {
        Self {
            name,
            method,
            attribut: attribut.into(),
            var: None,
            nom: Some(nom),
            min: Some(min),
            max: Some(max),
            bits: None,
            d1: None,
            d2: None,
            d3: None,
        }
    }

    /// Creates a bit-pattern status (`put_can` / `get_can`).
    pub fn bits(
        name: StatusName,
        method: MethodName,
        attribut: impl Into<String>,
        bits: BitPattern,
    ) -> Self {
        Self {
            name,
            method,
            attribut: attribut.into(),
            var: None,
            nom: None,
            min: None,
            max: None,
            bits: Some(bits),
            d1: None,
            d2: None,
            d3: None,
        }
    }

    /// Sets the scaling variable (builder style).
    pub fn with_var(mut self, var: impl Into<String>) -> Self {
        self.var = Some(var.into().to_ascii_lowercase());
        self
    }

    /// Sets the settle time `D1` in seconds (builder style).
    pub fn with_settle(mut self, secs: f64) -> Self {
        self.d1 = Some(secs);
        self
    }

    /// The lower bound as an expression for script generation:
    /// `min` or `(min*var)`, `None` if unbounded.
    pub fn min_expr(&self) -> Option<Expr> {
        self.bound_expr(self.min)
    }

    /// The upper bound as an expression for script generation.
    pub fn max_expr(&self) -> Option<Expr> {
        self.bound_expr(self.max)
    }

    /// The nominal value as an expression for script generation.
    pub fn nom_expr(&self) -> Option<Expr> {
        self.bound_expr(self.nom)
    }

    fn bound_expr(&self, bound: Option<f64>) -> Option<Expr> {
        let b = bound?;
        Some(match &self.var {
            Some(var) => Expr::mul(Expr::num(b), Expr::var(var)),
            None => Expr::num(b),
        })
    }

    /// Resolves the status against a stand environment into concrete bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveStatusError`] if the scaling variable is missing from
    /// the environment.
    pub fn resolve(&self, env: &Env) -> Result<ResolvedStatus, ResolveStatusError> {
        if let Some(bits) = self.bits {
            return Ok(ResolvedStatus {
                status: self.name.clone(),
                method: self.method.clone(),
                attribut: self.attribut.clone(),
                bound: StatusBound::Bits(bits),
                settle: SimTime::from_secs_f64(self.d1.unwrap_or(0.0)),
                window: SimTime::from_secs_f64(self.d2.unwrap_or(0.0)),
            });
        }
        let scale = match &self.var {
            Some(var) => env.get(var).ok_or_else(|| ResolveStatusError {
                status: self.name.clone(),
                source: EvalExprError::UnknownVariable { name: var.clone() },
            })?,
            None => 1.0,
        };
        let nominal = self.nom.map(|n| n * scale);
        let lo = self.min.map_or(f64::NEG_INFINITY, |m| m * scale);
        let hi = self.max.map_or(f64::INFINITY, |m| m * scale);
        Ok(ResolvedStatus {
            status: self.name.clone(),
            method: self.method.clone(),
            attribut: self.attribut.clone(),
            bound: StatusBound::Numeric { nominal, lo, hi },
            settle: SimTime::from_secs_f64(self.d1.unwrap_or(0.0)),
            window: SimTime::from_secs_f64(self.d2.unwrap_or(0.0)),
        })
    }

    /// Sanity-checks the definition against a method registry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found:
    /// unknown method, attribute mismatch, `nom` outside `[min, max]`,
    /// inverted limits, or a bit pattern on a numeric method.
    pub fn check(&self, registry: &MethodRegistry) -> Result<(), String> {
        let spec = registry
            .get(&self.method)
            .ok_or_else(|| format!("status {}: unknown method {}", self.name, self.method))?;
        if !spec.attribut.eq_ignore_ascii_case(&self.attribut) {
            return Err(format!(
                "status {}: method {} expects attribute `{}`, sheet says `{}`",
                self.name, self.method, spec.attribut, self.attribut
            ));
        }
        match spec.attr_kind {
            crate::method::AttrKind::Bits => {
                if self.bits.is_none() {
                    return Err(format!(
                        "status {}: method {} needs a bit pattern (e.g. 0001B)",
                        self.name, self.method
                    ));
                }
            }
            crate::method::AttrKind::Numeric(_) => {
                if self.bits.is_some() {
                    return Err(format!(
                        "status {}: method {} is numeric but a bit pattern was given",
                        self.name, self.method
                    ));
                }
                if let (Some(lo), Some(hi)) = (self.min, self.max) {
                    if lo > hi {
                        return Err(format!(
                            "status {}: min {} exceeds max {}",
                            self.name,
                            number_to_string(lo),
                            number_to_string(hi)
                        ));
                    }
                }
                if let Some(nom) = self.nom {
                    let lo = self.min.unwrap_or(f64::NEG_INFINITY);
                    let hi = self.max.unwrap_or(f64::INFINITY);
                    if nom < lo || nom > hi {
                        return Err(format!(
                            "status {}: nominal {} outside [{}, {}]",
                            self.name,
                            number_to_string(nom),
                            number_to_string(lo),
                            number_to_string(hi)
                        ));
                    }
                }
                if spec.direction == MethodDirection::Put && self.nom.is_none() {
                    return Err(format!(
                        "status {}: put method {} needs a nominal value",
                        self.name, self.method
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The value constraint of a resolved status.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatusBound {
    /// Numeric target and acceptance/realization interval in concrete units.
    Numeric {
        /// Scaled nominal value (`None` when only bounds were given).
        nominal: Option<f64>,
        /// Scaled lower limit (may be `-INF`).
        lo: f64,
        /// Scaled upper limit (may be `+INF`).
        hi: f64,
    },
    /// Exact bit pattern.
    Bits(BitPattern),
}

impl StatusBound {
    /// True if a measured numeric value satisfies the bound.
    pub fn accepts_num(&self, value: f64) -> bool {
        match self {
            StatusBound::Numeric { lo, hi, .. } => value >= *lo && value <= *hi,
            StatusBound::Bits(_) => false,
        }
    }

    /// True if a measured bit value satisfies the bound.
    pub fn accepts_bits(&self, value: u64) -> bool {
        match self {
            StatusBound::Bits(p) => p.matches(value),
            StatusBound::Numeric { .. } => false,
        }
    }
}

impl fmt::Display for StatusBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use crate::value::display_number;
        match self {
            StatusBound::Numeric { nominal, lo, hi } => {
                if let Some(n) = nominal {
                    write!(f, "{} ", display_number(*n))?;
                }
                write!(f, "[{}, {}]", display_number(*lo), display_number(*hi))
            }
            StatusBound::Bits(b) => b.fmt(f),
        }
    }
}

/// A status resolved against a concrete stand environment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedStatus {
    /// The originating status.
    pub status: StatusName,
    /// The method to execute.
    pub method: MethodName,
    /// The method's principal attribute.
    pub attribut: String,
    /// Concrete value constraint.
    pub bound: StatusBound,
    /// Settle time before apply/sample (`D1`).
    pub settle: SimTime,
    /// Sample window (`D2`).
    pub window: SimTime,
}

/// The status table: an ordered collection of [`StatusDef`]s with
/// case-insensitive lookup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusTable {
    rows: Vec<StatusDef>,
    index: BTreeMap<String, usize>,
}

impl StatusTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a definition. A redefinition replaces the earlier row and is
    /// reported by returning the old definition.
    pub fn insert(&mut self, def: StatusDef) -> Option<StatusDef> {
        let key = def.name.key();
        match self.index.get(&key) {
            Some(&i) => {
                let old = std::mem::replace(&mut self.rows[i], def);
                Some(old)
            }
            None => {
                self.index.insert(key, self.rows.len());
                self.rows.push(def);
                None
            }
        }
    }

    /// Looks a status up by name, case-insensitively.
    pub fn get(&self, name: &StatusName) -> Option<&StatusDef> {
        self.index.get(&name.key()).map(|&i| &self.rows[i])
    }

    /// Looks a status up by raw string.
    pub fn get_str(&self, name: &str) -> Option<&StatusDef> {
        self.index
            .get(&name.to_ascii_lowercase())
            .map(|&i| &self.rows[i])
    }

    /// Number of statuses.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates in sheet order.
    pub fn iter(&self) -> std::slice::Iter<'_, StatusDef> {
        self.rows.iter()
    }
}

impl FromIterator<StatusDef> for StatusTable {
    fn from_iter<T: IntoIterator<Item = StatusDef>>(iter: T) -> Self {
        let mut table = StatusTable::new();
        for def in iter {
            table.insert(def);
        }
        table
    }
}

impl<'a> IntoIterator for &'a StatusTable {
    type Item = &'a StatusDef;
    type IntoIter = std::slice::Iter<'a, StatusDef>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// Error resolving a [`StatusDef`] against an [`Env`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResolveStatusError {
    /// The status that failed to resolve.
    pub status: StatusName,
    /// Underlying evaluation error.
    pub source: EvalExprError,
}

impl fmt::Display for ResolveStatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot resolve status {}: {}", self.status, self.source)
    }
}

impl Error for ResolveStatusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::MethodRegistry;

    fn name(s: &str) -> StatusName {
        StatusName::new(s).unwrap()
    }

    fn method(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    /// The paper's `Ho` row: `get_u u UBATT 1 0,7 1,1`.
    fn ho() -> StatusDef {
        StatusDef::numeric(name("Ho"), method("get_u"), "u", 1.0, 0.7, 1.1).with_var("UBATT")
    }

    /// The paper's `Open` row, normalised per DESIGN.md: 0 Ω nominal, 0..2 Ω.
    fn open() -> StatusDef {
        StatusDef::numeric(name("Open"), method("put_r"), "r", 0.0, 0.0, 2.0).with_settle(0.01)
    }

    #[test]
    fn resolve_scaled_status() {
        let env = Env::with_ubatt(12.0);
        let r = ho().resolve(&env).unwrap();
        match r.bound {
            StatusBound::Numeric { nominal, lo, hi } => {
                assert_eq!(nominal, Some(12.0));
                assert!((lo - 8.4).abs() < 1e-12);
                assert!((hi - 13.2).abs() < 1e-12);
            }
            _ => panic!("expected numeric bound"),
        }
        assert!(r.bound.accepts_num(12.0));
        assert!(r.bound.accepts_num(8.4));
        assert!(!r.bound.accepts_num(8.3));
        assert!(!r.bound.accepts_num(13.3));
    }

    #[test]
    fn resolve_unscaled_status() {
        let env = Env::new();
        let r = open().resolve(&env).unwrap();
        match r.bound {
            StatusBound::Numeric { nominal, lo, hi } => {
                assert_eq!(nominal, Some(0.0));
                assert_eq!((lo, hi), (0.0, 2.0));
            }
            _ => panic!("expected numeric bound"),
        }
        assert_eq!(r.settle, SimTime::from_millis(10));
    }

    #[test]
    fn resolve_missing_variable_errors() {
        let err = ho().resolve(&Env::new()).unwrap_err();
        assert_eq!(err.status, name("Ho"));
        assert!(err.to_string().contains("ubatt"));
    }

    #[test]
    fn resolve_infinite_bounds() {
        // `Closed` per DESIGN.md: nominal INF, at least 5 kΩ.
        let closed = StatusDef {
            min: Some(5000.0),
            max: None,
            nom: Some(f64::INFINITY),
            ..StatusDef::numeric(name("Closed"), method("put_r"), "r", 0.0, 0.0, 0.0)
        };
        let r = closed.resolve(&Env::new()).unwrap();
        assert!(r.bound.accepts_num(1e6));
        assert!(r.bound.accepts_num(f64::INFINITY));
        assert!(!r.bound.accepts_num(4999.0));
    }

    #[test]
    fn bits_status_resolution_and_matching() {
        let s = StatusDef::bits(
            name("Off"),
            method("put_can"),
            "data",
            BitPattern::parse("0001B").unwrap(),
        );
        let r = s.resolve(&Env::new()).unwrap();
        assert!(r.bound.accepts_bits(1));
        assert!(!r.bound.accepts_bits(2));
        assert!(!r.bound.accepts_num(1.0));
    }

    #[test]
    fn bound_exprs_for_codegen() {
        let ho = ho();
        assert_eq!(ho.min_expr().unwrap().to_string(), "(0.7*ubatt)");
        assert_eq!(ho.max_expr().unwrap().to_string(), "(1.1*ubatt)");
        assert_eq!(ho.nom_expr().unwrap().to_string(), "(1*ubatt)");
        let open = open();
        assert_eq!(open.min_expr().unwrap().to_string(), "0");
        assert_eq!(open.max_expr().unwrap().to_string(), "2");
    }

    #[test]
    fn check_catches_inconsistencies() {
        let reg = MethodRegistry::builtin();
        assert!(ho().check(&reg).is_ok());
        assert!(open().check(&reg).is_ok());

        // Unknown method.
        let mut bad = open();
        bad.method = method("put_q");
        assert!(bad.check(&reg).unwrap_err().contains("unknown method"));

        // Wrong attribute.
        let mut bad = open();
        bad.attribut = "u".into();
        assert!(bad.check(&reg).unwrap_err().contains("attribute"));

        // Inverted limits — this is the paper's own `Open 0 0,5 1 2` row.
        let mut bad = open();
        bad.min = Some(0.5);
        bad.max = Some(2.0);
        bad.nom = Some(0.0);
        assert!(bad.check(&reg).unwrap_err().contains("outside"));

        // Bits on numeric method.
        let mut bad = open();
        bad.bits = Some(BitPattern::parse("1B").unwrap());
        assert!(bad.check(&reg).is_err());

        // Numeric on bits method.
        let bad = StatusDef::numeric(name("x"), method("put_can"), "data", 0.0, 0.0, 1.0);
        assert!(bad.check(&reg).unwrap_err().contains("bit pattern"));
    }

    #[test]
    fn table_insert_lookup_replace() {
        let mut t = StatusTable::new();
        assert!(t.is_empty());
        assert!(t.insert(ho()).is_none());
        assert!(t.insert(open()).is_none());
        assert_eq!(t.len(), 2);
        assert!(t.get(&name("HO")).is_some(), "case-insensitive lookup");
        assert!(t.get_str("open").is_some());
        assert!(t.get_str("nope").is_none());
        // Replacement keeps sheet order and returns the old row.
        let mut ho2 = ho();
        ho2.max = Some(1.2);
        let old = t.insert(ho2).unwrap();
        assert_eq!(old.max, Some(1.1));
        assert_eq!(t.iter().next().unwrap().max, Some(1.2));
    }

    #[test]
    fn table_from_iterator() {
        let t: StatusTable = vec![ho(), open()].into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
