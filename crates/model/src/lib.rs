//! Data model for test-stand-independent component tests.
//!
//! This crate contains the vocabulary of the component-test methodology
//! described by Brinkmeyer (*A New Approach to Component Testing*, DATE 2005):
//!
//! * [`SignalDef`] — an input/output signal of the device under test (DUT),
//!   either one or two electrical pins or a CAN-mapped bit field;
//! * [`MethodSpec`] / [`MethodRegistry`] — the abstract instrument methods a
//!   test stand may implement (`put_r`, `get_u`, `put_can`, …);
//! * [`StatusDef`] / [`StatusTable`] — named signal statuses (`Open`, `Ho`,
//!   …) that bind a method, an attribute and nominal/min/max values, possibly
//!   scaled by an environment variable such as `UBATT`;
//! * [`TestStep`] / [`TestCase`] / [`TestSuite`] — the test definition sheet:
//!   per step a duration `Δt` and status assignments to signals;
//! * [`Expr`] / [`Env`] — the small arithmetic expression language used in
//!   generated test scripts (e.g. `(1.1*ubatt)`);
//! * [`SimTime`] — fixed-point simulation time;
//! * [`Value`] — numbers (including `INF`) and bit patterns such as `0001B`.
//!
//! Everything here is pure data plus semantics; parsing of the sheet formats
//! lives in `comptest-sheets`, XML script generation in `comptest-script`,
//! and execution in `comptest-stand` / `comptest-core`.
//!
//! # Example
//!
//! ```
//! use comptest_model::{Env, Expr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let expr = Expr::parse("(1.1*ubatt)")?;
//! let env = Env::with_ubatt(12.0);
//! assert!((expr.eval(&env)? - 13.2).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod name;

pub mod error;
pub mod expr;
pub mod method;
pub mod signal;
pub mod status;
pub mod testdef;
pub mod time;
pub mod units;
pub mod value;

pub use error::ModelError;
pub use expr::{Env, Expr};
pub use method::{AttrKind, MethodDirection, MethodName, MethodRegistry, MethodSpec};
pub use name::InvalidNameError;
pub use signal::{CanFrameId, PinId, SignalDef, SignalDirection, SignalKind, SignalName};
pub use status::{ResolvedStatus, StatusBound, StatusDef, StatusName, StatusTable};
pub use testdef::{Assignment, TestCase, TestStep, TestSuite, ValidationIssue};
pub use time::SimTime;
pub use units::Unit;
pub use value::{BitPattern, Value};
