//! Cell values: numbers (including `INF`), bit patterns (`0001B`) and text.

use std::error::Error;
use std::fmt;

/// A bit pattern literal as used by `put_can` / `get_can` statuses,
/// e.g. `0001B` (width 4, value 1) or `1B` (width 1, value 1).
///
/// The most significant bit is written first, exactly as in the paper's
/// status table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitPattern {
    bits: u64,
    width: u8,
}

impl BitPattern {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u8 = 64;

    /// Creates a pattern from a value and a width.
    ///
    /// # Errors
    ///
    /// Returns [`ParseValueError`] if `width` is zero, exceeds
    /// [`BitPattern::MAX_WIDTH`], or cannot hold `bits`.
    pub fn new(bits: u64, width: u8) -> Result<Self, ParseValueError> {
        if width == 0 || width > Self::MAX_WIDTH {
            return Err(ParseValueError::new(format!(
                "bit width {width} out of range 1..=64"
            )));
        }
        if width < 64 && bits >> width != 0 {
            return Err(ParseValueError::new(format!(
                "value {bits:#b} does not fit in {width} bits"
            )));
        }
        Ok(Self { bits, width })
    }

    /// Parses a literal such as `0001B` or `1b`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseValueError`] if the string is not a binary literal with
    /// a `B` suffix.
    pub fn parse(s: &str) -> Result<Self, ParseValueError> {
        let t = s.trim();
        let body = t
            .strip_suffix(['B', 'b'])
            .ok_or_else(|| ParseValueError::new(format!("{t:?}: missing B suffix")))?;
        if body.is_empty() || body.len() > Self::MAX_WIDTH as usize {
            return Err(ParseValueError::new(format!(
                "{t:?}: bad bit pattern length"
            )));
        }
        let mut bits = 0u64;
        for c in body.chars() {
            bits <<= 1;
            match c {
                '0' => {}
                '1' => bits |= 1,
                _ => return Err(ParseValueError::new(format!("{t:?}: invalid bit {c:?}"))),
            }
        }
        Ok(Self {
            bits,
            width: body.len() as u8,
        })
    }

    /// The numeric value of the pattern.
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// The declared width in bits.
    pub const fn width(self) -> u8 {
        self.width
    }

    /// True if `value`'s low `width` bits equal this pattern.
    pub fn matches(self, value: u64) -> bool {
        let mask = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        value & mask == self.bits
    }
}

impl fmt::Display for BitPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            let bit = (self.bits >> i) & 1;
            write!(f, "{bit}")?;
        }
        f.write_str("B")
    }
}

impl std::str::FromStr for BitPattern {
    type Err = ParseValueError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BitPattern::parse(s)
    }
}

/// A parsed sheet cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A (possibly infinite) number. `INF` in a sheet maps to
    /// [`f64::INFINITY`] and means "open circuit" / "unbounded".
    Num(f64),
    /// A bit pattern such as `0001B`.
    Bits(BitPattern),
    /// Free text (anything that is neither a number nor a bit pattern).
    Text(String),
}

impl Value {
    /// Parses a cell: bit pattern first (`[01]+B`), then number (accepting
    /// decimal comma and `INF`), falling back to text.
    pub fn parse_cell(s: &str) -> Value {
        let t = s.trim();
        if let Ok(b) = BitPattern::parse(t) {
            return Value::Bits(b);
        }
        if let Ok(n) = parse_number(t) {
            return Value::Num(n);
        }
        Value::Text(t.to_owned())
    }

    /// The numeric value, if this is [`Value::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bit pattern, if this is [`Value::Bits`].
    pub fn as_bits(&self) -> Option<BitPattern> {
        match self {
            Value::Bits(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => fmt_number(*n, f),
            Value::Bits(b) => b.fmt(f),
            Value::Text(t) => f.write_str(t),
        }
    }
}

/// Formats a number the way sheets and scripts expect: `INF` / `-INF` for
/// infinities, shortest-roundtrip decimal otherwise.
pub fn fmt_number(n: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if n == f64::INFINITY {
        f.write_str("INF")
    } else if n == f64::NEG_INFINITY {
        f.write_str("-INF")
    } else {
        write!(f, "{n}")
    }
}

/// Formats a number for human-facing tables: like [`number_to_string`] but
/// rounded to 9 decimals so float artefacts (`13.200000000000001`) do not
/// leak into reports. Never use this for scripts or sheets — those need the
/// exact shortest-roundtrip form.
pub fn display_number(n: f64) -> String {
    if !n.is_finite() {
        return number_to_string(n);
    }
    let rounded = (n * 1e9).round() / 1e9;
    number_to_string(rounded)
}

/// Formats a number into a `String` (see [`fmt_number`]).
pub fn number_to_string(n: f64) -> String {
    struct W(f64);
    impl fmt::Display for W {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt_number(self.0, f)
        }
    }
    W(n).to_string()
}

/// Parses a number from a sheet cell.
///
/// Accepts decimal comma (`0,5`) or point, scientific notation (`1,00E+06`),
/// and the special spellings `INF` / `-INF` (any case).
///
/// # Errors
///
/// Returns [`ParseValueError`] if the cell is empty or not numeric.
pub fn parse_number(s: &str) -> Result<f64, ParseValueError> {
    let t = s.trim();
    if t.is_empty() {
        return Err(ParseValueError::new(
            "empty cell where a number was expected",
        ));
    }
    match t.to_ascii_uppercase().as_str() {
        "INF" | "+INF" => return Ok(f64::INFINITY),
        "-INF" => return Ok(f64::NEG_INFINITY),
        _ => {}
    }
    // Decimal comma: only replace when there is exactly one comma and no
    // point, to avoid silently accepting thousands separators.
    let normalized = if t.contains(',') {
        if t.matches(',').count() == 1 && !t.contains('.') {
            t.replace(',', ".")
        } else {
            return Err(ParseValueError::new(format!("ambiguous number {t:?}")));
        }
    } else {
        t.to_owned()
    };
    let n: f64 = normalized
        .parse()
        .map_err(|_| ParseValueError::new(format!("not a number: {t:?}")))?;
    if n.is_nan() {
        return Err(ParseValueError::new("NaN is not a valid sheet value"));
    }
    Ok(n)
}

/// Error parsing a [`Value`], [`BitPattern`] or number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    message: String,
}

impl ParseValueError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value: {}", self.message)
    }
}

impl Error for ParseValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_pattern_parse_display_roundtrip() {
        for s in ["0001B", "1B", "0B", "1010B", "0000000011111111B"] {
            let p = BitPattern::parse(s).unwrap();
            assert_eq!(p.to_string(), s, "roundtrip of {s}");
        }
        assert_eq!(BitPattern::parse("0001B").unwrap().bits(), 1);
        assert_eq!(BitPattern::parse("0001B").unwrap().width(), 4);
        assert_eq!(BitPattern::parse("1010b").unwrap().bits(), 0b1010);
    }

    #[test]
    fn bit_pattern_rejects_bad_input() {
        for s in ["", "B", "2B", "01", "0x1B1B", "0102B"] {
            assert!(BitPattern::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn bit_pattern_matches() {
        let p = BitPattern::parse("0001B").unwrap();
        assert!(p.matches(1));
        assert!(p.matches(0b10001)); // only the low 4 bits are compared
        assert!(!p.matches(0));
        assert!(!p.matches(3));
    }

    #[test]
    fn bit_pattern_new_validates() {
        assert!(BitPattern::new(1, 0).is_err());
        assert!(BitPattern::new(4, 2).is_err());
        assert!(BitPattern::new(3, 2).is_ok());
        assert!(BitPattern::new(u64::MAX, 64).is_ok());
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(parse_number("0,5").unwrap(), 0.5);
        assert_eq!(parse_number("0.5").unwrap(), 0.5);
        assert_eq!(parse_number("1,00E+06").unwrap(), 1.0e6);
        assert_eq!(parse_number("2,00E+05").unwrap(), 2.0e5);
        assert_eq!(parse_number("INF").unwrap(), f64::INFINITY);
        assert_eq!(parse_number("-inf").unwrap(), f64::NEG_INFINITY);
        assert_eq!(parse_number("-60").unwrap(), -60.0);
    }

    #[test]
    fn parse_number_rejects() {
        for s in ["", "1,2,3", "1.5,2", "abc", "NaN"] {
            assert!(parse_number(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn cell_dispatch() {
        assert_eq!(
            Value::parse_cell("0001B"),
            Value::Bits(BitPattern::new(1, 4).unwrap())
        );
        assert_eq!(Value::parse_cell("0,5"), Value::Num(0.5));
        assert_eq!(Value::parse_cell("INF"), Value::Num(f64::INFINITY));
        assert_eq!(Value::parse_cell("hello"), Value::Text("hello".into()));
        // "0B" and "1B" are bit patterns, not text.
        assert_eq!(
            Value::parse_cell("0B"),
            Value::Bits(BitPattern::new(0, 1).unwrap())
        );
    }

    #[test]
    fn display_numbers() {
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "INF");
        assert_eq!(Value::Num(0.5).to_string(), "0.5");
        assert_eq!(Value::Num(1e6).to_string(), "1000000");
        assert_eq!(number_to_string(f64::NEG_INFINITY), "-INF");
    }
}
