//! Property test: the incremental allocator (Kuhn-style augmenting paths)
//! finds an assignment **iff** one exists — verified against a brute-force
//! oracle on small random instances.

use comptest_model::{Env, MethodName, PinId, SignalName, Unit};
use comptest_stand::alloc::{AppliedValue, PutRequirement};
use comptest_stand::{AllocOptions, Allocator, Capability, Resource, ResourceId, TestStand};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    /// resource ranges (min, max) — all put_r.
    resources: Vec<(f64, f64)>,
    /// connection\[signal]\[resource]
    connected: Vec<Vec<bool>>,
    /// per-signal requirement window (lo, hi); nominal = midpoint.
    windows: Vec<(f64, f64)>,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..=5, 1usize..=4).prop_flat_map(|(n_signals, n_resources)| {
        let resources = prop::collection::vec((0.0..500.0f64, 500.0..2000.0f64), n_resources);
        let connected =
            prop::collection::vec(prop::collection::vec(any::<bool>(), n_resources), n_signals);
        let windows = prop::collection::vec(
            (0.0..1500.0f64).prop_flat_map(|lo| (Just(lo), lo..(lo + 600.0))),
            n_signals,
        );
        (resources, connected, windows).prop_map(|(resources, connected, windows)| Instance {
            resources,
            connected,
            windows,
        })
    })
}

fn build_stand(inst: &Instance) -> TestStand {
    let put_r = MethodName::new("put_r").unwrap();
    let mut stand = TestStand::new("prop", Env::with_ubatt(12.0));
    for (i, (lo, hi)) in inst.resources.iter().enumerate() {
        stand = stand.with_resource(
            Resource::new(ResourceId::new(format!("R{i}")).unwrap())
                .with_capability(Capability::new(put_r.clone(), "r", *lo, *hi, Unit::Ohm)),
        );
    }
    let mut point = 0;
    for (s, row) in inst.connected.iter().enumerate() {
        for (r, is_connected) in row.iter().enumerate() {
            if *is_connected {
                stand = stand.with_connection(
                    PinId::new(format!("X{point}")).unwrap(),
                    ResourceId::new(format!("R{r}")).unwrap(),
                    PinId::new(format!("P{s}")).unwrap(),
                );
                point += 1;
            }
        }
    }
    stand
}

/// A signal can use resource `r` iff connected and the window intersects the
/// resource range. (No park here: windows are finite, so park never helps.)
fn edge(inst: &Instance, s: usize, r: usize) -> bool {
    inst.connected[s][r]
        && inst.windows[s].0.max(inst.resources[r].0) <= inst.windows[s].1.min(inst.resources[r].1)
}

/// Brute-force: try every injective signal→resource mapping.
fn feasible_brute_force(inst: &Instance) -> bool {
    fn rec(inst: &Instance, s: usize, used: &mut Vec<bool>) -> bool {
        if s == inst.windows.len() {
            return true;
        }
        for r in 0..inst.resources.len() {
            if !used[r] && edge(inst, s, r) {
                used[r] = true;
                if rec(inst, s + 1, used) {
                    used[r] = false;
                    return true;
                }
                used[r] = false;
            }
        }
        false
    }
    let mut used = vec![false; inst.resources.len()];
    rec(inst, 0, &mut used)
}

fn allocator_feasible(inst: &Instance, reroute: bool) -> bool {
    let stand = build_stand(inst);
    let mut alloc = Allocator::with_options(&stand, AllocOptions { reroute });
    let put_r = MethodName::new("put_r").unwrap();
    for (s, (lo, hi)) in inst.windows.iter().enumerate() {
        let req = PutRequirement {
            method: put_r.clone(),
            nominal: AppliedValue::Num((lo + hi) / 2.0),
            window: (*lo, *hi),
            pins: vec![PinId::new(format!("P{s}")).unwrap()],
        };
        if alloc
            .assign_put(&SignalName::new(format!("S{s}")).unwrap(), Some(0), req)
            .is_err()
        {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With rerouting, the incremental allocator is a maximum-matching
    /// algorithm: it succeeds exactly when the brute-force oracle does.
    #[test]
    fn allocator_matches_brute_force(inst in arb_instance()) {
        let oracle = feasible_brute_force(&inst);
        let incremental = allocator_feasible(&inst, true);
        prop_assert_eq!(
            incremental,
            oracle,
            "allocator and oracle disagree on {:?}",
            inst
        );
    }

    /// Greedy (no reroute) is sound but incomplete: it never succeeds where
    /// the oracle says infeasible.
    #[test]
    fn greedy_is_sound(inst in arb_instance()) {
        if allocator_feasible(&inst, false) {
            prop_assert!(feasible_brute_force(&inst), "greedy found an impossible assignment");
        }
    }
}
