//! Resource allocation: "For each method to be carried out, the test stand
//! searches an approriate ressource, that can be connected to the signal
//! pin. If this is not possible an error message is generated." (§4)
//!
//! Stimulus (`put_*`) assignments are *persistent*: a signal keeps its
//! resource until reassigned, because the applied status must hold across
//! steps.  That turns allocation into incremental bipartite matching with
//! capacities: when a new requirement arrives and every capable, connected
//! resource is busy, the allocator may *reroute* held assignments through
//! the matrix (augmenting paths), as a real stand would re-switch its
//! multiplexers — provided the moved signal's own value constraint stays
//! satisfied on the new resource.
//!
//! Measurements (`get_*`) are transient: within one step a single DVM can
//! serve several checks sequentially, so gets only need capability,
//! connectivity and range coverage, never exclusivity against other gets.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use comptest_model::{BitPattern, MethodName, PinId, SignalName};

use crate::resource::{Resource, ResourceId};
use crate::stand::TestStand;

/// A value as actually applied by a resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppliedValue {
    /// A numeric value (volts, ohms, …).
    Num(f64),
    /// A bit pattern (CAN payload field).
    Bits(BitPattern),
}

impl fmt::Display for AppliedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppliedValue::Num(n) => f.write_str(&comptest_model::value::number_to_string(*n)),
            AppliedValue::Bits(b) => b.fmt(f),
        }
    }
}

/// A stimulus requirement: what a `put_*` statement needs from a resource.
#[derive(Debug, Clone, PartialEq)]
pub struct PutRequirement {
    /// The method (`put_r`, `put_can`, …).
    pub method: MethodName,
    /// Nominal value to apply.
    pub nominal: AppliedValue,
    /// Admissible realization window `[lo, hi]` for numeric values; a stand
    /// may apply any value inside it (e.g. `Closed` accepts ≥ 5 kΩ when the
    /// decade cannot do a true open circuit).
    pub window: (f64, f64),
    /// The pins the resource must reach (empty + `can = true` for CAN).
    pub pins: Vec<PinId>,
}

/// A measurement requirement: what a `get_*` statement needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GetRequirement {
    /// The method (`get_u`, `get_can`, …).
    pub method: MethodName,
    /// Acceptance bounds whose finite endpoints must lie inside the
    /// resource's measurable range.
    pub bounds: (f64, f64),
    /// The pins the resource must reach.
    pub pins: Vec<PinId>,
}

/// Why a specific resource was rejected for a requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The resource does not implement the method.
    NoCapability,
    /// The matrix offers no crosspoint from this resource to some pin.
    NotConnected {
        /// The unreachable pin.
        pin: PinId,
    },
    /// The requirement's window/bounds and the resource's range do not
    /// intersect / are not covered.
    ValueOutOfRange {
        /// The resource's range, rendered.
        range: String,
    },
    /// The resource is at capacity serving other signals and no reroute was
    /// possible.
    Busy {
        /// The signals currently holding the resource.
        holding: Vec<SignalName>,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NoCapability => f.write_str("method not supported"),
            RejectReason::NotConnected { pin } => write!(f, "no crosspoint to pin {pin}"),
            RejectReason::ValueOutOfRange { range } => {
                write!(f, "value outside supported range {range}")
            }
            RejectReason::Busy { holding } => {
                write!(f, "busy (holding ")?;
                for (i, s) in holding.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{s}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// The paper's "error message": no appropriate, connectable resource.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocFailure {
    /// The signal whose statement failed.
    pub signal: SignalName,
    /// The requested method.
    pub method: MethodName,
    /// Step number (`None` = init block).
    pub step: Option<u32>,
    /// Per-resource rejection reasons, in resource order.
    pub rejections: Vec<(ResourceId, RejectReason)>,
}

impl fmt::Display for AllocFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(nr) => write!(
                f,
                "step {nr}: no resource for {} on signal {}",
                self.method, self.signal
            )?,
            None => write!(
                f,
                "init: no resource for {} on signal {}",
                self.method, self.signal
            )?,
        }
        for (id, reason) in &self.rejections {
            write!(f, "\n  {id}: {reason}")?;
        }
        Ok(())
    }
}

impl Error for AllocFailure {}

/// Allocation tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocOptions {
    /// Allow rerouting held assignments via augmenting paths. Disabling
    /// makes the allocator greedy (first-fit only) — the ablation measured
    /// in experiment E4.
    pub reroute: bool,
}

impl Default for AllocOptions {
    fn default() -> Self {
        Self { reroute: true }
    }
}

/// A granted stimulus assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PutGrant {
    /// The chosen resource.
    pub resource: ResourceId,
    /// The value the resource will actually apply (nominal clamped into the
    /// intersection of window and resource range).
    pub applied: AppliedValue,
    /// True if the signal was moved off a previously-held resource.
    pub rerouted: bool,
}

#[derive(Debug, Clone)]
struct Held {
    resource: ResourceId,
    requirement: PutRequirement,
}

/// The incremental allocator. One instance lives for the duration of a test
/// execution; create a fresh one per test.
///
/// Besides the stand's instruments the allocator knows one implicit
/// pseudo-resource, **`Park`**: leaving a pin disconnected realises an open
/// circuit, i.e. `put_r` with an `INF` upper realization window.  This is
/// how a stand with two resistor decades can still hold all four door
/// switches in the paper's `Closed` initial status — closed door switches
/// are simply not wired up.
#[derive(Debug, Clone)]
pub struct Allocator<'a> {
    stand: &'a TestStand,
    options: AllocOptions,
    park: Resource,
    held: BTreeMap<SignalName, Held>,
    load: BTreeMap<ResourceId, Vec<SignalName>>,
}

/// The id of the implicit open-circuit pseudo-resource.
pub const PARK_RESOURCE: &str = "Park";

fn park_resource() -> Resource {
    let id = ResourceId::new(PARK_RESOURCE).expect("constant id is valid");
    let method = MethodName::new("put_r").expect("constant method is valid");
    Resource::new(id)
        .with_capability(crate::resource::Capability::new(
            method,
            "r",
            f64::INFINITY,
            f64::INFINITY,
            comptest_model::Unit::Ohm,
        ))
        .with_capacity(usize::MAX)
}

impl<'a> Allocator<'a> {
    /// Creates an allocator with default options.
    pub fn new(stand: &'a TestStand) -> Self {
        Self::with_options(stand, AllocOptions::default())
    }

    /// Creates an allocator with explicit options.
    pub fn with_options(stand: &'a TestStand, options: AllocOptions) -> Self {
        Self {
            stand,
            options,
            park: park_resource(),
            held: BTreeMap::new(),
            load: BTreeMap::new(),
        }
    }

    /// The park pseudo-resource followed by the stand's real resources.
    fn all_resources(&self) -> impl Iterator<Item = &Resource> {
        std::iter::once(&self.park).chain(self.stand.resources().iter())
    }

    /// Resolves an id against park + stand.
    fn resource_by_id(&self, id: &ResourceId) -> &Resource {
        if *id == self.park.id {
            &self.park
        } else {
            self.stand.resource(id).expect("held resources exist")
        }
    }

    /// The resource currently holding a signal's stimulus, if any.
    pub fn holder(&self, signal: &SignalName) -> Option<&ResourceId> {
        self.held.get(signal).map(|h| &h.resource)
    }

    /// Current number of held stimulus assignments.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Assigns (or re-assigns) a stimulus to a resource.
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailure`] listing every resource with its rejection
    /// reason when no assignment (including reroutes) exists.  The allocator
    /// state is unchanged on failure.
    pub fn assign_put(
        &mut self,
        signal: &SignalName,
        step: Option<u32>,
        requirement: PutRequirement,
    ) -> Result<PutGrant, AllocFailure> {
        // Fast path: the signal's current resource also satisfies the new
        // requirement — keep it (a real stand just dials a new value).
        if let Some(held) = self.held.get(signal) {
            if let Ok(applied) = self.supports(self.resource_by_id(&held.resource), &requirement) {
                let resource = held.resource.clone();
                self.held.insert(
                    signal.clone(),
                    Held {
                        resource: resource.clone(),
                        requirement,
                    },
                );
                return Ok(PutGrant {
                    resource,
                    applied,
                    rerouted: false,
                });
            }
        }

        // Otherwise release the old hold (if any) and find a new resource,
        // possibly rerouting. Snapshot for rollback on failure.
        let snapshot_held = self.held.clone();
        let snapshot_load = self.load.clone();
        let had_previous = self.release(signal);

        let mut visited = BTreeSet::new();
        if let Some(resource) = self.augment(&requirement, &mut visited) {
            let applied = self
                .supports(self.resource_by_id(&resource), &requirement)
                .expect("augment only returns supporting resources");
            self.load
                .entry(resource.clone())
                .or_default()
                .push(signal.clone());
            self.held.insert(
                signal.clone(),
                Held {
                    resource: resource.clone(),
                    requirement,
                },
            );
            return Ok(PutGrant {
                resource,
                applied,
                rerouted: had_previous,
            });
        }

        // Failure: roll back and report per-resource reasons.
        self.held = snapshot_held;
        self.load = snapshot_load;
        let rejections = self.explain(&requirement);
        Err(AllocFailure {
            signal: signal.clone(),
            method: requirement.method,
            step,
            rejections,
        })
    }

    /// Routes a measurement. Does not mutate allocator state.
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailure`] when no capable, connected, range-covering
    /// resource exists that is not busy holding stimuli.
    pub fn route_get(
        &self,
        signal: &SignalName,
        step: Option<u32>,
        requirement: &GetRequirement,
    ) -> Result<ResourceId, AllocFailure> {
        let mut rejections = Vec::new();
        for resource in self.stand.resources() {
            match self.supports_get(resource, requirement) {
                Ok(()) => {
                    // A resource saturated with stimuli cannot double as a
                    // meter (a capacity-1 DVM holding a put is busy; a CAN
                    // interface transmits and receives concurrently).
                    let busy = self
                        .load
                        .get(&resource.id)
                        .map(|l| l.len() >= resource.capacity)
                        .unwrap_or(false);
                    if busy {
                        rejections.push((
                            resource.id.clone(),
                            RejectReason::Busy {
                                holding: self.load[&resource.id].clone(),
                            },
                        ));
                        continue;
                    }
                    return Ok(resource.id.clone());
                }
                Err(reason) => rejections.push((resource.id.clone(), reason)),
            }
        }
        Err(AllocFailure {
            signal: signal.clone(),
            method: requirement.method.clone(),
            step,
            rejections,
        })
    }

    /// Releases a signal's held stimulus. Returns true if one was held.
    pub fn release(&mut self, signal: &SignalName) -> bool {
        if let Some(held) = self.held.remove(signal) {
            if let Some(load) = self.load.get_mut(&held.resource) {
                load.retain(|s| s != signal);
            }
            true
        } else {
            false
        }
    }

    /// Kuhn-style augmenting search: returns a resource with free effective
    /// capacity for `requirement`, rerouting held signals if allowed.
    fn augment(
        &mut self,
        requirement: &PutRequirement,
        visited: &mut BTreeSet<ResourceId>,
    ) -> Option<ResourceId> {
        // Pass 1: any supporting resource with a free slot. Park comes
        // first: never tie up an instrument for something a bare pin does.
        let mut supporting: Vec<ResourceId> = Vec::new();
        let candidates: Vec<(ResourceId, usize)> = self
            .all_resources()
            .filter(|r| !visited.contains(&r.id))
            .filter(|r| self.supports(r, requirement).is_ok())
            .map(|r| (r.id.clone(), r.capacity))
            .collect();
        for (id, capacity) in candidates {
            supporting.push(id.clone());
            let used = self.load.get(&id).map(Vec::len).unwrap_or(0);
            if used < capacity {
                return Some(id);
            }
        }
        if !self.options.reroute {
            return None;
        }
        // Pass 2: try to evict one holder of a supporting resource.
        for rid in supporting {
            visited.insert(rid.clone());
            let holders = self.load.get(&rid).cloned().unwrap_or_default();
            for holder in holders {
                let holder_req = self.held[&holder].requirement.clone();
                if let Some(alternative) = self.augment(&holder_req, visited) {
                    // Move `holder` onto `alternative`.
                    if let Some(load) = self.load.get_mut(&rid) {
                        load.retain(|s| s != &holder);
                    }
                    self.load
                        .entry(alternative.clone())
                        .or_default()
                        .push(holder.clone());
                    self.held.insert(
                        holder,
                        Held {
                            resource: alternative,
                            requirement: holder_req,
                        },
                    );
                    return Some(rid);
                }
            }
        }
        None
    }

    /// Feasibility check for puts; returns the value that would be applied.
    fn supports(
        &self,
        resource: &Resource,
        req: &PutRequirement,
    ) -> Result<AppliedValue, RejectReason> {
        let cap = resource
            .capability(&req.method)
            .ok_or(RejectReason::NoCapability)?;
        // Park needs no crosspoints: an unconnected pin *is* the stimulus.
        if resource.id != self.park.id {
            for pin in &req.pins {
                if self.stand.matrix().connection(&resource.id, pin).is_none() {
                    return Err(RejectReason::NotConnected { pin: pin.clone() });
                }
            }
        }
        match req.nominal {
            AppliedValue::Bits(b) => Ok(AppliedValue::Bits(b)),
            AppliedValue::Num(nominal) => {
                let lo = req.window.0.max(cap.min);
                let hi = req.window.1.min(cap.max);
                if lo > hi {
                    return Err(RejectReason::ValueOutOfRange {
                        range: format!(
                            "[{}, {}]",
                            comptest_model::value::number_to_string(cap.min),
                            comptest_model::value::number_to_string(cap.max)
                        ),
                    });
                }
                let applied = nominal.clamp(lo, hi);
                let applied = if applied.is_finite() {
                    applied
                } else if applied > 0.0 {
                    // Nominal INF with an unbounded window on an unbounded
                    // resource: apply the open-circuit sentinel.
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                Ok(AppliedValue::Num(applied))
            }
        }
    }

    /// Feasibility check for gets.
    fn supports_get(&self, resource: &Resource, req: &GetRequirement) -> Result<(), RejectReason> {
        let cap = resource
            .capability(&req.method)
            .ok_or(RejectReason::NoCapability)?;
        for pin in &req.pins {
            if self.stand.matrix().connection(&resource.id, pin).is_none() {
                return Err(RejectReason::NotConnected { pin: pin.clone() });
            }
        }
        let (lo, hi) = req.bounds;
        let lo_ok = !lo.is_finite() || (lo >= cap.min && lo <= cap.max);
        let hi_ok = !hi.is_finite() || (hi >= cap.min && hi <= cap.max);
        if lo_ok && hi_ok {
            Ok(())
        } else {
            Err(RejectReason::ValueOutOfRange {
                range: format!(
                    "[{}, {}]",
                    comptest_model::value::number_to_string(cap.min),
                    comptest_model::value::number_to_string(cap.max)
                ),
            })
        }
    }

    /// Builds the rejection list for an error message.
    fn explain(&self, requirement: &PutRequirement) -> Vec<(ResourceId, RejectReason)> {
        let mut out = Vec::new();
        for resource in self.all_resources() {
            match self.supports(resource, requirement) {
                Err(reason) => out.push((resource.id.clone(), reason)),
                Ok(_) => out.push((
                    resource.id.clone(),
                    RejectReason::Busy {
                        holding: self.load.get(&resource.id).cloned().unwrap_or_default(),
                    },
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Capability;
    use comptest_model::{Env, Unit};

    fn rid(s: &str) -> ResourceId {
        ResourceId::new(s).unwrap()
    }

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn sig(s: &str) -> SignalName {
        SignalName::new(s).unwrap()
    }

    fn m(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    /// The paper's stand: one DVM on the lamp, two decades muxed onto four
    /// door-switch pins.
    fn paper_stand() -> TestStand {
        let mut stand = TestStand::new("paper", Env::with_ubatt(12.0))
            .with_resource(Resource::new(rid("Ress1")).with_capability(Capability::new(
                m("get_u"),
                "u",
                -60.0,
                60.0,
                Unit::Volt,
            )))
            .with_resource(Resource::new(rid("Ress2")).with_capability(Capability::new(
                m("put_r"),
                "r",
                0.0,
                1e6,
                Unit::Ohm,
            )))
            .with_resource(Resource::new(rid("Ress3")).with_capability(Capability::new(
                m("put_r"),
                "r",
                0.0,
                2e5,
                Unit::Ohm,
            )));
        stand = stand
            .with_connection(pid("Sw1.1"), rid("Ress1"), pid("INT_ILL_F"))
            .with_connection(pid("Sw1.2"), rid("Ress1"), pid("INT_ILL_R"));
        for (i, pin) in ["DS_FL", "DS_FR", "DS_RL", "DS_RR"].iter().enumerate() {
            stand = stand
                .with_connection(pid(&format!("Mx{}.2", i + 1)), rid("Ress2"), pid(pin))
                .with_connection(pid(&format!("Mx{}.1", i + 1)), rid("Ress3"), pid(pin));
        }
        stand
    }

    fn open_req(pin: &str) -> PutRequirement {
        PutRequirement {
            method: m("put_r"),
            nominal: AppliedValue::Num(0.0),
            window: (0.0, 2.0),
            pins: vec![pid(pin)],
        }
    }

    fn closed_req(pin: &str) -> PutRequirement {
        PutRequirement {
            method: m("put_r"),
            nominal: AppliedValue::Num(f64::INFINITY),
            window: (5000.0, f64::INFINITY),
            pins: vec![pid(pin)],
        }
    }

    #[test]
    fn two_door_switches_use_both_decades() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        let g1 = alloc
            .assign_put(&sig("DS_FL"), Some(0), open_req("DS_FL"))
            .unwrap();
        let g2 = alloc
            .assign_put(&sig("DS_FR"), Some(0), open_req("DS_FR"))
            .unwrap();
        assert_ne!(g1.resource, g2.resource, "decades are capacity-1");
        assert_eq!(alloc.held_count(), 2);
        // A third simultaneous *open* switch cannot be served (Park cannot
        // realise a low resistance).
        let err = alloc
            .assign_put(&sig("DS_RL"), Some(0), open_req("DS_RL"))
            .unwrap_err();
        assert_eq!(err.signal, sig("DS_RL"));
        let busy = err
            .rejections
            .iter()
            .filter(|(_, r)| matches!(r, RejectReason::Busy { .. }))
            .count();
        assert_eq!(busy, 2, "both decades busy: {err}");
    }

    #[test]
    fn closed_parks_the_pin() {
        // `Closed` (nominal INF, window up to INF) needs no instrument at
        // all: the pin is simply left unconnected. All four doors can be
        // closed although the stand has only two decades.
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        for pin in ["DS_FL", "DS_FR", "DS_RL", "DS_RR"] {
            let g = alloc
                .assign_put(&sig(pin), Some(0), closed_req(pin))
                .unwrap();
            assert_eq!(g.resource, PARK_RESOURCE, "{pin} parks");
            assert_eq!(g.applied, AppliedValue::Num(f64::INFINITY));
        }
        // Parked signals do not consume decades.
        assert!(alloc
            .assign_put(&sig("DS_FL"), Some(1), open_req("DS_FL"))
            .is_ok());
        assert!(alloc
            .assign_put(&sig("DS_FR"), Some(1), open_req("DS_FR"))
            .is_ok());
    }

    #[test]
    fn reassignment_keeps_resource() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        let g1 = alloc
            .assign_put(&sig("DS_FL"), Some(0), open_req("DS_FL"))
            .unwrap();
        let g2 = alloc
            .assign_put(&sig("DS_FL"), Some(1), closed_req("DS_FL"))
            .unwrap();
        assert_eq!(g1.resource, g2.resource);
        assert_eq!(alloc.held_count(), 1);
    }

    #[test]
    fn nominal_is_clamped_into_decade_range() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        // Nominal INF with a *finite* window ceiling: Park cannot serve it
        // (it only does a true open circuit), so a decade applies its
        // maximum within the window.
        let g = alloc
            .assign_put(
                &sig("DS_FL"),
                Some(0),
                PutRequirement {
                    method: m("put_r"),
                    nominal: AppliedValue::Num(f64::INFINITY),
                    window: (5000.0, 1e9),
                    pins: vec![pid("DS_FL")],
                },
            )
            .unwrap();
        assert_ne!(g.resource, PARK_RESOURCE);
        match g.applied {
            AppliedValue::Num(v) => assert!((5000.0..=1e6).contains(&v), "applied {v}"),
            _ => panic!("numeric expected"),
        }
    }

    #[test]
    fn rerouting_frees_the_right_decade() {
        // Ress3 (0..2e5) is the only decade that can serve a hypothetical
        // high-precision pin if we request a value beyond 2e5 on another pin
        // first. Construct: DS_FL takes Ress2 (value 5e5, only Ress2 can),
        // then DS_FR wants any decade; greedy would only find Ress3; then
        // DS_RL wants 5e5 — impossible. Instead: DS_FL takes value 100 on
        // Ress2 (first-fit), then DS_FR wants 5e5 (only Ress2 can do it) —
        // requires rerouting DS_FL onto Ress3.
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        let g1 = alloc
            .assign_put(
                &sig("DS_FL"),
                Some(0),
                PutRequirement {
                    method: m("put_r"),
                    nominal: AppliedValue::Num(100.0),
                    window: (90.0, 110.0),
                    pins: vec![pid("DS_FL")],
                },
            )
            .unwrap();
        assert_eq!(g1.resource, rid("Ress2"), "first-fit picks Ress2");
        let g2 = alloc
            .assign_put(
                &sig("DS_FR"),
                Some(0),
                PutRequirement {
                    method: m("put_r"),
                    nominal: AppliedValue::Num(5e5),
                    window: (4e5, 6e5),
                    pins: vec![pid("DS_FR")],
                },
            )
            .unwrap();
        assert_eq!(g2.resource, rid("Ress2"), "big value needs the 1 MΩ decade");
        assert_eq!(
            alloc.holder(&sig("DS_FL")),
            Some(&rid("Ress3")),
            "DS_FL rerouted"
        );
    }

    #[test]
    fn greedy_mode_fails_where_rerouting_succeeds() {
        let stand = paper_stand();
        let mut alloc = Allocator::with_options(&stand, AllocOptions { reroute: false });
        alloc
            .assign_put(
                &sig("DS_FL"),
                Some(0),
                PutRequirement {
                    method: m("put_r"),
                    nominal: AppliedValue::Num(100.0),
                    window: (90.0, 110.0),
                    pins: vec![pid("DS_FL")],
                },
            )
            .unwrap();
        let err = alloc
            .assign_put(
                &sig("DS_FR"),
                Some(0),
                PutRequirement {
                    method: m("put_r"),
                    nominal: AppliedValue::Num(5e5),
                    window: (4e5, 6e5),
                    pins: vec![pid("DS_FR")],
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("Ress2"));
    }

    #[test]
    fn failure_rolls_back_state() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        alloc
            .assign_put(&sig("DS_FL"), Some(0), open_req("DS_FL"))
            .unwrap();
        let before = alloc.held_count();
        // Unreachable pin.
        let err = alloc
            .assign_put(
                &sig("GHOST"),
                Some(1),
                PutRequirement {
                    method: m("put_r"),
                    nominal: AppliedValue::Num(0.0),
                    window: (0.0, 1.0),
                    pins: vec![pid("NOT_A_PIN")],
                },
            )
            .unwrap_err();
        assert_eq!(alloc.held_count(), before, "state unchanged after failure");
        assert!(err
            .rejections
            .iter()
            .any(|(_, r)| matches!(r, RejectReason::NotConnected { .. })));
        assert_eq!(alloc.holder(&sig("DS_FL")), Some(&rid("Ress2")));
    }

    #[test]
    fn get_routing_and_conflicts() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        let get = GetRequirement {
            method: m("get_u"),
            bounds: (8.4, 13.2),
            pins: vec![pid("INT_ILL_F"), pid("INT_ILL_R")],
        };
        let r = alloc.route_get(&sig("INT_ILL"), Some(0), &get).unwrap();
        assert_eq!(r, rid("Ress1"));
        // Out-of-range bounds are rejected.
        let too_high = GetRequirement {
            bounds: (100.0, 200.0),
            ..get.clone()
        };
        let err = alloc
            .route_get(&sig("INT_ILL"), Some(0), &too_high)
            .unwrap_err();
        assert!(err
            .rejections
            .iter()
            .any(|(_, r)| matches!(r, RejectReason::ValueOutOfRange { .. })));
        // Infinite bounds are fine as long as finite ones fit.
        let open_bound = GetRequirement {
            bounds: (8.4, f64::INFINITY),
            ..get.clone()
        };
        assert!(alloc
            .route_get(&sig("INT_ILL"), Some(0), &open_bound)
            .is_ok());
        // A decade holding a stimulus cannot serve as a meter even if it had
        // the capability; simulate by asking for put_r measurement… instead
        // verify the busy path via a custom stand below.
        alloc
            .assign_put(&sig("DS_FL"), Some(0), open_req("DS_FL"))
            .unwrap();
        let err = alloc
            .route_get(
                &sig("DS_FL"),
                Some(0),
                &GetRequirement {
                    method: m("get_u"),
                    bounds: (0.0, 1.0),
                    pins: vec![pid("DS_FL")],
                },
            )
            .unwrap_err();
        // Ress1 not connected to DS_FL; decades lack get_u.
        assert_eq!(err.rejections.len(), 3);
    }

    #[test]
    fn release_frees_capacity() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        alloc
            .assign_put(&sig("DS_FL"), Some(0), open_req("DS_FL"))
            .unwrap();
        alloc
            .assign_put(&sig("DS_FR"), Some(0), open_req("DS_FR"))
            .unwrap();
        assert!(alloc
            .assign_put(&sig("DS_RL"), Some(0), open_req("DS_RL"))
            .is_err());
        assert!(alloc.release(&sig("DS_FL")));
        assert!(!alloc.release(&sig("DS_FL")), "double release is a no-op");
        assert!(alloc
            .assign_put(&sig("DS_RL"), Some(0), open_req("DS_RL"))
            .is_ok());
    }

    #[test]
    fn can_interface_capacity() {
        let mut stand = TestStand::new("can", Env::with_ubatt(12.0));
        stand = stand
            .with_resource(
                Resource::new(rid("CanIf"))
                    .with_capability(Capability::new(
                        m("put_can"),
                        "data",
                        0.0,
                        0.0,
                        Unit::Dimensionless,
                    ))
                    .with_capacity(16),
            )
            .with_connection(pid("IfPort"), rid("CanIf"), pid("CAN0"));
        let mut alloc = Allocator::new(&stand);
        for i in 0..10 {
            let req = PutRequirement {
                method: m("put_can"),
                nominal: AppliedValue::Bits(BitPattern::parse("1B").unwrap()),
                window: (0.0, 0.0),
                pins: vec![pid("CAN0")],
            };
            alloc
                .assign_put(&sig(&format!("S{i}")), Some(0), req)
                .unwrap_or_else(|e| panic!("assignment {i} failed: {e}"));
        }
        assert_eq!(alloc.held_count(), 10);
    }

    #[test]
    fn failure_message_reads_like_the_paper() {
        let stand = paper_stand();
        let mut alloc = Allocator::new(&stand);
        alloc
            .assign_put(&sig("DS_FL"), Some(0), open_req("DS_FL"))
            .unwrap();
        alloc
            .assign_put(&sig("DS_FR"), Some(0), open_req("DS_FR"))
            .unwrap();
        let err = alloc
            .assign_put(&sig("DS_RL"), Some(2), open_req("DS_RL"))
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("step 2"), "{text}");
        assert!(
            text.contains("no resource for put_r on signal DS_RL"),
            "{text}"
        );
        assert!(text.contains("Ress1: method not supported"), "{text}");
        assert!(text.contains("busy"), "{text}");
    }
}
