//! Resources: instruments described by the methods they support.

use std::fmt;

use comptest_model::{MethodName, Unit};

// `define_name!` is internal to comptest-model, so stand-side identifiers get
// their own newtype with the same case-insensitive semantics.

/// The identifier of a resource (`Ress1`, `Dvm1`, `CanIf`, …).
#[derive(Debug, Clone)]
pub struct ResourceId(String);

impl ResourceId {
    /// Creates an id. Resource ids follow the same rules as other sheet
    /// names: non-empty ASCII `[A-Za-z0-9_.-]`.
    ///
    /// # Errors
    ///
    /// Returns [`comptest_model::InvalidNameError`] otherwise.
    pub fn new(s: impl Into<String>) -> Result<Self, comptest_model::InvalidNameError> {
        let s = s.into();
        // Reuse the model's validation by constructing a MethodName (same
        // charset) and discarding it.
        MethodName::new(&s)?;
        Ok(Self(s))
    }

    /// The id as written.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Canonical lowercase key.
    pub fn key(&self) -> String {
        self.0.to_ascii_lowercase()
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq for ResourceId {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}

impl Eq for ResourceId {}

impl PartialEq<str> for ResourceId {
    fn eq(&self, other: &str) -> bool {
        self.0.eq_ignore_ascii_case(other)
    }
}

impl PartialEq<&str> for ResourceId {
    fn eq(&self, other: &&str) -> bool {
        self.0.eq_ignore_ascii_case(other)
    }
}

impl std::hash::Hash for ResourceId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for b in self.0.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl PartialOrd for ResourceId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ResourceId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.0.bytes().map(|b| b.to_ascii_lowercase());
        let b = other.0.bytes().map(|b| b.to_ascii_lowercase());
        a.cmp(b)
    }
}

impl std::str::FromStr for ResourceId {
    type Err = comptest_model::InvalidNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ResourceId::new(s)
    }
}

/// One supported method with its valid parameter range — one row of the
/// paper's resource table (`Ress1  get_u  u  -60  60  V`).
#[derive(Debug, Clone, PartialEq)]
pub struct Capability {
    /// The supported method.
    pub method: MethodName,
    /// Principal attribute name.
    pub attribut: String,
    /// Smallest realisable / measurable value.
    pub min: f64,
    /// Largest realisable / measurable value (may be `INF`, e.g. a decade
    /// that can open-circuit).
    pub max: f64,
    /// The range's unit.
    pub unit: Unit,
}

impl Capability {
    /// Creates a capability.
    pub fn new(
        method: MethodName,
        attribut: impl Into<String>,
        min: f64,
        max: f64,
        unit: Unit,
    ) -> Self {
        Self {
            method,
            attribut: attribut.into(),
            min,
            max,
            unit,
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}: {}..{} {})",
            self.method,
            self.attribut,
            comptest_model::value::number_to_string(self.min),
            comptest_model::value::number_to_string(self.max),
            self.unit
        )
    }
}

/// An instrument of the test stand.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Identifier used by the connection matrix.
    pub id: ResourceId,
    /// Supported methods with ranges.
    pub capabilities: Vec<Capability>,
    /// How many signals the resource can serve simultaneously. Classic
    /// instruments (DVM, decade) have capacity 1; a CAN interface serves a
    /// whole bus worth of mapped signals.
    pub capacity: usize,
}

impl Resource {
    /// Creates a resource with capacity 1 and no capabilities.
    pub fn new(id: ResourceId) -> Self {
        Self {
            id,
            capabilities: Vec::new(),
            capacity: 1,
        }
    }

    /// Adds a capability (builder style).
    pub fn with_capability(mut self, cap: Capability) -> Self {
        self.capabilities.push(cap);
        self
    }

    /// Sets the capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// The capability for a method, if supported.
    pub fn capability(&self, method: &MethodName) -> Option<&Capability> {
        self.capabilities.iter().find(|c| &c.method == method)
    }

    /// True if the resource supports the method at all.
    pub fn supports(&self, method: &MethodName) -> bool {
        self.capability(method).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    #[test]
    fn resource_id_semantics() {
        let a = ResourceId::new("Ress1").unwrap();
        let b = ResourceId::new("RESS1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "ress1");
        assert_eq!(a.to_string(), "Ress1");
        assert!(ResourceId::new("bad id").is_err());
    }

    #[test]
    fn paper_resource_table() {
        // Ress1: DVM. Ress2/Ress3: resistor decades (normalised to put_r).
        let dvm = Resource::new(ResourceId::new("Ress1").unwrap())
            .with_capability(Capability::new(m("get_u"), "u", -60.0, 60.0, Unit::Volt));
        let decade1 = Resource::new(ResourceId::new("Ress2").unwrap())
            .with_capability(Capability::new(m("put_r"), "r", 0.0, 1.0e6, Unit::Ohm));
        assert!(dvm.supports(&m("get_u")));
        assert!(!dvm.supports(&m("put_r")));
        let cap = decade1.capability(&m("put_r")).unwrap();
        assert_eq!(cap.max, 1.0e6);
        assert_eq!(cap.to_string(), "put_r(r: 0..1000000 Ohm)");
        assert_eq!(dvm.capacity, 1);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let r = Resource::new(ResourceId::new("X").unwrap()).with_capacity(0);
        assert_eq!(r.capacity, 1);
    }
}
