//! The test stand: resources + matrix + environment.

use std::fmt;

use comptest_model::{Env, MethodName, PinId};

use crate::matrix::ConnectionMatrix;
use crate::resource::{Resource, ResourceId};

/// A complete test stand description.
///
/// Build one programmatically with the [`TestStand::with_resource`] /
/// [`TestStand::with_connection`] setters, or load a `.stand` file via
/// [`TestStand::load`] / [`TestStand::parse_str`] (see
/// [`crate::config`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TestStand {
    name: String,
    env: Env,
    resources: Vec<Resource>,
    matrix: ConnectionMatrix,
}

impl TestStand {
    /// Creates an empty stand with the given name and environment.
    ///
    /// The environment must contain every variable generated scripts use;
    /// in practice that is at least `ubatt`.
    pub fn new(name: impl Into<String>, env: Env) -> TestStand {
        TestStand {
            name: name.into(),
            env,
            resources: Vec::new(),
            matrix: ConnectionMatrix::new(),
        }
    }

    /// Adds a resource (builder style).
    ///
    /// # Panics
    ///
    /// Panics if a resource with the same id already exists — stand
    /// descriptions merge capability rows per id before construction.
    pub fn with_resource(mut self, resource: Resource) -> TestStand {
        assert!(
            self.resource(&resource.id).is_none(),
            "duplicate resource id {}",
            resource.id
        );
        self.resources.push(resource);
        self
    }

    /// Adds a matrix crosspoint (builder style).
    pub fn with_connection(mut self, point: PinId, resource: ResourceId, pin: PinId) -> TestStand {
        self.matrix.add(point, resource, pin);
        self
    }

    /// The stand's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stand's expression environment (`ubatt`, …).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Mutable access to the environment (e.g. sweep `ubatt` in a bench).
    pub fn env_mut(&mut self) -> &mut Env {
        &mut self.env
    }

    /// All resources.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Looks a resource up by id.
    pub fn resource(&self, id: &ResourceId) -> Option<&Resource> {
        self.resources.iter().find(|r| &r.id == id)
    }

    /// The connection matrix.
    pub fn matrix(&self) -> &ConnectionMatrix {
        &self.matrix
    }

    /// Mutable matrix access (used by the config parser).
    pub(crate) fn matrix_mut(&mut self) -> &mut ConnectionMatrix {
        &mut self.matrix
    }

    /// Pushes a resource (used by the config parser).
    pub(crate) fn push_resource(&mut self, resource: Resource) {
        self.resources.push(resource);
    }

    /// All resources that support `method` at all (before range/connection
    /// filtering) — handy for diagnostics.
    pub fn resources_supporting(&self, method: &MethodName) -> Vec<&Resource> {
        self.resources
            .iter()
            .filter(|r| r.supports(method))
            .collect()
    }
}

impl fmt::Display for TestStand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stand {} ({} resources, {} crosspoints)",
            self.name,
            self.resources.len(),
            self.matrix.len()
        )?;
        for r in &self.resources {
            write!(f, "  {}", r.id)?;
            if r.capacity != 1 {
                write!(f, " (capacity {})", r.capacity)?;
            }
            for c in &r.capabilities {
                write!(f, " {c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Capability;
    use comptest_model::Unit;

    fn rid(s: &str) -> ResourceId {
        ResourceId::new(s).unwrap()
    }

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn m(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    fn demo_stand() -> TestStand {
        TestStand::new("demo", Env::with_ubatt(12.0))
            .with_resource(Resource::new(rid("Dvm1")).with_capability(Capability::new(
                m("get_u"),
                "u",
                -60.0,
                60.0,
                Unit::Volt,
            )))
            .with_resource(Resource::new(rid("Dec1")).with_capability(Capability::new(
                m("put_r"),
                "r",
                0.0,
                1e6,
                Unit::Ohm,
            )))
            .with_connection(pid("Sw1.1"), rid("Dvm1"), pid("LAMP_F"))
            .with_connection(pid("Mx1.1"), rid("Dec1"), pid("DS_FL"))
    }

    #[test]
    fn lookups() {
        let s = demo_stand();
        assert_eq!(s.name(), "demo");
        assert_eq!(s.env().get("UBATT"), Some(12.0));
        assert!(s.resource(&rid("dvm1")).is_some());
        assert!(s.resource(&rid("nope")).is_none());
        assert_eq!(s.resources_supporting(&m("put_r")).len(), 1);
        assert_eq!(s.resources_supporting(&m("put_u")).len(), 0);
        assert_eq!(s.matrix().len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate resource id")]
    fn duplicate_resource_panics() {
        let s = demo_stand();
        let _ = s.with_resource(Resource::new(rid("DVM1")));
    }

    #[test]
    fn display_summarises() {
        let text = demo_stand().to_string();
        assert!(text.contains("stand demo"));
        assert!(text.contains("get_u"));
    }
}
