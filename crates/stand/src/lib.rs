//! Simulated test stands and the test-script interpreter.
//!
//! Section 4 of the paper: "Besides the test script, the test stand needs
//! information about its own ressources and in which way these ressources
//! can be connected to the DUT. Ressources in this context are described by
//! the methods that are supported by them and the valid range for all
//! parameters. … For each method to be carried out, the test stand searches
//! an approriate ressource, that can be connected to the signal pin. If this
//! is not possible an error message is generated."
//!
//! This crate implements exactly that:
//!
//! * [`Resource`] — an instrument described by method capabilities with
//!   parameter ranges (the paper's resource table);
//! * [`ConnectionMatrix`] — switch (`Sw i.j`) and multiplexer (`Mx i.j`)
//!   crosspoints between resources and DUT pins (the paper's matrix table);
//! * [`TestStand`] — resources + matrix + environment (`ubatt`, …), loadable
//!   from a `.stand` description file;
//! * [`Allocator`] — the "searches an appropriate resource" step, as
//!   incremental bipartite matching with optional rerouting of held
//!   assignments;
//! * [`plan`] — the interpreter front half: a parsed
//!   [`TestScript`](comptest_script::TestScript) becomes an
//!   [`ExecutionPlan`] of concrete per-step instrument actions, or a
//!   diagnostic explaining per resource why the script cannot run here.
//!
//! # Example
//!
//! ```
//! use comptest_stand::TestStand;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stand = TestStand::parse_str("a.stand", "\
//! [stand]
//! name = demo
//! ubatt = 12.0
//!
//! [resources]
//! id,    method, attribut, min, max, unit
//! Dvm1,  get_u,  u,        -60, 60,  V
//!
//! [matrix]
//! point, resource, pin
//! Sw1.1, Dvm1,     LAMP_F
//! Sw1.2, Dvm1,     LAMP_R
//! ")?;
//! assert_eq!(stand.resources().len(), 1);
//! assert_eq!(stand.env().get("ubatt"), Some(12.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod error;
pub mod interpreter;
pub mod matrix;
pub mod resource;
pub mod stand;
pub mod writer;

pub use alloc::{AllocFailure, AllocOptions, Allocator, RejectReason, PARK_RESOURCE};
pub use error::StandError;
pub use interpreter::{
    plan, plan_with, Action, AppliedValue, ExecutionPlan, GetCheck, PlannedStep,
};
pub use matrix::{ConnectionMatrix, PointId};
pub use resource::{Capability, Resource, ResourceId};
pub use stand::TestStand;
pub use writer::write_stand;
