//! Writing stand descriptions back to `.stand` text.
//!
//! Stands evolve (a supplier adds an instrument to run an OEM suite);
//! programmatic edits need serialisation back into the exchange format.

use comptest_model::value::number_to_string;

use crate::stand::TestStand;

/// Serialises a stand into `.stand` description text.
///
/// `parse(write(stand))` reproduces the stand exactly (environment,
/// resources with merged capabilities and capacities, matrix order).
pub fn write_stand(stand: &TestStand) -> String {
    let mut out = String::from("[stand]\n");
    if !stand.name().is_empty() {
        out.push_str(&format!("name = {}\n", stand.name()));
    }
    for (var, value) in stand.env().iter() {
        out.push_str(&format!("{var} = {}\n", number_to_string(value)));
    }

    out.push_str("\n[resources]\n");
    out.push_str("id, method, attribut, min, max, unit, capacity\n");
    for resource in stand.resources() {
        for (i, cap) in resource.capabilities.iter().enumerate() {
            // Capacity is a per-resource property; write it on the first row.
            let capacity = if i == 0 && resource.capacity != 1 {
                resource.capacity.to_string()
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{}, {}, {}, {}, {}, {}, {}\n",
                resource.id,
                cap.method,
                cap.attribut,
                number_to_string(cap.min),
                number_to_string(cap.max),
                cap.unit,
                capacity,
            ));
        }
    }

    out.push_str("\n[matrix]\n");
    out.push_str("point, resource, pin\n");
    for c in stand.matrix().connections() {
        out.push_str(&format!("{}, {}, {}\n", c.point, c.resource, c.pin));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asset(name: &str) -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../assets")
            .join(name)
    }

    #[test]
    fn bundled_stands_roundtrip() {
        for file in ["stand_a.stand", "stand_b.stand", "stand_minimal.stand"] {
            let original = TestStand::load(asset(file)).unwrap();
            let written = write_stand(&original);
            let reparsed = TestStand::parse_str(file, &written)
                .unwrap_or_else(|e| panic!("{file} rewrite must parse: {e}\n{written}"));
            assert_eq!(reparsed, original, "{file} roundtrip:\n{written}");
        }
    }

    #[test]
    fn programmatic_upgrade_roundtrips() {
        // The supplier-extends-their-stand workflow: add a DVM crosspoint so
        // an OEM suite becomes runnable, then save the description.
        use crate::resource::{Capability, Resource, ResourceId};
        use comptest_model::{PinId, Unit};

        let original = TestStand::load(asset("stand_minimal.stand")).unwrap();
        let upgraded = original
            .with_resource(
                Resource::new(ResourceId::new("NewDvm").unwrap()).with_capability(Capability::new(
                    comptest_model::MethodName::new("get_u").unwrap(),
                    "u",
                    -60.0,
                    60.0,
                    Unit::Volt,
                )),
            )
            .with_connection(
                PinId::new("N1").unwrap(),
                ResourceId::new("NewDvm").unwrap(),
                PinId::new("INT_ILL_F").unwrap(),
            );
        let written = write_stand(&upgraded);
        let reparsed = TestStand::parse_str("upgraded.stand", &written).unwrap();
        assert_eq!(reparsed, upgraded);
        assert_eq!(reparsed.resources().len(), 2);
    }
}
