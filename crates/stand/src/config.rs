//! Parsing `.stand` test-stand descriptions.
//!
//! The format mirrors the paper's two Section-4 tables plus an environment
//! block:
//!
//! ```text
//! [stand]
//! name = HIL-A
//! ubatt = 12.0
//!
//! [resources]
//! id,    method, attribut, min, max,     unit, capacity
//! Ress1, get_u,  u,        -60, 60,      V,
//! Ress2, put_r,  r,        0,   1.00E+06, Ohm,
//! Ress3, put_r,  r,        0,   2.00E+05, Ohm,
//!
//! [matrix]
//! point, resource, pin
//! Sw1.1, Ress1,    INT_ILL_F
//! Sw1.2, Ress1,    INT_ILL_R
//! Mx1.2, Ress2,    DS_FL
//! ```
//!
//! Rows with the same resource `id` merge into one multi-capability
//! resource.  Every `[stand]` key other than `name` must be numeric and
//! becomes an expression-environment variable (`ubatt`, `temp`, …).

use std::fs;
use std::path::Path;

use comptest_model::value::parse_number;
use comptest_model::{Env, MethodName, PinId, Unit};
use comptest_sheets::csv::parse_csv;
use comptest_sheets::sections::{parse_key_values, split_sections};
use comptest_sheets::table::Table;

use crate::error::StandError;
use crate::resource::{Capability, Resource, ResourceId};
use crate::stand::TestStand;

impl TestStand {
    /// Loads a `.stand` file. The stand name defaults to the file stem.
    ///
    /// # Errors
    ///
    /// Returns [`StandError::Config`] for I/O or parse problems.
    pub fn load(path: impl AsRef<Path>) -> Result<TestStand, StandError> {
        let path = path.as_ref();
        let file = path.display().to_string();
        let text = fs::read_to_string(path)
            .map_err(|e| StandError::config(&file, 0, format!("cannot read stand: {e}")))?;
        let mut stand = Self::parse_str(&file, &text)?;
        if stand.name().is_empty() {
            if let Some(stem) = path.file_stem() {
                stand = TestStand::renamed(stand, stem.to_string_lossy().into_owned());
            }
        }
        Ok(stand)
    }

    /// Parses a stand description from text; `file` is used in diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`StandError::Config`] on malformed sections, rows or values.
    pub fn parse_str(file: &str, text: &str) -> Result<TestStand, StandError> {
        let sections = split_sections(file, text)
            .map_err(|e| StandError::config(&e.file, e.line, e.message))?;

        let mut name = String::new();
        let mut env = Env::new();
        let mut stand: Option<TestStand> = None;
        let mut saw_resources = false;

        for section in &sections {
            match section.header.to_ascii_lowercase().as_str() {
                "stand" => {
                    parse_key_values(file, section, |line, key, value| {
                        match key.to_ascii_lowercase().as_str() {
                            "name" => {
                                name = value.to_owned();
                                Ok(())
                            }
                            _ => {
                                let v = parse_number(value).map_err(|e| {
                                    comptest_sheets::SheetError::new(
                                        file,
                                        line,
                                        format!("[stand] {key}: {e}"),
                                    )
                                })?;
                                env.set(key, v);
                                Ok(())
                            }
                        }
                    })
                    .map_err(|e| StandError::config(&e.file, e.line, e.message))?;
                }
                "resources" => {
                    let mut s = TestStand::new(name.clone(), env.clone());
                    parse_resources(file, section, &mut s)?;
                    saw_resources = true;
                    stand = Some(match stand {
                        // [stand] may come after [resources]; keep matrix if set.
                        Some(old) => merge_sections(old, s),
                        None => s,
                    });
                }
                "matrix" => {
                    let s = stand.get_or_insert_with(|| TestStand::new(name.clone(), env.clone()));
                    parse_matrix(file, section, s)?;
                }
                other => {
                    return Err(StandError::config(
                        file,
                        section.header_line,
                        format!("unknown section [{other}]"),
                    ))
                }
            }
        }

        if !saw_resources {
            return Err(StandError::config(file, 0, "missing [resources] section"));
        }
        let stand = stand.expect("resources section seen");
        // [stand] metadata may have been parsed after construction.
        let mut stand = TestStand::renamed(stand, name);
        *stand.env_mut() = env;
        Ok(stand)
    }

    /// Returns the stand with a different name (configs are assembled in
    /// stages).
    pub(crate) fn renamed(stand: TestStand, name: String) -> TestStand {
        let mut s = TestStand::new(name, stand.env().clone());
        for r in stand.resources() {
            s.push_resource(r.clone());
        }
        for c in stand.matrix().connections() {
            s.matrix_mut()
                .add(c.point.clone(), c.resource.clone(), c.pin.clone());
        }
        s
    }
}

fn merge_sections(mut base: TestStand, extra: TestStand) -> TestStand {
    for r in extra.resources() {
        base.push_resource(r.clone());
    }
    for c in extra.matrix().connections() {
        base.matrix_mut()
            .add(c.point.clone(), c.resource.clone(), c.pin.clone());
    }
    base
}

fn parse_resources(
    file: &str,
    section: &comptest_sheets::sections::Section,
    stand: &mut TestStand,
) -> Result<(), StandError> {
    let records = parse_csv(file, section.body_first_line, &section.body)
        .map_err(|e| StandError::config(&e.file, e.line, e.message))?;
    let table = Table::from_records(file, "resources", records)
        .map_err(|e| StandError::config(&e.file, e.line, e.message))?;
    for required in ["id", "method", "attribut", "min", "max"] {
        if table.col(required).is_none() {
            return Err(StandError::config(
                file,
                section.header_line,
                format!("[resources] is missing the `{required}` column"),
            ));
        }
    }

    let mut resources: Vec<Resource> = Vec::new();
    for row in &table.rows {
        let line = row.line;
        let id = ResourceId::new(table.cell(row, "id"))
            .map_err(|e| StandError::config(file, line, e.to_string()))?;
        let method = MethodName::new(table.cell(row, "method"))
            .map_err(|e| StandError::config(file, line, e.to_string()))?;
        let attribut = table.cell(row, "attribut").to_owned();
        if attribut.is_empty() {
            return Err(StandError::config(file, line, "missing attribut"));
        }
        // CAN-style capabilities have no meaningful range; allow empty cells.
        let min_cell = table.cell(row, "min");
        let max_cell = table.cell(row, "max");
        let min = if min_cell.is_empty() {
            0.0
        } else {
            parse_number(min_cell).map_err(|e| StandError::config(file, line, e.to_string()))?
        };
        let max = if max_cell.is_empty() {
            0.0
        } else {
            parse_number(max_cell).map_err(|e| StandError::config(file, line, e.to_string()))?
        };
        if min > max {
            return Err(StandError::config(
                file,
                line,
                format!("resource {id}: min {min} exceeds max {max}"),
            ));
        }
        let unit_cell = table.cell(row, "unit");
        let unit =
            Unit::parse(unit_cell).map_err(|e| StandError::config(file, line, e.to_string()))?;
        let capability = Capability::new(method, attribut, min, max, unit);

        let capacity_cell = table.cell(row, "capacity");
        let capacity: Option<usize> = if capacity_cell.is_empty() {
            None
        } else {
            Some(capacity_cell.parse().map_err(|_| {
                StandError::config(file, line, format!("bad capacity {capacity_cell:?}"))
            })?)
        };

        match resources.iter_mut().find(|r| r.id == id) {
            Some(r) => {
                r.capabilities.push(capability);
                if let Some(c) = capacity {
                    r.capacity = c.max(1);
                }
            }
            None => {
                let mut r = Resource::new(id).with_capability(capability);
                if let Some(c) = capacity {
                    r = r.with_capacity(c);
                }
                resources.push(r);
            }
        }
    }
    for r in resources {
        stand.push_resource(r);
    }
    Ok(())
}

fn parse_matrix(
    file: &str,
    section: &comptest_sheets::sections::Section,
    stand: &mut TestStand,
) -> Result<(), StandError> {
    let records = parse_csv(file, section.body_first_line, &section.body)
        .map_err(|e| StandError::config(&e.file, e.line, e.message))?;
    let table = Table::from_records(file, "matrix", records)
        .map_err(|e| StandError::config(&e.file, e.line, e.message))?;
    for required in ["point", "resource", "pin"] {
        if table.col(required).is_none() {
            return Err(StandError::config(
                file,
                section.header_line,
                format!("[matrix] is missing the `{required}` column"),
            ));
        }
    }
    for row in &table.rows {
        let line = row.line;
        let point = PinId::new(table.cell(row, "point"))
            .map_err(|e| StandError::config(file, line, e.to_string()))?;
        let resource = ResourceId::new(table.cell(row, "resource"))
            .map_err(|e| StandError::config(file, line, e.to_string()))?;
        let pin = PinId::new(table.cell(row, "pin"))
            .map_err(|e| StandError::config(file, line, e.to_string()))?;
        if stand.resource(&resource).is_none() {
            return Err(StandError::config(
                file,
                line,
                format!("[matrix] references unknown resource {resource}"),
            ));
        }
        stand.matrix_mut().add(point, resource, pin);
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's stand A, verbatim from Section 4 (with the get_r → put_r
    /// normalisation and the CAN interface documented in DESIGN.md).
    pub(crate) const STAND_A: &str = "\
[stand]
name = HIL-A
ubatt = 12.0

[resources]
id,    method,  attribut, min, max,      unit, capacity
Ress1, get_u,   u,        -60, 60,       V,
Ress2, put_r,   r,        0,   1.00E+06, Ohm,
Ress3, put_r,   r,        0,   2.00E+05, Ohm,
Can1,  put_can, data,     ,    ,         ,     16
Can1,  get_can, data,     ,    ,         ,

[matrix]
point, resource, pin
Sw1.1, Ress1,    INT_ILL_F
Sw1.2, Ress1,    INT_ILL_R
Mx1.2, Ress2,    DS_FL
Mx2.2, Ress2,    DS_FR
Mx3.2, Ress2,    DS_RL
Mx4.2, Ress2,    DS_RR
Mx1.1, Ress3,    DS_FL
Mx2.1, Ress3,    DS_FR
Mx3.1, Ress3,    DS_RL
Mx4.1, Ress3,    DS_RR
Port1, Can1,     CAN0
";

    #[test]
    fn parses_paper_stand() {
        let stand = TestStand::parse_str("a.stand", STAND_A).unwrap();
        assert_eq!(stand.name(), "HIL-A");
        assert_eq!(stand.env().get("ubatt"), Some(12.0));
        assert_eq!(stand.resources().len(), 4);
        let ress2 = stand.resource(&ResourceId::new("Ress2").unwrap()).unwrap();
        assert_eq!(ress2.capabilities[0].max, 1.0e6);
        let can = stand.resource(&ResourceId::new("Can1").unwrap()).unwrap();
        assert_eq!(can.capacity, 16);
        assert_eq!(can.capabilities.len(), 2, "rows merged per id");
        assert_eq!(stand.matrix().len(), 11);
    }

    #[test]
    fn scientific_notation_with_decimal_comma() {
        // The paper writes 1,00E+06 — quoted so the comma survives CSV.
        let text = STAND_A.replace("1.00E+06", "\"1,00E+06\"");
        let stand = TestStand::parse_str("a.stand", &text).unwrap();
        let ress2 = stand.resource(&ResourceId::new("Ress2").unwrap()).unwrap();
        assert_eq!(ress2.capabilities[0].max, 1.0e6);
    }

    #[test]
    fn missing_resources_section() {
        let err = TestStand::parse_str("x", "[stand]\nname = a\n").unwrap_err();
        assert!(err.to_string().contains("[resources]"));
    }

    #[test]
    fn unknown_section_rejected() {
        let err = TestStand::parse_str("x", "[gadgets]\nid\n").unwrap_err();
        assert!(err.to_string().contains("unknown section"));
    }

    #[test]
    fn matrix_referencing_unknown_resource() {
        let text = "\
[resources]
id, method, attribut, min, max, unit
R1, put_r, r, 0, 10, Ohm

[matrix]
point, resource, pin
P1, GHOST, A
";
        let err = TestStand::parse_str("x", text).unwrap_err();
        assert!(err.to_string().contains("GHOST"));
    }

    #[test]
    fn bad_cells_report_lines() {
        let text = "\
[resources]
id, method, attribut, min, max, unit
R1, put_r, r, 10, 0, Ohm
";
        let err = TestStand::parse_str("x", text).unwrap_err();
        assert!(err.to_string().contains("x:3"), "{err}");
        assert!(err.to_string().contains("exceeds"));

        let text = "\
[resources]
id, method, attribut, min, max, unit, capacity
R1, put_r, r, 0, 10, Ohm, many
";
        assert!(TestStand::parse_str("x", text)
            .unwrap_err()
            .to_string()
            .contains("capacity"));

        let text = "[stand]\nubatt = high\n[resources]\nid, method, attribut, min, max\nR1, put_r, r, 0, 1\n";
        assert!(TestStand::parse_str("x", text)
            .unwrap_err()
            .to_string()
            .contains("ubatt"));
    }

    #[test]
    fn stand_section_after_resources_still_applies() {
        let text = "\
[resources]
id, method, attribut, min, max, unit
R1, put_r, r, 0, 10, Ohm

[stand]
name = late
ubatt = 13.8
";
        let stand = TestStand::parse_str("x", text).unwrap();
        assert_eq!(stand.name(), "late");
        assert_eq!(stand.env().get("ubatt"), Some(13.8));
        assert_eq!(stand.resources().len(), 1);
    }

    #[test]
    fn load_from_disk_defaults_name_to_stem() {
        let dir = std::env::temp_dir().join("comptest_stand_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_rig.stand");
        std::fs::write(&path, STAND_A.replace("name = HIL-A\n", "")).unwrap();
        let stand = TestStand::load(&path).unwrap();
        assert_eq!(stand.name(), "bench_rig");
        assert!(TestStand::load(dir.join("missing.stand")).is_err());
    }
}
