//! The interpreter front half: script → concrete per-step instrument plan.
//!
//! Given a parsed [`TestScript`] and a [`TestStand`], [`plan`] resolves every
//! signal statement: expression attributes are evaluated against the stand's
//! environment, and a resource is allocated (the paper's "searches an
//! approriate ressource").  The result is an [`ExecutionPlan`] the execution
//! engine (in `comptest-core`) replays against a simulated DUT; planning
//! alone is also the portability check between stands.

use comptest_model::{
    AttrKind, MethodDirection, MethodName, MethodRegistry, PinId, SignalKind, SignalName, SimTime,
    StatusBound,
};
use comptest_script::{AttrValue, Statement, TestScript};

pub use crate::alloc::AppliedValue;
use crate::alloc::{AllocOptions, Allocator, GetRequirement, PutRequirement};
use crate::error::StandError;
use crate::stand::TestStand;

/// The pseudo-pin every CAN-mapped signal connects through: a stand's CAN
/// interface must have a matrix crosspoint to `CAN0`.
pub const CAN_ATTACHMENT: &str = "CAN0";

/// One concrete instrument action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Apply a stimulus.
    Apply {
        /// Target signal.
        signal: SignalName,
        /// Physical realisation of the signal (pins / CAN field).
        kind: SignalKind,
        /// The allocated resource.
        resource: crate::resource::ResourceId,
        /// The method executed by the resource.
        method: MethodName,
        /// The value the resource applies.
        value: AppliedValue,
        /// Settle time before the stimulus counts as applied.
        settle: SimTime,
    },
    /// Measure and compare at step end.
    Check(GetCheck),
}

/// A measurement with acceptance bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct GetCheck {
    /// Target signal.
    pub signal: SignalName,
    /// Physical realisation of the signal.
    pub kind: SignalKind,
    /// The routed measurement resource.
    pub resource: crate::resource::ResourceId,
    /// The measurement method.
    pub method: MethodName,
    /// Acceptance bound (numeric interval or bit pattern).
    pub bound: StatusBound,
    /// Settle time before sampling may begin.
    pub settle: SimTime,
    /// Optional monitoring window (`D2`); zero = sample once at step end.
    pub window: SimTime,
}

/// One planned step.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// Step number from the script.
    pub nr: u32,
    /// Step duration.
    pub dt: SimTime,
    /// Actions in statement order (applies before checks is *not* enforced
    /// here; the engine applies all stimuli first, then schedules checks).
    pub actions: Vec<Action>,
}

/// A fully resolved execution plan for one script on one stand.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// The script's test name.
    pub script_name: String,
    /// The stand it was planned for.
    pub stand_name: String,
    /// Initial stimuli (the signal sheet's "status before start").
    pub init: Vec<Action>,
    /// The timed steps.
    pub steps: Vec<PlannedStep>,
}

impl ExecutionPlan {
    /// Total planned duration.
    pub fn duration(&self) -> SimTime {
        self.steps
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc.saturating_add(s.dt))
    }

    /// Count of stimulus actions across init and all steps.
    pub fn apply_count(&self) -> usize {
        self.init
            .iter()
            .chain(self.steps.iter().flat_map(|s| s.actions.iter()))
            .filter(|a| matches!(a, Action::Apply { .. }))
            .count()
    }

    /// Count of measurement actions across all steps.
    pub fn check_count(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| s.actions.iter())
            .filter(|a| matches!(a, Action::Check(_)))
            .count()
    }
}

/// Plans a script on a stand with default allocation options.
///
/// # Errors
///
/// Returns [`StandError`] when a statement cannot be resolved (missing
/// variable, malformed attributes, unknown signal) or no resource can be
/// allocated — the paper's portability error message.
pub fn plan(script: &TestScript, stand: &TestStand) -> Result<ExecutionPlan, StandError> {
    plan_with(
        script,
        stand,
        AllocOptions::default(),
        &MethodRegistry::builtin(),
    )
}

/// Plans with explicit allocator options and method registry.
///
/// # Errors
///
/// See [`plan`].
pub fn plan_with(
    script: &TestScript,
    stand: &TestStand,
    options: AllocOptions,
    registry: &MethodRegistry,
) -> Result<ExecutionPlan, StandError> {
    let mut allocator = Allocator::with_options(stand, options);
    let mut init = Vec::new();
    for stmt in &script.init {
        init.push(resolve_statement(
            script,
            stand,
            registry,
            &mut allocator,
            None,
            stmt,
        )?);
    }
    let mut steps = Vec::new();
    for step in &script.steps {
        let mut actions = Vec::new();
        for stmt in &step.statements {
            actions.push(resolve_statement(
                script,
                stand,
                registry,
                &mut allocator,
                Some(step.nr),
                stmt,
            )?);
        }
        steps.push(PlannedStep {
            nr: step.nr,
            dt: step.dt,
            actions,
        });
    }
    Ok(ExecutionPlan {
        script_name: script.name.clone(),
        stand_name: stand.name().to_owned(),
        init,
        steps,
    })
}

fn resolve_statement(
    script: &TestScript,
    stand: &TestStand,
    registry: &MethodRegistry,
    allocator: &mut Allocator<'_>,
    step: Option<u32>,
    stmt: &Statement,
) -> Result<Action, StandError> {
    let stmt_err = |message: String| StandError::Statement {
        step,
        statement: stmt.to_string(),
        message,
    };

    let def = script
        .signal(&stmt.signal)
        .ok_or_else(|| StandError::UnknownSignal {
            signal: stmt.signal.to_string(),
        })?;
    let spec = registry
        .get(&stmt.method)
        .ok_or_else(|| stmt_err(format!("unknown method {}", stmt.method)))?;

    let pins: Vec<PinId> = match &def.kind {
        SignalKind::Pin { pins } => pins.clone(),
        SignalKind::Can { .. } => {
            vec![PinId::new(CAN_ATTACHMENT).expect("constant pin id is valid")]
        }
    };

    let eval_attr = |name: &str| -> Result<Option<f64>, StandError> {
        match stmt.attr(name) {
            None => Ok(None),
            Some(AttrValue::Expr(e)) => e
                .eval(stand.env())
                .map(Some)
                .map_err(|err| stmt_err(format!("attribute {name}: {err}"))),
            Some(AttrValue::Bits(_)) => Err(stmt_err(format!("attribute {name} must be numeric"))),
        }
    };

    let settle = SimTime::from_secs_f64(eval_attr("settle")?.unwrap_or(0.0));
    let window = SimTime::from_secs_f64(eval_attr("window")?.unwrap_or(0.0));

    match spec.direction {
        MethodDirection::Put => {
            let (nominal, realization) = match spec.attr_kind {
                AttrKind::Bits => {
                    let bits = stmt
                        .attr(&spec.attribut)
                        .and_then(AttrValue::as_bits)
                        .ok_or_else(|| {
                            stmt_err(format!("missing bit-pattern attribute {}", spec.attribut))
                        })?;
                    (AppliedValue::Bits(bits), (0.0, 0.0))
                }
                AttrKind::Numeric(_) => {
                    let nominal = eval_attr(&spec.attribut)?
                        .ok_or_else(|| stmt_err(format!("missing attribute {}", spec.attribut)))?;
                    let lo = eval_attr(&format!("{}_min", spec.attribut))?.unwrap_or(nominal);
                    let hi = eval_attr(&format!("{}_max", spec.attribut))?.unwrap_or(nominal);
                    if lo > hi {
                        return Err(stmt_err(format!(
                            "realization window [{lo}, {hi}] is inverted"
                        )));
                    }
                    (AppliedValue::Num(nominal), (lo, hi))
                }
            };
            let grant = allocator.assign_put(
                &stmt.signal,
                step,
                PutRequirement {
                    method: stmt.method.clone(),
                    nominal,
                    window: realization,
                    pins,
                },
            )?;
            Ok(Action::Apply {
                signal: stmt.signal.clone(),
                kind: def.kind.clone(),
                resource: grant.resource,
                method: stmt.method.clone(),
                value: grant.applied,
                settle,
            })
        }
        MethodDirection::Get => {
            let bound = match spec.attr_kind {
                AttrKind::Bits => {
                    let bits = stmt
                        .attr(&spec.attribut)
                        .and_then(AttrValue::as_bits)
                        .ok_or_else(|| {
                            stmt_err(format!("missing bit-pattern attribute {}", spec.attribut))
                        })?;
                    StatusBound::Bits(bits)
                }
                AttrKind::Numeric(_) => {
                    let lo =
                        eval_attr(&format!("{}_min", spec.attribut))?.unwrap_or(f64::NEG_INFINITY);
                    let hi = eval_attr(&format!("{}_max", spec.attribut))?.unwrap_or(f64::INFINITY);
                    if lo > hi {
                        return Err(stmt_err(format!(
                            "acceptance interval [{lo}, {hi}] is inverted"
                        )));
                    }
                    StatusBound::Numeric {
                        nominal: None,
                        lo,
                        hi,
                    }
                }
            };
            let bounds = match bound {
                StatusBound::Numeric { lo, hi, .. } => (lo, hi),
                StatusBound::Bits(_) => (0.0, 0.0),
            };
            let resource = allocator.route_get(
                &stmt.signal,
                step,
                &GetRequirement {
                    method: stmt.method.clone(),
                    bounds,
                    pins,
                },
            )?;
            Ok(Action::Check(GetCheck {
                signal: stmt.signal.clone(),
                kind: def.kind.clone(),
                resource,
                method: stmt.method.clone(),
                bound,
                settle,
                window,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_model::{SignalDef, SignalDirection};

    fn sig(s: &str) -> SignalName {
        SignalName::new(s).unwrap()
    }

    fn met(s: &str) -> MethodName {
        MethodName::new(s).unwrap()
    }

    fn stand_a() -> TestStand {
        TestStand::parse_str("a.stand", crate::config::tests::STAND_A).unwrap()
    }

    /// A script exercising put_r, put_can and get_u, paper-shaped.
    fn script() -> TestScript {
        let xml = r#"<?xml version="1.0"?>
<testscript name="night" suite="interior_light" version="1">
  <signals>
    <signal name="ds_fl" kind="pin:DS_FL" direction="input"/>
    <signal name="night" kind="can:0x2A0:0:1" direction="input"/>
    <signal name="int_ill" kind="pin:INT_ILL_F/INT_ILL_R" direction="output"/>
  </signals>
  <init>
    <signal name="ds_fl"><put_r r="INF" r_min="5000" r_max="INF"/></signal>
  </init>
  <step nr="0" dt="0.5">
    <signal name="ds_fl"><put_r r="0" r_min="0" r_max="2" settle="0.01"/></signal>
    <signal name="night"><put_can data="1B"/></signal>
    <signal name="int_ill"><get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/></signal>
  </step>
</testscript>"#;
        TestScript::parse_xml(xml).unwrap()
    }

    #[test]
    fn plans_on_paper_stand() {
        let stand = stand_a();
        let plan = plan(&script(), &stand).unwrap();
        assert_eq!(plan.stand_name, "HIL-A");
        assert_eq!(plan.init.len(), 1);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.apply_count(), 3);
        assert_eq!(plan.check_count(), 1);

        // The get_u bounds were evaluated against ubatt = 12.
        let Action::Check(check) = &plan.steps[0].actions[2] else {
            panic!("expected check");
        };
        match check.bound {
            StatusBound::Numeric { lo, hi, .. } => {
                assert!((lo - 8.4).abs() < 1e-9);
                assert!((hi - 13.2).abs() < 1e-9);
            }
            _ => panic!("numeric bound expected"),
        }
        assert_eq!(check.resource, "Ress1");

        // The put_r settle time came through.
        let Action::Apply { settle, value, .. } = &plan.steps[0].actions[0] else {
            panic!("expected apply");
        };
        assert_eq!(*settle, SimTime::from_millis(10));
        assert_eq!(*value, AppliedValue::Num(0.0));

        // The CAN stimulus routed to the CAN interface.
        let Action::Apply { resource, .. } = &plan.steps[0].actions[1] else {
            panic!("expected apply");
        };
        assert_eq!(*resource, "Can1");
    }

    #[test]
    fn missing_variable_is_a_statement_error() {
        let mut stand = stand_a();
        // A stand that forgot to define ubatt.
        *stand.env_mut() = comptest_model::Env::new();
        let err = plan(&script(), &stand).unwrap_err();
        match err {
            StandError::Statement { message, .. } => assert!(message.contains("ubatt")),
            other => panic!("expected Statement error, got {other}"),
        }
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut s = script();
        s.steps[0]
            .statements
            .push(Statement::new(sig("ghost"), met("put_r")));
        let err = plan(&s, &stand_a()).unwrap_err();
        assert!(matches!(err, StandError::UnknownSignal { .. }));
    }

    #[test]
    fn unknown_method_rejected() {
        let mut s = script();
        s.steps[0]
            .statements
            .push(Statement::new(sig("ds_fl"), met("put_q")));
        let err = plan(&s, &stand_a()).unwrap_err();
        assert!(err.to_string().contains("unknown method"));
    }

    #[test]
    fn missing_attribute_rejected() {
        let mut s = script();
        s.steps[0]
            .statements
            .push(Statement::new(sig("ds_fl"), met("put_r")));
        let err = plan(&s, &stand_a()).unwrap_err();
        assert!(err.to_string().contains("missing attribute r"));
    }

    #[test]
    fn inverted_bounds_rejected() {
        let mut s = script();
        s.steps[0].statements.push(
            Statement::new(sig("int_ill"), met("get_u"))
                .with_attr("u_max", AttrValue::parse("1").unwrap())
                .with_attr("u_min", AttrValue::parse("2").unwrap()),
        );
        let err = plan(&s, &stand_a()).unwrap_err();
        assert!(err.to_string().contains("inverted"));
    }

    #[test]
    fn allocation_failure_propagates() {
        // Three simultaneous door switches exceed the two decades.
        let mut s = script();
        s.steps[0].statements = vec![Statement::new(sig("ds_fl"), met("put_r"))
            .with_attr("r", AttrValue::parse("0").unwrap())
            .with_attr("r_min", AttrValue::parse("0").unwrap())
            .with_attr("r_max", AttrValue::parse("2").unwrap())];
        s.signals.push(SignalDef::new(
            sig("ds_fr"),
            SignalKind::parse("pin:DS_FR").unwrap(),
            SignalDirection::Input,
        ));
        s.signals.push(SignalDef::new(
            sig("ds_rl"),
            SignalKind::parse("pin:DS_RL").unwrap(),
            SignalDirection::Input,
        ));
        for name in ["ds_fr", "ds_rl"] {
            s.steps[0].statements.push(
                Statement::new(sig(name), met("put_r"))
                    .with_attr("r", AttrValue::parse("0").unwrap())
                    .with_attr("r_min", AttrValue::parse("0").unwrap())
                    .with_attr("r_max", AttrValue::parse("2").unwrap()),
            );
        }
        let err = plan(&s, &stand_a()).unwrap_err();
        assert!(matches!(err, StandError::Allocation(_)), "{err}");
        assert!(err.to_string().contains("no resource"));
    }

    #[test]
    fn plan_metrics() {
        let p = plan(&script(), &stand_a()).unwrap();
        assert_eq!(p.duration(), SimTime::from_millis(500));
        assert_eq!(p.script_name, "night");
    }
}
