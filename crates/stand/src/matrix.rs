//! The connection matrix: which resource can reach which DUT pin, and
//! through which switch or multiplexer crosspoint.

use std::collections::BTreeMap;
use std::fmt;

use comptest_model::PinId;

use crate::resource::ResourceId;

/// The identifier of a connection point: a switch (`Sw1.1`) or a
/// multiplexer crosspoint (`Mx3.2`). The name is uninterpreted — exclusivity
/// comes from resource capacities, exactly as in the paper's figure where
/// each decade owns one mux column.
pub type PointId = comptest_model::PinId;

/// One crosspoint: closing `point` connects `resource` to `pin`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// The switch/mux crosspoint.
    pub point: PointId,
    /// The resource side.
    pub resource: ResourceId,
    /// The DUT pin side.
    pub pin: PinId,
}

/// The full matrix (the paper's second Section-4 table).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnectionMatrix {
    connections: Vec<Connection>,
    by_pin: BTreeMap<PinId, Vec<usize>>,
    by_resource: BTreeMap<ResourceId, Vec<usize>>,
}

impl ConnectionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a crosspoint. Duplicate (resource, pin) pairs are allowed and
    /// treated as alternative paths; the first is used.
    pub fn add(&mut self, point: PointId, resource: ResourceId, pin: PinId) {
        let idx = self.connections.len();
        self.by_pin.entry(pin.clone()).or_default().push(idx);
        self.by_resource
            .entry(resource.clone())
            .or_default()
            .push(idx);
        self.connections.push(Connection {
            point,
            resource,
            pin,
        });
    }

    /// All crosspoints.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// The resources that can reach a pin.
    pub fn resources_for_pin(&self, pin: &PinId) -> Vec<&ResourceId> {
        self.by_pin
            .get(pin)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| &self.connections[i].resource)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The pins a resource can reach.
    pub fn pins_for_resource(&self, resource: &ResourceId) -> Vec<&PinId> {
        self.by_resource
            .get(resource)
            .map(|idxs| idxs.iter().map(|&i| &self.connections[i].pin).collect())
            .unwrap_or_default()
    }

    /// The crosspoint connecting `resource` to `pin`, if any.
    pub fn connection(&self, resource: &ResourceId, pin: &PinId) -> Option<&Connection> {
        self.by_resource.get(resource).and_then(|idxs| {
            idxs.iter()
                .map(|&i| &self.connections[i])
                .find(|c| &c.pin == pin)
        })
    }

    /// True if `resource` can reach **all** of `pins` (e.g. both terminals
    /// of a differential measurement).
    pub fn connects_all(&self, resource: &ResourceId, pins: &[PinId]) -> bool {
        pins.iter().all(|p| self.connection(resource, p).is_some())
    }

    /// Number of crosspoints.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True if the matrix has no crosspoints.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }
}

impl fmt::Display for ConnectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.connections {
            writeln!(f, "{} : {} -> {}", c.point, c.resource, c.pin)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn rid(s: &str) -> ResourceId {
        ResourceId::new(s).unwrap()
    }

    /// The paper's matrix: DVM on switches, two decades on mux columns.
    pub(crate) fn paper_matrix() -> ConnectionMatrix {
        let mut m = ConnectionMatrix::new();
        m.add(pid("Sw1.1"), rid("Ress1"), pid("INT_ILL_F"));
        m.add(pid("Sw1.2"), rid("Ress1"), pid("INT_ILL_R"));
        for (i, pin) in ["DS_FL", "DS_FR", "DS_RL", "DS_RR"].iter().enumerate() {
            m.add(pid(&format!("Mx{}.2", i + 1)), rid("Ress2"), pid(pin));
            m.add(pid(&format!("Mx{}.1", i + 1)), rid("Ress3"), pid(pin));
        }
        m
    }

    #[test]
    fn paper_matrix_queries() {
        let m = paper_matrix();
        assert_eq!(m.len(), 10);
        let rs = m.resources_for_pin(&pid("DS_FL"));
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().any(|r| **r == "Ress2"));
        assert!(rs.iter().any(|r| **r == "Ress3"));
        assert_eq!(m.resources_for_pin(&pid("INT_ILL_F")), vec![&rid("Ress1")]);
        assert!(m.resources_for_pin(&pid("GHOST")).is_empty());
        assert_eq!(m.pins_for_resource(&rid("Ress2")).len(), 4);
    }

    #[test]
    fn differential_connection() {
        let m = paper_matrix();
        // The DVM reaches both lamp terminals…
        assert!(m.connects_all(&rid("Ress1"), &[pid("INT_ILL_F"), pid("INT_ILL_R")]));
        // …but the decades don't reach the lamp at all.
        assert!(!m.connects_all(&rid("Ress2"), &[pid("INT_ILL_F")]));
        // Empty pin set is trivially connected.
        assert!(m.connects_all(&rid("Ress1"), &[]));
    }

    #[test]
    fn connection_lookup_returns_point() {
        let m = paper_matrix();
        let c = m.connection(&rid("Ress3"), &pid("DS_RR")).unwrap();
        assert_eq!(c.point, pid("Mx4.1"));
        assert!(m.connection(&rid("Ress1"), &pid("DS_FL")).is_none());
    }

    #[test]
    fn case_insensitive_lookups() {
        let m = paper_matrix();
        assert!(!m.resources_for_pin(&pid("ds_fl")).is_empty());
        assert!(!m.pins_for_resource(&rid("RESS2")).is_empty());
    }

    #[test]
    fn display_lists_crosspoints() {
        let m = paper_matrix();
        let text = m.to_string();
        assert!(text.contains("Sw1.1 : Ress1 -> INT_ILL_F"));
        assert_eq!(text.lines().count(), 10);
    }
}
