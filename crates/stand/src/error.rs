//! Stand-level errors.

use std::error::Error;
use std::fmt;

use crate::alloc::AllocFailure;

/// Any error raised while loading a stand or interpreting a script on it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StandError {
    /// A `.stand` description failed to parse.
    Config {
        /// File name.
        file: String,
        /// 1-based line (0 = file-wide).
        line: usize,
        /// Description.
        message: String,
    },
    /// A script statement could not be resolved against this stand
    /// (expression referenced a variable the stand does not provide, or the
    /// statement is malformed for its method).
    Statement {
        /// Step number (`None` for the init block).
        step: Option<u32>,
        /// The offending signal statement, rendered.
        statement: String,
        /// Description.
        message: String,
    },
    /// No appropriate, connectable resource exists — the paper's
    /// "error message".
    Allocation(AllocFailure),
    /// The script references a signal without an embedded definition.
    UnknownSignal {
        /// The signal name as written in the script.
        signal: String,
    },
}

impl StandError {
    pub(crate) fn config(file: &str, line: usize, message: impl Into<String>) -> Self {
        StandError::Config {
            file: file.to_owned(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for StandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StandError::Config {
                file,
                line,
                message,
            } => {
                if *line == 0 {
                    write!(f, "{file}: {message}")
                } else {
                    write!(f, "{file}:{line}: {message}")
                }
            }
            StandError::Statement {
                step,
                statement,
                message,
            } => match step {
                Some(nr) => write!(f, "step {nr}: {message} in {statement}"),
                None => write!(f, "init: {message} in {statement}"),
            },
            StandError::Allocation(failure) => failure.fmt(f),
            StandError::UnknownSignal { signal } => {
                write!(
                    f,
                    "script uses signal {signal} but embeds no definition for it"
                )
            }
        }
    }
}

impl Error for StandError {}

impl From<AllocFailure> for StandError {
    fn from(f: AllocFailure) -> Self {
        StandError::Allocation(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StandError::config("a.stand", 3, "bad row");
        assert_eq!(e.to_string(), "a.stand:3: bad row");
        let e = StandError::config("a.stand", 0, "empty");
        assert_eq!(e.to_string(), "a.stand: empty");
        let e = StandError::UnknownSignal {
            signal: "ghost".into(),
        };
        assert!(e.to_string().contains("ghost"));
    }
}
