//! Splitting a sectioned text file (`[header]` + body lines) into sections.
//!
//! Shared by the `.cts` workbook loader and the `.stand` test-stand
//! descriptions in `comptest-stand`.

use crate::diagnostics::SheetError;

/// One `[header]` section with its body text and source positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// The text between the brackets, trimmed.
    pub header: String,
    /// 1-based line of the `[header]` line.
    pub header_line: usize,
    /// 1-based line of the first body line.
    pub body_first_line: usize,
    /// The body text (everything until the next section), with newlines.
    pub body: String,
}

/// Splits sectioned text. Comments (`#`) and blank lines may precede the
/// first section; any other leading content is an error.
///
/// # Errors
///
/// Returns [`SheetError`] on unterminated headers, stray leading content, or
/// a file without any section.
pub fn split_sections(file: &str, text: &str) -> Result<Vec<Section>, SheetError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let t = line.trim();
        if let Some(header) = t.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return Err(SheetError::new(
                    file,
                    line_no,
                    "unterminated [section] header",
                ));
            };
            sections.push(Section {
                header: header.trim().to_owned(),
                header_line: line_no,
                body_first_line: line_no + 1,
                body: String::new(),
            });
        } else if let Some(current) = sections.last_mut() {
            current.body.push_str(line);
            current.body.push('\n');
        } else if !t.is_empty() && !t.starts_with('#') {
            return Err(SheetError::new(
                file,
                line_no,
                "content before the first [section] header",
            ));
        }
    }
    if sections.is_empty() {
        return Err(SheetError::file_wide(file, "no [section] headers found"));
    }
    Ok(sections)
}

/// Parses a `key = value` body (used by `[suite]` / `[stand]` sections),
/// calling `visit(line_no, key, value)` for every pair.
///
/// # Errors
///
/// Returns [`SheetError`] for lines without `=`, or whatever `visit`
/// returns.
pub fn parse_key_values<F>(file: &str, section: &Section, mut visit: F) -> Result<(), SheetError>
where
    F: FnMut(usize, &str, &str) -> Result<(), SheetError>,
{
    for (i, line) in section.body.lines().enumerate() {
        let line_no = section.body_first_line + i;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let Some((key, value)) = t.split_once('=') else {
            return Err(SheetError::new(
                file,
                line_no,
                format!("expected `key = value` in [{}]", section.header),
            ));
        };
        visit(line_no, key.trim(), value.trim())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_with_positions() {
        let text = "# intro\n\n[a]\nrow1\n\n[b c]\nrow2\nrow3\n";
        let sections = split_sections("f", text).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].header, "a");
        assert_eq!(sections[0].header_line, 3);
        assert_eq!(sections[0].body, "row1\n\n");
        assert_eq!(sections[1].header, "b c");
        assert_eq!(sections[1].body_first_line, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(split_sections("f", "stray\n[a]\n").is_err());
        assert!(split_sections("f", "[unterminated\n").is_err());
        assert!(split_sections("f", "").is_err());
    }

    #[test]
    fn key_values() {
        let sections = split_sections("f", "[s]\nname = x\n# note\nubatt = 12\n").unwrap();
        let mut pairs = Vec::new();
        parse_key_values("f", &sections[0], |line, k, v| {
            pairs.push((line, k.to_owned(), v.to_owned()));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            pairs,
            vec![
                (2, "name".to_owned(), "x".to_owned()),
                (4, "ubatt".to_owned(), "12".to_owned())
            ]
        );
        let bad = split_sections("f", "[s]\nnope\n").unwrap();
        assert!(parse_key_values("f", &bad[0], |_, _, _| Ok(())).is_err());
    }
}
