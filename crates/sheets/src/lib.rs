//! Plain-text workbook front end for component-test definitions.
//!
//! The paper uses Microsoft Excel purely for familiarity: "we choose Excel as
//! input tool for the test definition … in order to allow usage of the tool
//! chain to all involved engineers without specific training."  This crate
//! substitutes a plain-text workbook format, **`.cts`** (component test
//! sheet), that reproduces the three sheet types one-to-one:
//!
//! ```text
//! [suite]
//! name = interior_light
//!
//! [signals]
//! name,    kind,                    direction, init,   description
//! DS_FL,   pin:DS_FL,               input,     Closed, door switch front left
//! INT_ILL, pin:INT_ILL_F/INT_ILL_R, output,    ,       interior illumination
//!
//! [status]
//! status, method, attribut, var,   nom, min, max, d1
//! Open,   put_r,  r,        ,      0,   0,   2,   0.01
//! Ho,     get_u,  u,        UBATT, 1,   0.7, 1.1,
//!
//! [test interior_illumination]
//! step, dt,  DS_FL, INT_ILL, remarks
//! 0,    0,5, Open,  Ho,      night light on
//! ```
//!
//! Cells follow the paper's conventions: decimal comma or point, `INF`,
//! bit patterns such as `0001B`.  Lines starting with `#` are comments.
//! Note that a decimal comma inside an unquoted cell would split the cell, so
//! numeric cells with fractions are either quoted (`"0,5"`) or — as the
//! examples in this repository do — written with a decimal point; both are
//! accepted (see [`comptest_model::value::parse_number`]).
//!
//! # Example
//!
//! ```
//! use comptest_sheets::Workbook;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "\
//! [signals]
//! name, kind, direction
//! D1, pin:D1, input
//!
//! [status]
//! status, method, attribut, nom, min, max
//! On, put_u, u, 12, 11, 13
//!
//! [test smoke]
//! step, dt, D1
//! 0, 0.5, On
//! ";
//! let parsed = Workbook::parse_str("smoke.cts", text)?;
//! assert_eq!(parsed.suite.tests.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod diagnostics;
pub mod sections;
pub mod signal_sheet;
pub mod status_sheet;
pub mod table;
pub mod test_sheet;
pub mod workbook;
pub mod writer;

pub use diagnostics::{SheetError, SheetWarning};
pub use table::Table;
pub use workbook::{ParsedWorkbook, Workbook};
pub use writer::write_workbook;
