//! Parser for the `[status]` section (the paper's status definition sheet).

use comptest_model::value::{parse_number, Value};
use comptest_model::{MethodName, StatusDef, StatusName, StatusTable};

use crate::diagnostics::{SheetError, SheetWarning};
use crate::table::Table;

/// Converts a `[status]` table into a [`StatusTable`].
///
/// Columns: `status`, `method`, `attribut` (required); `var`, `nom`, `min`,
/// `max`, `d1`, `d2`, `d3` (optional).  `attribute` is accepted as an alias
/// for `attribut` (the paper uses the German spelling).
///
/// A `nom` cell containing a bit pattern (`0001B`) makes the row a
/// bit-pattern status; `min`/`max` must then be empty.
///
/// # Errors
///
/// Returns [`SheetError`] at the offending row for malformed cells.
pub fn parse_statuses(
    file: &str,
    table: &Table,
    warnings: &mut Vec<SheetWarning>,
) -> Result<StatusTable, SheetError> {
    if table.col("status").is_none() {
        return Err(SheetError::file_wide(
            file,
            "[status] is missing the `status` column",
        ));
    }
    for required in ["method"] {
        if table.col(required).is_none() {
            return Err(SheetError::file_wide(
                file,
                format!("[status] is missing the `{required}` column"),
            ));
        }
    }
    let attr_col = if table.col("attribut").is_some() {
        "attribut"
    } else if table.col("attribute").is_some() {
        "attribute"
    } else {
        return Err(SheetError::file_wide(
            file,
            "[status] is missing the `attribut` column",
        ));
    };

    let mut out = StatusTable::new();
    for row in &table.rows {
        let name = StatusName::new(table.require(file, row, "status")?)
            .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;
        let method = MethodName::new(table.require(file, row, "method")?)
            .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;
        let attribut = table.require(file, row, attr_col)?.to_owned();

        let var_cell = table.cell(row, "var");
        // The paper heads this column `var (x)`; normalisation turns that
        // into `var_(x)`, so check that alias too.
        let var_cell = if var_cell.is_empty() {
            table.cell(row, "var (x)")
        } else {
            var_cell
        };

        let nom_cell = table.cell(row, "nom");
        let min_cell = table.cell(row, "min");
        let max_cell = table.cell(row, "max");

        let mut def = match Value::parse_cell(nom_cell) {
            Value::Bits(bits) => {
                if !min_cell.is_empty() || !max_cell.is_empty() {
                    return Err(SheetError::new(
                        file,
                        row.line,
                        format!("status {name}: bit-pattern statuses take no min/max"),
                    ));
                }
                if !var_cell.is_empty() {
                    return Err(SheetError::new(
                        file,
                        row.line,
                        format!("status {name}: bit-pattern statuses take no scaling var"),
                    ));
                }
                StatusDef::bits(name.clone(), method, attribut, bits)
            }
            _ => {
                let nom = parse_opt_number(file, row.line, &name, "nom", nom_cell)?;
                let min = parse_opt_number(file, row.line, &name, "min", min_cell)?;
                let max = parse_opt_number(file, row.line, &name, "max", max_cell)?;
                let mut def = StatusDef {
                    name: name.clone(),
                    method,
                    attribut,
                    var: None,
                    nom,
                    min,
                    max,
                    bits: None,
                    d1: None,
                    d2: None,
                    d3: None,
                };
                if !var_cell.is_empty() {
                    def = def.with_var(var_cell);
                }
                def
            }
        };

        def.d1 = parse_opt_number(file, row.line, &name, "d1", table.cell(row, "d1"))?;
        def.d2 = parse_opt_number(file, row.line, &name, "d2", table.cell(row, "d2"))?;
        def.d3 = parse_opt_number(file, row.line, &name, "d3", table.cell(row, "d3"))?;

        if out.insert(def).is_some() {
            warnings.push(SheetWarning::new(
                file,
                row.line,
                format!("status {name} redefined; the later row wins"),
            ));
        }
    }
    Ok(out)
}

fn parse_opt_number(
    file: &str,
    line: usize,
    status: &StatusName,
    col: &str,
    cell: &str,
) -> Result<Option<f64>, SheetError> {
    if cell.is_empty() {
        return Ok(None);
    }
    parse_number(cell)
        .map(Some)
        .map_err(|e| SheetError::new(file, line, format!("status {status}, column `{col}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;
    use comptest_model::{Env, StatusBound};

    fn table(text: &str) -> Table {
        let recs = parse_csv("t.cts", 1, text).unwrap();
        Table::from_records("t.cts", "status", recs).unwrap()
    }

    /// The paper's status table, normalised per DESIGN.md.
    fn paper_table() -> Table {
        table(
            "status, method, attribut, var, nom, min, max, d1\n\
             Off,    put_can, data,    ,    0001B, , , \n\
             Open,   put_r,   r,       ,    0,    0,    2,    0.01\n\
             Closed, put_r,   r,       ,    INF,  5000, INF,  0.01\n\
             0,      put_can, data,    ,    0B, , , \n\
             1,      put_can, data,    ,    1B, , , \n\
             Lo,     get_u,   u,       UBATT, 0,  0,    0.3, \n\
             Ho,     get_u,   u,       UBATT, 1,  0.7,  1.1, ",
        )
    }

    #[test]
    fn parses_paper_status_table() {
        let mut warnings = Vec::new();
        let t = parse_statuses("t.cts", &paper_table(), &mut warnings).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(t.len(), 7);

        let ho = t.get_str("ho").unwrap();
        assert_eq!(ho.var.as_deref(), Some("ubatt"));
        let r = ho.resolve(&Env::with_ubatt(12.0)).unwrap();
        match r.bound {
            StatusBound::Numeric { lo, hi, .. } => {
                assert!((lo - 8.4).abs() < 1e-9);
                assert!((hi - 13.2).abs() < 1e-9);
            }
            _ => panic!("Ho must be numeric"),
        }

        let off = t.get_str("off").unwrap();
        assert_eq!(off.bits.unwrap().to_string(), "0001B");

        let closed = t.get_str("closed").unwrap();
        assert_eq!(closed.nom, Some(f64::INFINITY));
        assert_eq!(closed.min, Some(5000.0));
        assert_eq!(closed.max, Some(f64::INFINITY));
        assert_eq!(closed.d1, Some(0.01));
    }

    #[test]
    fn numeric_statuses_named_by_digits() {
        let t = parse_statuses("t.cts", &paper_table(), &mut Vec::new()).unwrap();
        // `0` and `1` are bit statuses despite their numeric-looking names.
        assert!(t.get_str("0").unwrap().bits.is_some());
        assert!(t.get_str("1").unwrap().bits.is_some());
    }

    #[test]
    fn bits_with_minmax_rejected() {
        let t = table("status, method, attribut, nom, min, max\nX, put_can, data, 1B, 0, 1");
        let err = parse_statuses("t.cts", &t, &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("no min/max"));
    }

    #[test]
    fn bits_with_var_rejected() {
        let t = table("status, method, attribut, var, nom\nX, put_can, data, UBATT, 1B");
        let err = parse_statuses("t.cts", &t, &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("no scaling var"));
    }

    #[test]
    fn bad_number_reports_row() {
        let t = table("status, method, attribut, nom\nX, put_u, u, twelve");
        let err = parse_statuses("t.cts", &t, &mut Vec::new()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("`nom`"));
    }

    #[test]
    fn redefinition_warns() {
        let t = table("status, method, attribut, nom\nX, put_u, u, 1\nx, put_u, u, 2");
        let mut warnings = Vec::new();
        let table = parse_statuses("t.cts", &t, &mut warnings).unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(table.get_str("X").unwrap().nom, Some(2.0));
    }

    #[test]
    fn attribute_alias_accepted() {
        let t = table("status, method, attribute, nom\nX, put_u, u, 1");
        let parsed = parse_statuses("t.cts", &t, &mut Vec::new()).unwrap();
        assert_eq!(parsed.get_str("X").unwrap().attribut, "u");
    }

    #[test]
    fn missing_columns_rejected() {
        let t = table("status, attribut\nX, u");
        assert!(parse_statuses("t.cts", &t, &mut Vec::new())
            .unwrap_err()
            .message
            .contains("`method`"));
        let t = table("status, method\nX, put_u");
        assert!(parse_statuses("t.cts", &t, &mut Vec::new())
            .unwrap_err()
            .message
            .contains("`attribut`"));
    }
}
