//! Parser for `[test …]` sections (the paper's test definition sheets).
//!
//! Every column that is not `step`, `dt` or `remarks` names a signal; a
//! non-empty cell assigns that signal a status for the step, exactly like the
//! paper's table for the interior illumination.

use comptest_model::{SignalName, StatusName, TestCase, TestStep};

use crate::diagnostics::SheetError;
use crate::table::{normalize_header, Table};

const STEP_ALIASES: [&str; 3] = ["step", "test_step", "nr"];
const DT_ALIASES: [&str; 4] = ["dt", "δt", "delta_t", "deltat"];
const REMARK_ALIASES: [&str; 3] = ["remarks", "remark", "comment"];

fn is_alias(header: &str, aliases: &[&str]) -> bool {
    let k = normalize_header(header);
    aliases.iter().any(|a| *a == k)
}

/// Converts a `[test name]` table into a [`TestCase`].
///
/// # Errors
///
/// Returns [`SheetError`] when the `dt` column is missing, a duration cell
/// is malformed, a step number does not parse, or a signal column header /
/// status cell is not a valid name.
pub fn parse_test(file: &str, table: &Table, name: &str) -> Result<TestCase, SheetError> {
    let dt_col = table
        .header
        .iter()
        .position(|h| is_alias(h, &DT_ALIASES))
        .ok_or_else(|| {
            SheetError::file_wide(file, format!("[test {name}] is missing the `dt` column"))
        })?;
    let step_col = table.header.iter().position(|h| is_alias(h, &STEP_ALIASES));
    let remark_col = table
        .header
        .iter()
        .position(|h| is_alias(h, &REMARK_ALIASES));

    // Everything else is a signal column.
    let mut signal_cols: Vec<(usize, SignalName)> = Vec::new();
    for (i, h) in table.header.iter().enumerate() {
        if i == dt_col || Some(i) == step_col || Some(i) == remark_col {
            continue;
        }
        if h.trim().is_empty() {
            continue;
        }
        let sig = SignalName::new(h.trim()).map_err(|e| {
            SheetError::file_wide(file, format!("[test {name}] bad signal column header: {e}"))
        })?;
        signal_cols.push((i, sig));
    }
    if signal_cols.is_empty() {
        return Err(SheetError::file_wide(
            file,
            format!("[test {name}] has no signal columns"),
        ));
    }

    let mut case = TestCase::new(name);
    for (row_idx, row) in table.rows.iter().enumerate() {
        let nr = match step_col {
            Some(c) if !row.field(c).is_empty() => {
                row.field(c).trim().parse::<u32>().map_err(|_| {
                    SheetError::new(
                        file,
                        row.line,
                        format!("bad step number {:?}", row.field(c)),
                    )
                })?
            }
            _ => row_idx as u32,
        };
        let dt_cell = row.field(dt_col);
        if dt_cell.is_empty() {
            return Err(SheetError::new(
                file,
                row.line,
                format!("[test {name}] step {nr}: missing dt"),
            ));
        }
        let dt = dt_cell
            .parse()
            .map_err(|e| SheetError::new(file, row.line, format!("step {nr}: {e}")))?;

        let mut step = TestStep::new(nr, dt);
        for (col, sig) in &signal_cols {
            let cell = row.field(*col);
            if cell.is_empty() {
                continue;
            }
            let status = StatusName::new(cell)
                .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;
            step = step.assign(sig.clone(), status);
        }
        if let Some(c) = remark_col {
            step = step.with_remark(row.field(c));
        }
        case.steps.push(step);
    }
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;
    use comptest_model::SimTime;

    fn table(text: &str) -> Table {
        let recs = parse_csv("t.cts", 1, text).unwrap();
        Table::from_records("t.cts", "test t", recs).unwrap()
    }

    /// The paper's 10-step interior-illumination test table.
    fn paper_test() -> Table {
        table(
            "test step, dt, IGN_ST, DS_FL, DS_FR, NIGHT, INT_ILL, remarks\n\
             0, 0.5, Off, Closed, Closed, 0, Lo, day: no interior\n\
             1, 0.5, , Open,   ,      ,  Lo, \"illumination, if\"\n\
             2, 0.5, , Closed, Open,  ,  Lo, doors are open\n\
             3, 0.5, , ,       Closed,,  Lo,\n\
             4, 0.5, , Open,   ,      1, Ho, night: interior\n\
             5, 0.5, , Closed, ,      ,  Lo, \"illumination on,\"\n\
             6, 0.5, , ,       Open,  ,  Ho, if doors are open\n\
             7, 280, , ,       ,      ,  Ho,\n\
             8, 25,  , ,       ,      ,  Lo, illumination\n\
             9, 0.5, , ,       Closed,,  Lo, off after 300s",
        )
    }

    #[test]
    fn parses_paper_test_sheet() {
        let tc = parse_test("t.cts", &paper_test(), "interior_illumination").unwrap();
        assert_eq!(tc.steps.len(), 10);
        assert_eq!(tc.steps[0].assignments.len(), 5);
        assert_eq!(tc.steps[7].nr, 7);
        assert_eq!(tc.steps[7].dt, SimTime::from_secs(280));
        assert_eq!(tc.steps[7].assignments.len(), 1);
        assert_eq!(tc.steps[7].assignments[0].signal, "int_ill");
        assert_eq!(tc.steps[7].assignments[0].status, "Ho");
        // Full test duration: 7×0.5 + 280 + 25 + 0.5 = 309 s.
        assert_eq!(tc.duration(), SimTime::from_secs(309));
    }

    #[test]
    fn step_numbers_default_to_row_index() {
        let t = table("dt, SIG\n1, On\n2, Off");
        let tc = parse_test("t.cts", &t, "x").unwrap();
        assert_eq!(tc.steps[0].nr, 0);
        assert_eq!(tc.steps[1].nr, 1);
    }

    #[test]
    fn missing_dt_column_rejected() {
        let t = table("step, SIG\n0, On");
        let err = parse_test("t.cts", &t, "x").unwrap_err();
        assert!(err.message.contains("`dt`"));
    }

    #[test]
    fn missing_dt_cell_rejected() {
        let t = table("dt, SIG\n, On");
        let err = parse_test("t.cts", &t, "x").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("missing dt"));
    }

    #[test]
    fn bad_duration_and_step_number() {
        let t = table("step, dt, SIG\nzero, 1, On");
        assert!(parse_test("t.cts", &t, "x")
            .unwrap_err()
            .message
            .contains("step number"));
        let t = table("step, dt, SIG\n0, fast, On");
        assert!(parse_test("t.cts", &t, "x").is_err());
    }

    #[test]
    fn no_signal_columns_rejected() {
        let t = table("step, dt, remarks\n0, 1, hi");
        let err = parse_test("t.cts", &t, "x").unwrap_err();
        assert!(err.message.contains("no signal columns"));
    }

    #[test]
    fn delta_t_alias() {
        let t = table("Δt, SIG\n0.5, On");
        let tc = parse_test("t.cts", &t, "x").unwrap();
        assert_eq!(tc.steps[0].dt, SimTime::from_millis(500));
    }
}
