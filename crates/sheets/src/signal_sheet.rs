//! Parser for the `[signals]` section (the paper's signal definition sheet).

use comptest_model::{SignalDef, SignalDirection, SignalKind, SignalName, StatusName};

use crate::diagnostics::{SheetError, SheetWarning};
use crate::table::Table;

/// Converts a `[signals]` table into signal definitions.
///
/// Columns: `name`, `kind`, `direction` (required); `init`, `description`
/// (optional).  Duplicate signal names produce a warning; the later row wins,
/// mirroring how a later Excel row would overwrite reader expectations.
///
/// # Errors
///
/// Returns [`SheetError`] at the offending row for malformed names, kinds or
/// directions.
pub fn parse_signals(
    file: &str,
    table: &Table,
    warnings: &mut Vec<SheetWarning>,
) -> Result<Vec<SignalDef>, SheetError> {
    for required in ["name", "kind", "direction"] {
        if table.col(required).is_none() {
            return Err(SheetError::file_wide(
                file,
                format!("[signals] is missing the `{required}` column"),
            ));
        }
    }

    let mut signals: Vec<SignalDef> = Vec::new();
    for row in &table.rows {
        let name_cell = table.require(file, row, "name")?;
        let name = SignalName::new(name_cell)
            .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;
        let kind = SignalKind::parse(table.require(file, row, "kind")?)
            .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;
        let direction = SignalDirection::parse(table.require(file, row, "direction")?)
            .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;

        let mut def = SignalDef::new(name.clone(), kind, direction);
        let init = table.cell(row, "init");
        if !init.is_empty() {
            let status = StatusName::new(init)
                .map_err(|e| SheetError::new(file, row.line, e.to_string()))?;
            def = def.with_init(status);
        }
        let desc = table.cell(row, "description");
        if !desc.is_empty() {
            def = def.with_description(desc);
        }

        if let Some(pos) = signals.iter().position(|s| s.name == name) {
            warnings.push(SheetWarning::new(
                file,
                row.line,
                format!("signal {name} redefined; the later row wins"),
            ));
            signals[pos] = def;
        } else {
            signals.push(def);
        }
    }
    Ok(signals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;

    fn table(text: &str) -> Table {
        let recs = parse_csv("t.cts", 1, text).unwrap();
        Table::from_records("t.cts", "signals", recs).unwrap()
    }

    #[test]
    fn parses_paper_signal_sheet() {
        let t = table(
            "name, kind, direction, init, description\n\
             IGN_ST,  can:0x130:0:4, input,  Off,    ignition status\n\
             DS_FL,   pin:DS_FL,     input,  Closed, door switch front left\n\
             NIGHT,   can:0x2A0:0:1, input,  0,      light sensor night bit\n\
             INT_ILL, pin:INT_ILL_F/INT_ILL_R, output, , interior illumination",
        );
        let mut warnings = Vec::new();
        let sigs = parse_signals("t.cts", &t, &mut warnings).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(sigs.len(), 4);
        assert_eq!(sigs[0].name, "ign_st");
        assert!(sigs[0].kind.is_can());
        assert_eq!(sigs[0].init.as_ref().unwrap(), &"off");
        assert_eq!(sigs[3].direction, SignalDirection::Output);
        assert_eq!(sigs[3].kind.pins().len(), 2);
        assert!(sigs[3].init.is_none());
    }

    #[test]
    fn missing_column_is_file_wide_error() {
        let t = table("name, direction\nA, input");
        let err = parse_signals("t.cts", &t, &mut Vec::new()).unwrap_err();
        assert!(err.message.contains("`kind`"));
        assert_eq!(err.line, 0);
    }

    #[test]
    fn bad_row_reports_line() {
        let t = table("name, kind, direction\nA, pin:A, sideways");
        let err = parse_signals("t.cts", &t, &mut Vec::new()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("direction"));
    }

    #[test]
    fn duplicate_signal_warns_and_replaces() {
        let t = table("name, kind, direction\nA, pin:A, input\na, pin:A2, output");
        let mut warnings = Vec::new();
        let sigs = parse_signals("t.cts", &t, &mut warnings).unwrap();
        assert_eq!(sigs.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert_eq!(sigs[0].direction, SignalDirection::Output);
    }
}
