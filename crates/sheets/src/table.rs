//! A parsed sheet section: header row + data rows with named-column access.

use std::collections::BTreeMap;

use crate::csv::Record;
use crate::diagnostics::SheetError;

/// A rectangular table with a header row, as parsed from a workbook section.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Section name (`signals`, `status`, `test foo`).
    pub name: String,
    /// Header cells as written.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Record>,
    index: BTreeMap<String, usize>,
}

impl Table {
    /// Builds a table from the records of a section; the first record is the
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] if the section has no rows at all or the header
    /// contains a duplicate column name.
    pub fn from_records(
        file: &str,
        name: impl Into<String>,
        mut records: Vec<Record>,
    ) -> Result<Table, SheetError> {
        let name = name.into();
        if records.is_empty() {
            return Err(SheetError::file_wide(
                file,
                format!("section [{name}] is empty (missing header row)"),
            ));
        }
        let header_rec = records.remove(0);
        let mut index = BTreeMap::new();
        for (i, h) in header_rec.fields.iter().enumerate() {
            let key = normalize_header(h);
            if key.is_empty() {
                continue;
            }
            if index.insert(key, i).is_some() {
                return Err(SheetError::new(
                    file,
                    header_rec.line,
                    format!("duplicate column {h:?} in section [{name}]"),
                ));
            }
        }
        Ok(Table {
            name,
            header: header_rec.fields,
            rows: records,
            index,
        })
    }

    /// Index of a column, looked up case-insensitively.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.index.get(&normalize_header(name)).copied()
    }

    /// The cell of `row` in the column named `name` (empty if the column or
    /// cell is absent).
    pub fn cell<'a>(&self, row: &'a Record, name: &str) -> &'a str {
        match self.col(name) {
            Some(i) => row.field(i),
            None => "",
        }
    }

    /// Like [`Table::cell`] but errors when the cell is empty.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] naming the file, row line and column.
    pub fn require<'a>(
        &self,
        file: &str,
        row: &'a Record,
        name: &str,
    ) -> Result<&'a str, SheetError> {
        let v = self.cell(row, name);
        if v.is_empty() {
            Err(SheetError::new(
                file,
                row.line,
                format!("missing required cell `{name}` in section [{}]", self.name),
            ))
        } else {
            Ok(v)
        }
    }

    /// Header names that are not in `known`, in column order. Used by the
    /// test sheet, where unknown columns are signal names.
    pub fn extra_columns(&self, known: &[&str]) -> Vec<(usize, String)> {
        self.header
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                let k = normalize_header(h);
                !k.is_empty() && !known.iter().any(|n| normalize_header(n) == k)
            })
            .map(|(i, h)| (i, h.clone()))
            .collect()
    }
}

/// Normalises a header cell for lookup: trim, lowercase, collapse internal
/// whitespace to `_`.
pub fn normalize_header(h: &str) -> String {
    let mut out = String::with_capacity(h.len());
    let mut last_was_sep = false;
    for c in h.trim().chars() {
        if c.is_whitespace() {
            if !last_was_sep && !out.is_empty() {
                out.push('_');
            }
            last_was_sep = true;
        } else {
            out.extend(c.to_lowercase());
            last_was_sep = false;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;

    fn table(text: &str) -> Table {
        let recs = parse_csv("t.cts", 1, text).unwrap();
        Table::from_records("t.cts", "test demo", recs).unwrap()
    }

    #[test]
    fn named_column_access() {
        let t = table("Step, dt, DS_FL, remarks\n0, 0.5, Open, hi\n1, 1, ,");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell(&t.rows[0], "step"), "0");
        assert_eq!(t.cell(&t.rows[0], "STEP"), "0", "case-insensitive");
        assert_eq!(t.cell(&t.rows[0], "ds_fl"), "Open");
        assert_eq!(t.cell(&t.rows[1], "remarks"), "");
        assert_eq!(t.cell(&t.rows[0], "absent"), "");
    }

    #[test]
    fn require_reports_position() {
        let t = table("a,b\n1,\n");
        let err = t.require("t.cts", &t.rows[0], "b").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("`b`"));
        assert_eq!(t.require("t.cts", &t.rows[0], "a").unwrap(), "1");
    }

    #[test]
    fn header_normalization() {
        assert_eq!(normalize_header("  Test Step "), "test_step");
        assert_eq!(normalize_header("DS_FL"), "ds_fl");
        assert_eq!(normalize_header("Δt"), "δt");
        assert_eq!(normalize_header(""), "");
    }

    #[test]
    fn duplicate_columns_rejected() {
        let recs = parse_csv("t", 1, "a, A\n1,2").unwrap();
        let err = Table::from_records("t", "x", recs).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn empty_section_rejected() {
        let err = Table::from_records("t", "x", Vec::new()).unwrap_err();
        assert!(err.message.contains("empty"));
    }

    #[test]
    fn extra_columns_finds_signal_headers() {
        let t = table("step, dt, DS_FL, NIGHT, remarks\n0,1,,,");
        let extra = t.extra_columns(&["step", "dt", "remarks"]);
        let names: Vec<&str> = extra.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["DS_FL", "NIGHT"]);
    }
}
