//! Workbook loading: sections → sheets → a validated [`TestSuite`].

use std::fs;
use std::path::Path;

use comptest_model::TestSuite;

use crate::csv::parse_csv;
use crate::diagnostics::{SheetError, SheetWarning};
use crate::sections::{split_sections, Section};
use crate::signal_sheet::parse_signals;
use crate::status_sheet::parse_statuses;
use crate::table::Table;
use crate::test_sheet::parse_test;

/// The result of parsing a workbook: the suite plus non-fatal warnings.
#[derive(Debug, Clone)]
pub struct ParsedWorkbook {
    /// The assembled test suite.
    pub suite: TestSuite,
    /// Non-fatal observations (redefinitions etc.).
    pub warnings: Vec<SheetWarning>,
}

/// Loader for `.cts` component-test workbooks.
///
/// A workbook is a text file with `[section]` headers:
/// `[suite]` (key = value metadata), `[signals]`, `[status]`, and any number
/// of `[test <name>]` sections. See the [crate docs](crate) for the format.
#[derive(Debug, Clone, Copy, Default)]
pub struct Workbook;

impl Workbook {
    /// Loads and parses a workbook from disk. The suite name defaults to the
    /// file stem unless `[suite] name = …` overrides it.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] for I/O problems (reported file-wide) and any
    /// parse error.
    pub fn load(path: impl AsRef<Path>) -> Result<ParsedWorkbook, SheetError> {
        let path = path.as_ref();
        let file = path.display().to_string();
        let text = fs::read_to_string(path)
            .map_err(|e| SheetError::file_wide(&file, format!("cannot read workbook: {e}")))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "workbook".to_owned());
        let mut parsed = Self::parse_str(&file, &text)?;
        if parsed.suite.name.is_empty() {
            parsed.suite.name = stem;
        }
        Ok(parsed)
    }

    /// Parses workbook text. `file` is used in diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] when required sections are missing, sections
    /// are malformed, or any sheet row fails to parse.
    pub fn parse_str(file: &str, text: &str) -> Result<ParsedWorkbook, SheetError> {
        let sections = split_sections(file, text)?;
        let mut warnings = Vec::new();
        let mut suite = TestSuite::new("");
        let mut saw_signals = false;
        let mut saw_status = false;

        for section in &sections {
            let header = section.header.trim();
            let lower = header.to_ascii_lowercase();
            if lower == "suite" {
                parse_suite_meta(file, section, &mut suite)?;
            } else if lower == "signals" {
                let table = section_table(file, section)?;
                suite.signals = parse_signals(file, &table, &mut warnings)?;
                saw_signals = true;
            } else if lower == "status" {
                let table = section_table(file, section)?;
                suite.statuses = parse_statuses(file, &table, &mut warnings)?;
                saw_status = true;
            } else if let Some(test_name) = lower.strip_prefix("test") {
                let test_name = header[header.len() - test_name.len()..].trim();
                if test_name.is_empty() {
                    return Err(SheetError::new(
                        file,
                        section.header_line,
                        "[test] sections need a name: [test my_case]",
                    ));
                }
                if suite.test(test_name).is_some() {
                    return Err(SheetError::new(
                        file,
                        section.header_line,
                        format!("duplicate test section [test {test_name}]"),
                    ));
                }
                let table = section_table(file, section)?;
                suite.tests.push(parse_test(file, &table, test_name)?);
            } else {
                return Err(SheetError::new(
                    file,
                    section.header_line,
                    format!("unknown section [{header}]"),
                ));
            }
        }

        if !saw_signals {
            return Err(SheetError::file_wide(file, "missing [signals] section"));
        }
        if !saw_status {
            return Err(SheetError::file_wide(file, "missing [status] section"));
        }
        if suite.tests.is_empty() {
            warnings.push(SheetWarning::new(
                file,
                0,
                "workbook defines no [test …] sections",
            ));
        }
        Ok(ParsedWorkbook { suite, warnings })
    }
}

fn section_table(file: &str, section: &Section) -> Result<Table, SheetError> {
    let records = parse_csv(file, section.body_first_line, &section.body)?;
    Table::from_records(file, section.header.clone(), records)
}

fn parse_suite_meta(
    file: &str,
    section: &Section,
    suite: &mut TestSuite,
) -> Result<(), SheetError> {
    for (i, line) in section.body.lines().enumerate() {
        let line_no = section.body_first_line + i;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let Some((key, value)) = t.split_once('=') else {
            return Err(SheetError::new(
                file,
                line_no,
                "expected `key = value` in [suite]",
            ));
        };
        match key.trim().to_ascii_lowercase().as_str() {
            "name" => suite.name = value.trim().to_owned(),
            "description" => {} // informational; not stored in the model
            other => {
                return Err(SheetError::new(
                    file,
                    line_no,
                    format!("unknown [suite] key `{other}`"),
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_model::MethodRegistry;

    const MINI: &str = "\
# A miniature workbook.
[suite]
name = mini

[signals]
name, kind, direction, init
D1,   pin:D1, input, Off2
LAMP, pin:LAMP_F/LAMP_R, output,

[status]
status, method, attribut, var, nom, min, max
Off2,   put_r,  r,        ,    INF, 5000, INF
On2,    put_r,  r,        ,    0,   0,    2
Lit,    get_u,  u,        UBATT, 1, 0.7,  1.1

[test smoke]
step, dt, D1, LAMP, remarks
0, 0.5, On2, Lit, REQ-X-1
1, 0.5, Off2, ,
";

    #[test]
    fn parses_minimal_workbook() {
        let parsed = Workbook::parse_str("mini.cts", MINI).unwrap();
        assert_eq!(parsed.suite.name, "mini");
        assert_eq!(parsed.suite.signals.len(), 2);
        assert_eq!(parsed.suite.statuses.len(), 3);
        assert_eq!(parsed.suite.tests.len(), 1);
        assert!(parsed.warnings.is_empty());
        // The parsed suite passes model validation.
        let issues = parsed.suite.validate(&MethodRegistry::builtin());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn missing_sections_rejected() {
        let err = Workbook::parse_str("x.cts", "[signals]\nname,kind,direction\nA,pin:A,input\n")
            .unwrap_err();
        assert!(err.message.contains("[status]"));
        let err = Workbook::parse_str("x.cts", "[status]\nstatus,method,attribut\n").unwrap_err();
        // The empty status table errors first (no data rows is fine, but the
        // missing [signals] section must be reported).
        assert!(
            err.message.contains("[signals]") || err.message.contains("status"),
            "{err}"
        );
    }

    #[test]
    fn unknown_section_rejected() {
        let err = Workbook::parse_str("x.cts", "[wibble]\na,b\n").unwrap_err();
        assert!(err.message.contains("unknown section"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn content_before_sections_rejected() {
        let err = Workbook::parse_str("x.cts", "stray text\n[signals]\n").unwrap_err();
        assert!(err.message.contains("before the first"));
    }

    #[test]
    fn duplicate_test_sections_rejected() {
        let text = format!("{MINI}\n[test smoke]\nstep, dt, D1\n0, 1, On2\n");
        let err = Workbook::parse_str("x.cts", &text).unwrap_err();
        assert!(err.message.contains("duplicate test"));
    }

    #[test]
    fn unnamed_test_section_rejected() {
        let text = format!("{MINI}\n[test]\nstep, dt, D1\n0, 1, On2\n");
        let err = Workbook::parse_str("x.cts", &text).unwrap_err();
        assert!(err.message.contains("need a name"));
    }

    #[test]
    fn suite_meta_errors() {
        let err = Workbook::parse_str("x.cts", "[suite]\nnonsense\n").unwrap_err();
        assert!(err.message.contains("key = value"));
        let err = Workbook::parse_str("x.cts", "[suite]\ncolor = red\n").unwrap_err();
        assert!(err.message.contains("unknown [suite] key"));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(Workbook::parse_str("x.cts", "").is_err());
        assert!(Workbook::parse_str("x.cts", "# only comments\n").is_err());
    }

    #[test]
    fn no_tests_is_a_warning_not_error() {
        let text = "\
[signals]
name, kind, direction
A, pin:A, input

[status]
status, method, attribut, nom, min, max
On2, put_u, u, 12, 11, 13
";
        let parsed = Workbook::parse_str("x.cts", text).unwrap();
        assert_eq!(parsed.warnings.len(), 1);
        assert!(parsed.warnings[0].message.contains("no [test"));
    }

    #[test]
    fn load_from_disk() {
        let dir = std::env::temp_dir().join("comptest_sheets_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.cts");
        std::fs::write(&path, MINI).unwrap();
        let parsed = Workbook::load(&path).unwrap();
        assert_eq!(parsed.suite.name, "mini");
        // Name falls back to the file stem when [suite] has no name.
        let path2 = dir.join("unnamed.cts");
        std::fs::write(&path2, MINI.replace("name = mini", "")).unwrap();
        let parsed = Workbook::load(&path2).unwrap();
        assert_eq!(parsed.suite.name, "unnamed");
        let missing = Workbook::load(dir.join("nope.cts")).unwrap_err();
        assert!(missing.message.contains("cannot read"));
    }
}
