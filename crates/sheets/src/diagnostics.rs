//! Diagnostics carrying file/line positions for every sheet problem.

use std::error::Error;
use std::fmt;

/// A fatal problem in a workbook, pinpointed to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SheetError {
    /// Workbook file name (or pseudo-name for in-memory parses).
    pub file: String,
    /// 1-based line number; 0 when the problem is file-wide.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl SheetError {
    /// Creates an error at a specific line.
    pub fn new(file: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        Self {
            file: file.into(),
            line,
            message: message.into(),
        }
    }

    /// Creates a file-wide error (no line).
    pub fn file_wide(file: impl Into<String>, message: impl Into<String>) -> Self {
        Self::new(file, 0, message)
    }
}

impl fmt::Display for SheetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.message)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        }
    }
}

impl Error for SheetError {}

/// A non-fatal observation (e.g. a redefined status, an unused column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SheetWarning {
    /// Workbook file name.
    pub file: String,
    /// 1-based line number; 0 when file-wide.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl SheetWarning {
    /// Creates a warning at a specific line.
    pub fn new(file: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        Self {
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SheetWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "warning: {}: {}", self.file, self.message)
        } else {
            write!(f, "warning: {}:{}: {}", self.file, self.line, self.message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let e = SheetError::new("wb.cts", 12, "bad cell");
        assert_eq!(e.to_string(), "wb.cts:12: bad cell");
        let e = SheetError::file_wide("wb.cts", "missing [status] section");
        assert_eq!(e.to_string(), "wb.cts: missing [status] section");
        let w = SheetWarning::new("wb.cts", 3, "status Ho redefined");
        assert!(w.to_string().starts_with("warning: wb.cts:3"));
    }
}
