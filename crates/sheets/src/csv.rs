//! A small CSV reader tailored to sheet cells.
//!
//! Supports double-quoted fields (with `""` escapes), `#` comment lines,
//! whitespace-trimmed unquoted cells, and per-record line numbers for
//! diagnostics.  Quoted fields must close on the same line — sheet rows are
//! line-oriented by construction.

use crate::diagnostics::SheetError;

/// One parsed CSV record (a sheet row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// 1-based line number in the source file.
    pub line: usize,
    /// Cell contents, unquoted and trimmed.
    pub fields: Vec<String>,
}

impl Record {
    /// The cell at `idx`, or `""` when the row is shorter.
    pub fn field(&self, idx: usize) -> &str {
        self.fields.get(idx).map(String::as_str).unwrap_or("")
    }

    /// True if every cell is empty (rows of only separators are skipped).
    pub fn is_blank(&self) -> bool {
        self.fields.iter().all(|f| f.is_empty())
    }
}

/// Parses CSV text into records.
///
/// * `file` is used for diagnostics only.
/// * `first_line` is the 1-based line number of `text`'s first line within
///   the enclosing file (sections of a workbook start mid-file).
///
/// Blank lines and `#` comment lines are skipped.
///
/// # Errors
///
/// Returns [`SheetError`] on an unterminated quote or text after a closing
/// quote.
pub fn parse_csv(file: &str, first_line: usize, text: &str) -> Result<Vec<Record>, SheetError> {
    let mut records = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = first_line + i;
        let trimmed = raw_line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields = split_line(file, line_no, raw_line)?;
        let record = Record {
            line: line_no,
            fields,
        };
        if !record.is_blank() {
            records.push(record);
        }
    }
    Ok(records)
}

/// Splits one line into trimmed, unquoted cells.
fn split_line(file: &str, line_no: usize, line: &str) -> Result<Vec<String>, SheetError> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();

    loop {
        // Skip leading whitespace of the cell.
        while matches!(chars.peek(), Some(c) if *c == ' ' || *c == '\t') {
            chars.next();
        }
        let mut cell = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut closed = false;
            while let Some(c) = chars.next() {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        closed = true;
                        break;
                    }
                } else {
                    cell.push(c);
                }
            }
            if !closed {
                return Err(SheetError::new(file, line_no, "unterminated quoted cell"));
            }
            // After the closing quote only whitespace may precede the comma.
            while matches!(chars.peek(), Some(c) if *c == ' ' || *c == '\t') {
                chars.next();
            }
            match chars.peek() {
                None | Some(',') => {}
                Some(_) => {
                    return Err(SheetError::new(
                        file,
                        line_no,
                        "unexpected text after closing quote",
                    ))
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                cell.push(c);
                chars.next();
            }
            cell = cell.trim().to_owned();
        }
        fields.push(cell);
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(_) => unreachable!("only `,` or end can follow a cell"),
        }
    }
    Ok(fields)
}

/// Quotes a cell for CSV output when necessary (used by report writers and
/// the workbook formatter).
pub fn quote_cell(cell: &str) -> String {
    let needs_quotes = cell.contains(',')
        || cell.contains('"')
        || cell.starts_with(' ')
        || cell.ends_with(' ')
        || cell.starts_with('#');
    if needs_quotes {
        let mut out = String::with_capacity(cell.len() + 2);
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        cell.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Vec<Record> {
        parse_csv("t.cts", 1, text).unwrap()
    }

    #[test]
    fn basic_rows_and_trimming() {
        let rows = parse("a, b , c\n1,2,3\n");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].fields, vec!["a", "b", "c"]);
        assert_eq!(rows[1].fields, vec!["1", "2", "3"]);
        assert_eq!(rows[0].line, 1);
        assert_eq!(rows[1].line, 2);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let rows = parse("a,b\n\n# comment line\n  \n1,2\n");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].line, 5, "line numbers account for skipped lines");
    }

    #[test]
    fn empty_cells_are_preserved() {
        let rows = parse("a,,c\n,,\nx,y,z");
        // The all-empty row `,,` is dropped, the partial one kept.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].fields, vec!["a", "", "c"]);
        assert_eq!(rows[0].field(1), "");
        assert_eq!(rows[0].field(99), "", "out-of-range reads as empty");
    }

    #[test]
    fn quoted_cells() {
        let rows = parse(r#""hello, world", "say ""hi""", plain"#);
        assert_eq!(rows[0].fields, vec!["hello, world", r#"say "hi""#, "plain"]);
        // Decimal comma survives quoting.
        let rows = parse(r#"0,"0,5",x"#);
        assert_eq!(rows[0].fields, vec!["0", "0,5", "x"]);
    }

    #[test]
    fn quote_errors() {
        assert!(parse_csv("t", 1, "\"unterminated").is_err());
        assert!(parse_csv("t", 1, "\"closed\" junk, b").is_err());
        let err = parse_csv("f.cts", 7, "\"oops").unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.to_string().contains("f.cts"));
    }

    #[test]
    fn quote_cell_roundtrip() {
        for s in [
            "plain",
            "with, comma",
            "with \"quotes\"",
            " leading",
            "#hash",
            "",
        ] {
            let quoted = quote_cell(s);
            let rows = parse_csv("t", 1, &format!("{quoted},end")).unwrap();
            if s.is_empty() {
                // An all-empty first cell still parses; row is (,end).
                assert_eq!(rows[0].fields, vec!["", "end"]);
            } else {
                assert_eq!(rows[0].fields[0], s, "roundtrip of {s:?} via {quoted:?}");
            }
        }
    }

    #[test]
    fn offset_line_numbers() {
        let rows = parse_csv("t", 100, "a\nb").unwrap();
        assert_eq!(rows[0].line, 100);
        assert_eq!(rows[1].line, 101);
    }
}
