//! Writing suites back to `.cts` text.
//!
//! The paper's goal is a *living knowledge base*: suites get extended with
//! every newly found bug and shared between OEM and suppliers.  That needs
//! the reverse direction too — programmatically merged or generated suites
//! serialised back into the exchange format.  `parse(write(suite))`
//! reproduces the suite exactly (asserted by property tests).

use comptest_model::value::number_to_string;
use comptest_model::{SignalName, TestSuite};

use crate::csv::quote_cell;

/// Serialises a suite into `.cts` workbook text.
///
/// Numbers are written in canonical form (decimal point, `INF`); remarks
/// and other free-text cells are quoted when needed.
///
/// # Example
///
/// ```
/// use comptest_sheets::{write_workbook, Workbook};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let parsed = Workbook::parse_str("kb.cts", "\
/// [signals]
/// name, kind, direction
/// D1, pin:D1, input
///
/// [status]
/// status, method, attribut, nom, min, max
/// On, put_u, u, 12, 11, 13
///
/// [test smoke]
/// step, dt, D1
/// 0, 0.5, On
/// ")?;
/// let text = write_workbook(&parsed.suite);
/// let reparsed = Workbook::parse_str("rewritten.cts", &text)?;
/// assert_eq!(reparsed.suite.tests.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn write_workbook(suite: &TestSuite) -> String {
    let mut out = String::new();

    if !suite.name.is_empty() {
        out.push_str("[suite]\n");
        out.push_str(&format!("name = {}\n\n", suite.name));
    }

    out.push_str("[signals]\n");
    out.push_str("name, kind, direction, init, description\n");
    for sig in &suite.signals {
        out.push_str(&format!(
            "{}, {}, {}, {}, {}\n",
            quote_cell(sig.name.as_str()),
            quote_cell(&sig.kind.to_string()),
            sig.direction,
            sig.init.as_ref().map(|s| s.to_string()).unwrap_or_default(),
            quote_cell(&sig.description),
        ));
    }

    out.push_str("\n[status]\n");
    out.push_str("status, method, attribut, var, nom, min, max, d1, d2, d3\n");
    for def in suite.statuses.iter() {
        let nom = match (def.bits, def.nom) {
            (Some(bits), _) => bits.to_string(),
            (None, Some(n)) => number_to_string(n),
            (None, None) => String::new(),
        };
        let opt = |v: Option<f64>| v.map(number_to_string).unwrap_or_default();
        out.push_str(&format!(
            "{}, {}, {}, {}, {}, {}, {}, {}, {}, {}\n",
            quote_cell(def.name.as_str()),
            def.method,
            def.attribut,
            def.var.as_deref().unwrap_or(""),
            nom,
            opt(def.min),
            opt(def.max),
            opt(def.d1),
            opt(def.d2),
            opt(def.d3),
        ));
    }

    for test in &suite.tests {
        out.push_str(&format!("\n[test {}]\n", test.name));
        // Column order: first appearance across the steps.
        let mut columns: Vec<SignalName> = Vec::new();
        for step in &test.steps {
            for a in &step.assignments {
                if !columns.contains(&a.signal) {
                    columns.push(a.signal.clone());
                }
            }
        }
        out.push_str("step, dt");
        for c in &columns {
            out.push_str(&format!(", {c}"));
        }
        out.push_str(", remarks\n");
        for step in &test.steps {
            out.push_str(&format!(
                "{}, {}",
                step.nr,
                number_to_string(step.dt.as_secs_f64())
            ));
            for c in &columns {
                let status = step
                    .assignments
                    .iter()
                    .find(|a| &a.signal == c)
                    .map(|a| a.status.to_string())
                    .unwrap_or_default();
                out.push_str(&format!(", {status}"));
            }
            out.push_str(&format!(", {}\n", quote_cell(&step.remark)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbook::Workbook;

    /// Equality modulo per-step assignment order: parsing a written
    /// workbook yields assignments in the writer's column order, which may
    /// permute the original order (the sheets' semantics are order-free
    /// within a step — all stimuli apply atomically).
    fn semantically_equal(a: &TestSuite, b: &TestSuite) -> bool {
        let normalize = |s: &TestSuite| {
            let mut s = s.clone();
            for t in &mut s.tests {
                for step in &mut t.steps {
                    step.assignments.sort_by_key(|a| a.signal.key());
                }
            }
            s
        };
        normalize(a) == normalize(b)
    }

    #[test]
    fn paper_workbook_roundtrips() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../assets/interior_light.cts");
        let text = std::fs::read_to_string(dir).unwrap();
        let original = Workbook::parse_str("interior_light.cts", &text)
            .unwrap()
            .suite;
        let written = write_workbook(&original);
        let reparsed = Workbook::parse_str("rewritten.cts", &written)
            .unwrap_or_else(|e| panic!("rewritten workbook must parse: {e}\n{written}"))
            .suite;
        assert!(
            semantically_equal(&reparsed, &original),
            "roundtrip changed the suite:\n{written}"
        );
        // Writing is a fixpoint: the second generation is byte-identical.
        assert_eq!(write_workbook(&reparsed), written);
    }

    #[test]
    fn merged_suites_serialise() {
        // The knowledge-base workflow: take the paper's suite, graft a test
        // from another project, write the merged workbook.
        let asset = |name: &str| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../assets")
                .join(name)
        };
        let mut base = Workbook::parse_str(
            "a.cts",
            &std::fs::read_to_string(asset("interior_light.cts")).unwrap(),
        )
        .unwrap()
        .suite;
        let donor = Workbook::parse_str(
            "b.cts",
            &std::fs::read_to_string(asset("central_lock.cts")).unwrap(),
        )
        .unwrap()
        .suite;
        for sig in donor.signals {
            if base.signal(&sig.name).is_none() {
                base.signals.push(sig);
            }
        }
        for def in donor.statuses.iter() {
            base.statuses.insert(def.clone());
        }
        base.tests.extend(donor.tests);

        let written = write_workbook(&base);
        let reparsed = Workbook::parse_str("merged.cts", &written).unwrap().suite;
        assert_eq!(reparsed.tests.len(), 6);
        assert!(semantically_equal(&reparsed, &base), "\n{written}");
        // The merged suite still validates.
        let issues = reparsed.validate(&comptest_model::MethodRegistry::builtin());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn empty_suite_writes_minimal_sections() {
        let suite = TestSuite::new("empty");
        let text = write_workbook(&suite);
        assert!(text.contains("[signals]"));
        assert!(text.contains("[status]"));
        // An empty suite is *not* a valid workbook (no status rows), and
        // that is intentional: the writer is for real suites.
    }
}
