//! [`Device`]: a behaviour wired to pins and CAN fields.
//!
//! The execution engine never talks to behaviours directly; it applies pin
//! drives and CAN fields to a device and measures pin voltages or reads CAN
//! fields back, exactly like the instruments of a real stand.

use std::collections::BTreeMap;

use comptest_model::{CanFrameId, PinId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::can::CanBus;
use crate::elec::{pin_voltage, DigitalInput, DutPinMode, ElectricalConfig, PinDrive};

/// How a DUT pin relates to the behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinBinding {
    /// Digital input port (active-low: a grounded pin reads `true`).
    InputActiveLow {
        /// Behaviour input port.
        port: &'static str,
    },
    /// Digital input port (active-high: a high pin reads `true`).
    InputActiveHigh {
        /// Behaviour input port.
        port: &'static str,
    },
    /// Push-pull output pin driven by a boolean output port.
    Output {
        /// Behaviour output port.
        port: &'static str,
    },
    /// Ground return terminal (second pin of differential loads).
    Return,
}

/// A CAN field binding.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CanBinding {
    frame: CanFrameId,
    start_bit: u8,
    width: u8,
    port: &'static str,
    /// true = DUT input (stand writes), false = DUT output (DUT transmits).
    input: bool,
}

/// A simulated DUT instance.
#[derive(Debug)]
pub struct Device {
    behavior: Box<dyn Behavior + Send>,
    cfg: ElectricalConfig,
    pins: BTreeMap<PinId, PinBinding>,
    can: Vec<CanBinding>,
    bus: CanBus,
    drives: BTreeMap<PinId, PinDrive>,
    inputs: BTreeMap<PinId, DigitalInput>,
    dropped_frames: Vec<CanFrameId>,
    /// Logic-level edge timestamps per output pin (for `get_f`).
    edges: BTreeMap<PinId, Vec<SimTime>>,
    last_levels: BTreeMap<PinId, bool>,
    now: SimTime,
    /// True only for devices built by the named registry constructors in
    /// [`crate::ecus`]; such devices can be respecified elsewhere from their
    /// behaviour name alone.
    from_registry: bool,
}

impl Device {
    /// Starts building a device around a behaviour.
    pub fn builder(behavior: Box<dyn Behavior + Send>) -> DeviceBuilder {
        DeviceBuilder {
            behavior,
            cfg: ElectricalConfig::default(),
            pins: BTreeMap::new(),
            can: Vec::new(),
        }
    }

    /// The electrical configuration.
    pub fn config(&self) -> &ElectricalConfig {
        &self.cfg
    }

    /// The behaviour's name.
    pub fn behavior_name(&self) -> &str {
        self.behavior.name()
    }

    /// CAN frames this device ignores writes to (fault injection), in the
    /// order they were dropped.
    pub fn dropped_frames(&self) -> &[CanFrameId] {
        &self.dropped_frames
    }

    /// Marks this device as a verbatim product of a registry constructor.
    ///
    /// Only the named `device()` constructors in [`crate::ecus`] call this;
    /// `device_with` stays unmarked so custom or fault-wrapped behaviours
    /// never masquerade as a stock ECU.
    pub(crate) fn mark_registry(&mut self) {
        self.from_registry = true;
    }

    /// A portable specification that rebuilds this device elsewhere, or
    /// `None` when the device cannot be rebuilt from its name (custom
    /// behaviour, fault wrapper, hand-assembled bindings).
    ///
    /// The captured [`ElectricalConfig`] reflects the *current* thresholds,
    /// so [`shift_thresholds`](Self::shift_thresholds) survives the round
    /// trip; dropped frames are replayed by
    /// [`DeviceSpec::realize`](crate::spec::DeviceSpec::realize).
    pub fn spec(&self) -> Option<crate::spec::DeviceSpec> {
        if !self.from_registry {
            return None;
        }
        Some(crate::spec::DeviceSpec {
            behavior: self.behavior.name().to_string(),
            cfg: self.cfg,
            dropped_frames: self.dropped_frames.clone(),
        })
    }

    /// Makes the device ignore writes to a CAN frame (fault injection).
    pub fn drop_can_frame(&mut self, frame: CanFrameId) {
        self.dropped_frames.push(frame);
    }

    /// Shifts both input thresholds by `delta` (fraction of ubatt; fault
    /// injection).
    pub fn shift_thresholds(&mut self, delta: f64) {
        self.cfg.low_threshold += delta;
        self.cfg.high_threshold += delta;
    }

    /// Resets behaviour, bus, latched inputs and edge recorders.
    pub fn reset(&mut self, now: SimTime) {
        self.now = now;
        self.bus.clear();
        self.drives.clear();
        self.inputs.clear();
        self.edges.clear();
        self.last_levels.clear();
        self.behavior.reset(now);
        // Present the idle pin state (everything open) to the behaviour.
        let bindings: Vec<(PinId, PinBinding)> = self
            .pins
            .iter()
            .map(|(p, b)| (p.clone(), b.clone()))
            .collect();
        for (pin, binding) in bindings {
            self.refresh_input(&pin, &binding);
        }
        // Baseline output levels (no edge recorded for the initial state).
        let outputs: Vec<(PinId, bool)> = self
            .pins
            .iter()
            .filter_map(|(p, b)| match b {
                PinBinding::Output { port } => {
                    Some((p.clone(), self.behavior.output(port).as_bool()))
                }
                _ => None,
            })
            .collect();
        for (pin, level) in outputs {
            self.last_levels.insert(pin, level);
        }
    }

    /// Applies a stand drive to a pin at time `now`.
    pub fn apply_pin(&mut self, pin: &PinId, drive: PinDrive, now: SimTime) {
        self.advance_to(now);
        self.drives.insert(pin.clone(), drive);
        if let Some(binding) = self.pins.get(pin).cloned() {
            self.refresh_input(pin, &binding);
        }
    }

    /// Writes a CAN field from the stand side at time `now`.
    pub fn write_can_field(
        &mut self,
        frame: CanFrameId,
        start_bit: u8,
        width: u8,
        value: u64,
        now: SimTime,
    ) {
        self.advance_to(now);
        if self.dropped_frames.contains(&frame) {
            return;
        }
        self.bus.write_field(frame, start_bit, width, value);
        let matching: Vec<CanBinding> = self
            .can
            .iter()
            .filter(|b| b.input && b.frame == frame)
            .cloned()
            .collect();
        for b in matching {
            if let Some(v) = self.bus.read_field(b.frame, b.start_bit, b.width) {
                self.behavior
                    .set_input(b.port, PortValue::Bits(v), self.now);
            }
        }
        self.sync_outputs();
    }

    /// Advances simulation time, processing behaviour events in order.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the device's current time — the engine
    /// must drive time monotonically.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "time must be monotone ({to} < {})",
            self.now
        );
        while let Some(event) = self.behavior.next_event() {
            if event > to {
                break;
            }
            let at = event.max(self.now);
            self.behavior.advance(at);
            self.now = at;
            self.sync_outputs();
        }
        self.behavior.advance(to);
        self.now = to;
        self.sync_outputs();
    }

    /// The current device time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Measures a voltage: single-ended for one pin, differential (first
    /// minus second) for two.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty or has more than two entries.
    pub fn measure_pins(&self, pins: &[PinId]) -> f64 {
        match pins {
            [single] => self.voltage(single),
            [fwd, ret] => self.voltage(fwd) - self.voltage(ret),
            _ => panic!("measure_pins takes 1 or 2 pins, got {}", pins.len()),
        }
    }

    /// Reads a CAN field as the stand would (`None` if never transmitted).
    pub fn read_can_field(&self, frame: CanFrameId, start_bit: u8, width: u8) -> Option<u64> {
        self.bus.read_field(frame, start_bit, width)
    }

    /// Number of logic-level edges an output pin produced in
    /// `window_start..=window_end`.
    pub fn edge_count(&self, pin: &PinId, window_start: SimTime, window_end: SimTime) -> usize {
        self.edges
            .get(pin)
            .map(|ts| {
                ts.iter()
                    .filter(|t| **t >= window_start && **t <= window_end)
                    .count()
            })
            .unwrap_or(0)
    }

    /// The frequency (Hz) of an output pin over a window, as a frequency
    /// counter would report it: edge count / 2 / window length. Returns 0
    /// for an empty window or a static pin.
    pub fn frequency(&self, pin: &PinId, window_start: SimTime, window_end: SimTime) -> f64 {
        let window = window_end.saturating_sub(window_start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.edge_count(pin, window_start, window_end) as f64 / 2.0 / window
    }

    /// Direct access to the bus (statistics, debugging).
    pub fn bus(&self) -> &CanBus {
        &self.bus
    }

    /// Footprint accessor: the binding of the pin whose canonical
    /// [`key`](PinId::key) is `pin`, rendered for hashing, plus the bound
    /// behaviour port (`None` for [`PinBinding::Return`] rails). Returns
    /// `None` for pins this device does not bind.
    pub fn pin_binding_debug(&self, pin: &str) -> Option<(String, Option<&'static str>)> {
        self.pins
            .iter()
            .find(|(id, _)| id.key() == pin)
            .map(|(_, binding)| {
                let port = match binding {
                    PinBinding::InputActiveLow { port }
                    | PinBinding::InputActiveHigh { port }
                    | PinBinding::Output { port } => Some(*port),
                    PinBinding::Return => None,
                };
                (format!("{binding:?}"), port)
            })
    }

    /// Footprint accessor: every CAN binding touching `frame`, as
    /// `(start_bit, width, port, input)` in declaration order.
    pub fn can_frame_bindings(&self, frame: CanFrameId) -> Vec<(u8, u8, &'static str, bool)> {
        self.can
            .iter()
            .filter(|b| b.frame == frame)
            .map(|b| (b.start_bit, b.width, b.port, b.input))
            .collect()
    }

    /// The behaviour's [`port_slice`](Behavior::port_slice) for `port`.
    pub fn port_slice(&self, port: &str) -> Option<String> {
        self.behavior.port_slice(port)
    }

    /// The voltage at one pin under the current drives and outputs.
    fn voltage(&self, pin: &PinId) -> f64 {
        let mode = match self.pins.get(pin) {
            Some(PinBinding::InputActiveLow { .. }) | Some(PinBinding::InputActiveHigh { .. }) => {
                DutPinMode::InputPullUp
            }
            Some(PinBinding::Output { port }) => DutPinMode::OutputPushPull {
                level: if self.behavior.output(port).as_bool() {
                    1.0
                } else {
                    0.0
                },
            },
            Some(PinBinding::Return) => DutPinMode::Ground,
            None => DutPinMode::HighZ,
        };
        let drive = self.drives.get(pin).copied().unwrap_or(PinDrive::HighZ);
        pin_voltage(&self.cfg, mode, drive)
    }

    /// Recomputes a digital input pin and informs the behaviour on change.
    fn refresh_input(&mut self, pin: &PinId, binding: &PinBinding) {
        let (port, active_low) = match binding {
            PinBinding::InputActiveLow { port } => (*port, true),
            PinBinding::InputActiveHigh { port } => (*port, false),
            _ => return,
        };
        let v = self.voltage(pin);
        let entry = self.inputs.entry(pin.clone()).or_default();
        let high = entry.update(v, &self.cfg);
        let logical = if active_low { !high } else { high };
        self.behavior
            .set_input(port, PortValue::Bool(logical), self.now);
        self.sync_outputs();
    }

    /// Publishes CAN outputs and records output-pin edges at `self.now`.
    fn sync_outputs(&mut self) {
        self.publish_can_outputs();
        let outputs: Vec<(PinId, bool)> = self
            .pins
            .iter()
            .filter_map(|(p, b)| match b {
                PinBinding::Output { port } => {
                    Some((p.clone(), self.behavior.output(port).as_bool()))
                }
                _ => None,
            })
            .collect();
        for (pin, level) in outputs {
            match self.last_levels.get(&pin) {
                Some(prev) if *prev == level => {}
                Some(_) => {
                    self.edges.entry(pin.clone()).or_default().push(self.now);
                    self.last_levels.insert(pin, level);
                }
                None => {
                    self.last_levels.insert(pin, level);
                }
            }
        }
    }

    /// Copies DUT output ports bound to CAN fields onto the bus.
    fn publish_can_outputs(&mut self) {
        for b in &self.can {
            if b.input {
                continue;
            }
            let value = self.behavior.output(b.port).as_bits();
            let current = self.bus.read_field(b.frame, b.start_bit, b.width);
            if current != Some(value) {
                self.bus.write_field(b.frame, b.start_bit, b.width, value);
            }
        }
    }
}

/// Builder for [`Device`].
#[derive(Debug)]
pub struct DeviceBuilder {
    behavior: Box<dyn Behavior + Send>,
    cfg: ElectricalConfig,
    pins: BTreeMap<PinId, PinBinding>,
    can: Vec<CanBinding>,
}

impl DeviceBuilder {
    /// Sets the electrical configuration.
    pub fn config(mut self, cfg: ElectricalConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Binds a pin.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate pin binding.
    pub fn pin(mut self, pin: &str, binding: PinBinding) -> Self {
        let pin = PinId::new(pin).expect("valid pin id");
        let old = self.pins.insert(pin.clone(), binding);
        assert!(old.is_none(), "pin {pin} bound twice");
        self
    }

    /// Binds a CAN field as a DUT input.
    pub fn can_input(mut self, frame: u32, start_bit: u8, width: u8, port: &'static str) -> Self {
        self.can.push(CanBinding {
            frame: CanFrameId(frame),
            start_bit,
            width,
            port,
            input: true,
        });
        self
    }

    /// Binds a CAN field as a DUT output (the DUT transmits it).
    pub fn can_output(mut self, frame: u32, start_bit: u8, width: u8, port: &'static str) -> Self {
        self.can.push(CanBinding {
            frame: CanFrameId(frame),
            start_bit,
            width,
            port,
            input: false,
        });
        self
    }

    /// Finishes the device.
    pub fn build(self) -> Device {
        let mut device = Device {
            behavior: self.behavior,
            cfg: self.cfg,
            pins: self.pins,
            can: self.can,
            bus: CanBus::new(),
            drives: BTreeMap::new(),
            inputs: BTreeMap::new(),
            dropped_frames: Vec::new(),
            edges: BTreeMap::new(),
            last_levels: BTreeMap::new(),
            now: SimTime::ZERO,
            from_registry: false,
        };
        device.reset(SimTime::ZERO);
        device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially observable behaviour: `lamp = sw && bit`.
    #[derive(Debug, Default)]
    struct AndGate {
        sw: bool,
        bit: bool,
    }

    impl Behavior for AndGate {
        fn name(&self) -> &str {
            "and_gate"
        }
        fn inputs(&self) -> &[&'static str] {
            &["sw", "bit"]
        }
        fn outputs(&self) -> &[&'static str] {
            &["lamp"]
        }
        fn reset(&mut self, _now: SimTime) {
            self.sw = false;
            self.bit = false;
        }
        fn set_input(&mut self, port: &str, value: PortValue, _now: SimTime) {
            match port {
                "sw" => self.sw = value.as_bool(),
                "bit" => self.bit = value.as_bool(),
                _ => {}
            }
        }
        fn advance(&mut self, _now: SimTime) {}
        fn next_event(&self) -> Option<SimTime> {
            None
        }
        fn output(&self, port: &str) -> PortValue {
            match port {
                "lamp" => PortValue::Bool(self.sw && self.bit),
                "echo" => PortValue::Bits(self.bit as u64),
                _ => PortValue::Bool(false),
            }
        }
    }

    fn device() -> Device {
        Device::builder(Box::new(AndGate::default()))
            .pin("SW", PinBinding::InputActiveLow { port: "sw" })
            .pin("LAMP_F", PinBinding::Output { port: "lamp" })
            .pin("LAMP_R", PinBinding::Return)
            .can_input(0x100, 0, 1, "bit")
            .can_output(0x200, 0, 1, "echo")
            .build()
    }

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    #[test]
    fn pin_and_can_drive_the_behavior() {
        let mut d = device();
        let t = SimTime::from_millis(1);
        d.apply_pin(&pid("SW"), PinDrive::ResistanceToGround(0.0), t);
        let v = d.measure_pins(&[pid("LAMP_F"), pid("LAMP_R")]);
        assert!(v < 1.0, "bit not yet set, lamp off: {v}");
        d.write_can_field(CanFrameId(0x100), 0, 1, 1, t);
        let v = d.measure_pins(&[pid("LAMP_F"), pid("LAMP_R")]);
        assert!(v > 11.0, "lamp on: {v}");
    }

    #[test]
    fn can_output_is_published() {
        let mut d = device();
        let t = SimTime::from_millis(1);
        assert_eq!(d.read_can_field(CanFrameId(0x200), 0, 1), Some(0));
        d.write_can_field(CanFrameId(0x100), 0, 1, 1, t);
        assert_eq!(d.read_can_field(CanFrameId(0x200), 0, 1), Some(1));
    }

    #[test]
    fn releasing_the_pin_restores_high() {
        let mut d = device();
        let t1 = SimTime::from_millis(1);
        let t2 = SimTime::from_millis(2);
        d.write_can_field(CanFrameId(0x100), 0, 1, 1, t1);
        d.apply_pin(&pid("SW"), PinDrive::ResistanceToGround(0.0), t1);
        assert!(d.measure_pins(&[pid("LAMP_F"), pid("LAMP_R")]) > 11.0);
        d.apply_pin(&pid("SW"), PinDrive::ResistanceToGround(f64::INFINITY), t2);
        assert!(d.measure_pins(&[pid("LAMP_F"), pid("LAMP_R")]) < 1.0);
    }

    #[test]
    fn dropped_frames_are_ignored() {
        let mut d = device();
        d.drop_can_frame(CanFrameId(0x100));
        d.write_can_field(CanFrameId(0x100), 0, 1, 1, SimTime::from_millis(1));
        d.apply_pin(
            &pid("SW"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_millis(1),
        );
        assert!(d.measure_pins(&[pid("LAMP_F"), pid("LAMP_R")]) < 1.0);
    }

    #[test]
    fn unbound_pin_measures_stand_drive_only() {
        let mut d = device();
        let t = SimTime::from_millis(1);
        d.apply_pin(&pid("FLOATING"), PinDrive::Voltage(5.0), t);
        let v = d.measure_pins(&[pid("FLOATING")]);
        assert!((v - 5.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_must_be_monotone() {
        let mut d = device();
        d.advance_to(SimTime::from_secs(1));
        d.advance_to(SimTime::from_millis(1));
    }

    #[test]
    fn reset_clears_state() {
        let mut d = device();
        let t = SimTime::from_millis(1);
        d.write_can_field(CanFrameId(0x100), 0, 1, 1, t);
        d.apply_pin(&pid("SW"), PinDrive::ResistanceToGround(0.0), t);
        d.reset(SimTime::ZERO);
        assert_eq!(d.read_can_field(CanFrameId(0x100), 0, 1), None);
        assert!(d.measure_pins(&[pid("LAMP_F"), pid("LAMP_R")]) < 1.0);
    }
}
