//! Mutation-style fault injection.
//!
//! The paper motivates stand-independent tests as a way to "preserve the
//! knowledge about requirements of components, including bugs, that have
//! occured in the past".  To measure whether the reused sheets actually
//! catch such bugs, this module mutates DUTs with realistic component
//! faults; the fault-coverage campaign in `comptest-core` then reports which
//! faults each suite detects.
//!
//! Behaviour-level faults wrap the ECU model ([`FaultyBehavior`]);
//! electrical/bus faults mutate the [`Device`] ([`FaultKind::apply_to_device`]).

use std::collections::BTreeMap;
use std::fmt;

use comptest_model::{CanFrameId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::device::Device;

/// Delayed-output bookkeeping: the currently visible value plus a pending
/// change scheduled for a future time.
type DelayedOutput = (PortValue, Option<(SimTime, PortValue)>);

/// A component fault model.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// An output port is stuck at a fixed value (e.g. lamp always on).
    StuckOutput {
        /// The port.
        port: &'static str,
        /// The stuck value.
        value: PortValue,
    },
    /// A boolean output port is inverted (swapped driver polarity).
    InvertedOutput {
        /// The port.
        port: &'static str,
    },
    /// An input port is ignored (broken input conditioning).
    IgnoredInput {
        /// The port.
        port: &'static str,
    },
    /// All internal timers run scaled by `factor` (RC tolerance drift /
    /// wrong clock divider). `factor > 1` makes timeouts expire early.
    TimerScale {
        /// The time-scale factor.
        factor: f64,
    },
    /// An output port reacts late by `delay` (sluggish driver stage).
    OutputDelay {
        /// The port.
        port: &'static str,
        /// The reaction delay.
        delay: SimTime,
    },
    /// Input thresholds shifted by `delta × ubatt` (comparator drift).
    /// Device-level.
    ThresholdShift {
        /// Shift as a fraction of `ubatt`.
        delta: f64,
    },
    /// The DUT no longer receives one CAN frame (transceiver / filter bug).
    /// Device-level.
    DropCanFrame {
        /// The dropped frame.
        frame: CanFrameId,
    },
}

impl FaultKind {
    /// True for faults applied to the [`Device`] rather than the behaviour.
    pub fn is_device_level(&self) -> bool {
        matches!(
            self,
            FaultKind::ThresholdShift { .. } | FaultKind::DropCanFrame { .. }
        )
    }

    /// Applies a device-level fault. Returns `false` (and does nothing) for
    /// behaviour-level faults — wrap the behaviour in [`FaultyBehavior`]
    /// instead.
    pub fn apply_to_device(&self, device: &mut Device) -> bool {
        match self {
            FaultKind::ThresholdShift { delta } => {
                device.shift_thresholds(*delta);
                true
            }
            FaultKind::DropCanFrame { frame } => {
                device.drop_can_frame(*frame);
                true
            }
            _ => false,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckOutput { port, value } => write!(f, "stuck_{port}={value}"),
            FaultKind::InvertedOutput { port } => write!(f, "inverted_{port}"),
            FaultKind::IgnoredInput { port } => write!(f, "ignored_{port}"),
            FaultKind::TimerScale { factor } => write!(f, "timer_x{factor}"),
            FaultKind::OutputDelay { port, delay } => write!(f, "delay_{port}_{delay}"),
            FaultKind::ThresholdShift { delta } => write!(f, "threshold_shift_{delta}"),
            FaultKind::DropCanFrame { frame } => write!(f, "drop_can_{frame}"),
        }
    }
}

/// A behaviour wrapped with one or more behaviour-level faults.
#[derive(Debug)]
pub struct FaultyBehavior {
    inner: Box<dyn Behavior + Send>,
    faults: Vec<FaultKind>,
    name: String,
    /// Reset time, origin for timer scaling.
    t0: SimTime,
    /// Real current time.
    now: SimTime,
    /// Delayed-output bookkeeping: port → (visible value, pending change).
    delayed: BTreeMap<&'static str, DelayedOutput>,
}

impl FaultyBehavior {
    /// Wraps a behaviour.
    ///
    /// # Panics
    ///
    /// Panics if any fault is device-level (see
    /// [`FaultKind::apply_to_device`]).
    pub fn new(inner: Box<dyn Behavior + Send>, faults: Vec<FaultKind>) -> Self {
        assert!(
            faults.iter().all(|f| !f.is_device_level()),
            "device-level faults cannot wrap a behaviour"
        );
        let name = format!(
            "{}!{}",
            inner.name(),
            faults
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("+")
        );
        Self {
            inner,
            faults,
            name,
            t0: SimTime::ZERO,
            now: SimTime::ZERO,
            delayed: BTreeMap::new(),
        }
    }

    fn timer_factor(&self) -> f64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                FaultKind::TimerScale { factor } => Some(*factor),
                _ => None,
            })
            .unwrap_or(1.0)
    }

    /// Maps real time to the inner behaviour's (scaled) time.
    fn virt(&self, real: SimTime) -> SimTime {
        let factor = self.timer_factor();
        if factor == 1.0 {
            return real;
        }
        let dt = real.saturating_sub(self.t0).as_secs_f64() * factor;
        self.t0.saturating_add(SimTime::from_secs_f64(dt))
    }

    /// Maps an inner event time back to real time.
    fn real(&self, virt: SimTime) -> SimTime {
        let factor = self.timer_factor();
        if factor == 1.0 {
            return virt;
        }
        let dt = virt.saturating_sub(self.t0).as_secs_f64() / factor;
        self.t0.saturating_add(SimTime::from_secs_f64(dt))
    }

    /// The value of `port` after stuck/invert faults, before delays.
    fn source_value(&self, port: &str) -> PortValue {
        for fault in &self.faults {
            if let FaultKind::StuckOutput { port: p, value } = fault {
                if *p == port {
                    return *value;
                }
            }
        }
        let mut v = self.inner.output(port);
        for fault in &self.faults {
            if let FaultKind::InvertedOutput { port: p } = fault {
                if *p == port {
                    v = PortValue::Bool(!v.as_bool());
                }
            }
        }
        v
    }

    /// Updates delayed-output bookkeeping at real time `now`.
    fn refresh_delays(&mut self, now: SimTime) {
        let delay_ports: Vec<(&'static str, SimTime)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::OutputDelay { port, delay } => Some((*port, *delay)),
                _ => None,
            })
            .collect();
        for (port, delay) in delay_ports {
            let source = self.source_value(port);
            let entry = self.delayed.entry(port).or_insert((source, None));
            // Mature a pending change first.
            if let Some((at, v)) = entry.1 {
                if now >= at {
                    entry.0 = v;
                    entry.1 = None;
                }
            }
            // Schedule a new change if the source moved away from both the
            // visible value and any pending value.
            match entry.1 {
                Some((_, pending)) if pending == source => {}
                _ if entry.0 == source => entry.1 = None,
                _ => entry.1 = Some((now.saturating_add(delay), source)),
            }
        }
    }
}

impl Behavior for FaultyBehavior {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> &[&'static str] {
        self.inner.inputs()
    }

    fn outputs(&self) -> &[&'static str] {
        self.inner.outputs()
    }

    fn reset(&mut self, now: SimTime) {
        self.t0 = now;
        self.now = now;
        self.inner.reset(now);
        self.delayed.clear();
        self.refresh_delays(now);
    }

    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime) {
        self.now = now;
        let ignored = self.faults.iter().any(|f| match f {
            FaultKind::IgnoredInput { port: p } => *p == port,
            _ => false,
        });
        if !ignored {
            let virt = self.virt(now);
            self.inner.set_input(port, value, virt);
        }
        self.refresh_delays(now);
    }

    fn advance(&mut self, now: SimTime) {
        self.now = now;
        let virt = self.virt(now);
        self.inner.advance(virt);
        self.refresh_delays(now);
    }

    fn next_event(&self) -> Option<SimTime> {
        let mut next = self.inner.next_event().map(|t| self.real(t));
        for (_, pending) in self.delayed.values() {
            if let Some((at, _)) = pending {
                next = Some(next.map_or(*at, |n| n.min(*at)));
            }
        }
        next.filter(|t| *t > self.now)
    }

    fn output(&self, port: &str) -> PortValue {
        if let Some((visible, _)) = self.delayed.get(port) {
            return *visible;
        }
        self.source_value(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecus::interior_light::{self, InteriorLight, NIGHT_FRAME};
    use crate::elec::{ElectricalConfig, PinDrive};
    use comptest_model::PinId;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn faulty_device(faults: Vec<FaultKind>) -> Device {
        interior_light::device_with(
            ElectricalConfig::default(),
            Box::new(FaultyBehavior::new(Box::new(InteriorLight::new()), faults)),
        )
    }

    fn lamp(d: &Device) -> bool {
        d.measure_pins(&[pid("INT_ILL_F"), pid("INT_ILL_R")]) > 6.0
    }

    fn night_and_open(d: &mut Device) {
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, SimTime::from_millis(100));
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(1),
        );
    }

    #[test]
    fn stuck_output() {
        let mut d = faulty_device(vec![FaultKind::StuckOutput {
            port: "lamp",
            value: PortValue::Bool(true),
        }]);
        assert!(lamp(&d), "lamp stuck on from the start");
        night_and_open(&mut d);
        d.advance_to(SimTime::from_secs(400));
        assert!(lamp(&d), "still on after timeout — the fault is observable");
    }

    #[test]
    fn inverted_output() {
        let mut d = faulty_device(vec![FaultKind::InvertedOutput { port: "lamp" }]);
        assert!(lamp(&d), "off becomes on");
        night_and_open(&mut d);
        assert!(!lamp(&d), "on becomes off");
    }

    #[test]
    fn ignored_input() {
        let mut d = faulty_device(vec![FaultKind::IgnoredInput { port: "door_fl" }]);
        night_and_open(&mut d);
        assert!(!lamp(&d), "door_fl is dead, lamp stays off");
        // Another door still works.
        d.apply_pin(
            &pid("DS_FR"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(2),
        );
        assert!(lamp(&d));
    }

    #[test]
    fn timer_scale_expires_early() {
        // factor 1.5: the 300 s timeout expires after 200 real seconds.
        let mut d = faulty_device(vec![FaultKind::TimerScale { factor: 1.5 }]);
        night_and_open(&mut d);
        d.advance_to(SimTime::from_secs(1 + 150));
        assert!(lamp(&d), "150 s: still on");
        d.advance_to(SimTime::from_secs(1 + 210));
        assert!(!lamp(&d), "210 s: timed out early (healthy would be 300)");
    }

    #[test]
    fn timer_scale_expires_late() {
        let mut d = faulty_device(vec![FaultKind::TimerScale { factor: 0.5 }]);
        night_and_open(&mut d);
        d.advance_to(SimTime::from_secs(1 + 400));
        assert!(lamp(&d), "400 s: doubled timeout still running");
        d.advance_to(SimTime::from_secs(1 + 601));
        assert!(!lamp(&d));
    }

    #[test]
    fn output_delay() {
        let mut d = faulty_device(vec![FaultKind::OutputDelay {
            port: "lamp",
            delay: SimTime::from_millis(800),
        }]);
        night_and_open(&mut d);
        assert!(!lamp(&d), "immediately after the stimulus: still off");
        d.advance_to(SimTime::from_millis(1_500));
        assert!(!lamp(&d), "0.5 s later: still off");
        d.advance_to(SimTime::from_millis(1_900));
        assert!(lamp(&d), "after 0.8 s the lamp lights");
    }

    #[test]
    fn device_level_faults() {
        let mut d = interior_light::device(ElectricalConfig::default());
        assert!(FaultKind::DropCanFrame { frame: NIGHT_FRAME }.apply_to_device(&mut d));
        night_and_open(&mut d);
        assert!(!lamp(&d), "NIGHT never arrives");

        let mut d = interior_light::device(ElectricalConfig::default());
        assert!(FaultKind::ThresholdShift { delta: -0.25 }.apply_to_device(&mut d));
        // Thresholds now 5 % / 45 %: a legitimate `Closed` (200 kΩ → ~95 %)
        // still reads high, but a marginal mid-band voltage misreads.
        night_and_open(&mut d);
        assert!(lamp(&d), "0 Ω still under the shifted low threshold");

        // Behaviour faults are not device faults.
        let f = FaultKind::IgnoredInput { port: "night" };
        let mut d = interior_light::device(ElectricalConfig::default());
        assert!(!f.apply_to_device(&mut d));
    }

    #[test]
    #[should_panic(expected = "device-level")]
    fn wrapping_device_fault_panics() {
        let _ = FaultyBehavior::new(
            Box::new(InteriorLight::new()),
            vec![FaultKind::ThresholdShift { delta: 0.1 }],
        );
    }

    #[test]
    fn fault_names_are_descriptive() {
        assert_eq!(
            FaultKind::InvertedOutput { port: "lamp" }.to_string(),
            "inverted_lamp"
        );
        assert_eq!(
            FaultKind::TimerScale { factor: 1.5 }.to_string(),
            "timer_x1.5"
        );
        let fb = FaultyBehavior::new(
            Box::new(InteriorLight::new()),
            vec![FaultKind::InvertedOutput { port: "lamp" }],
        );
        assert_eq!(fb.name(), "interior_light!inverted_lamp");
    }
}
