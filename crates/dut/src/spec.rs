//! [`DeviceSpec`]: a portable recipe for rebuilding a registry device.
//!
//! The distributed executor ships jobs to worker processes; a `Device`
//! itself is not serializable (it owns a boxed behaviour), but every device
//! built by a named [`crate::ecus`] constructor can be *respecified*: its
//! behaviour name, electrical configuration and dropped-CAN-frame fault set
//! are enough to rebuild a bit-identical instance anywhere the same binary
//! runs. Devices with custom behaviours (fault wrappers, test doubles)
//! report no spec ([`Device::spec`] returns `None`) and must execute in the
//! process that built them.

use comptest_model::CanFrameId;

use crate::device::Device;
use crate::ecus;
use crate::elec::ElectricalConfig;

/// A portable specification of a registry-built [`Device`].
///
/// Obtained from [`Device::spec`]; turned back into a device with
/// [`realize`](DeviceSpec::realize). The round trip preserves electrical
/// thresholds (including [`Device::shift_thresholds`] shifts, which mutate
/// the captured config) and replays [`Device::drop_can_frame`] faults.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Registry behaviour name (an entry of [`ecus::NAMES`]).
    pub behavior: String,
    /// Electrical configuration at capture time.
    pub cfg: ElectricalConfig,
    /// CAN frames the device ignores, in drop order.
    pub dropped_frames: Vec<CanFrameId>,
}

impl DeviceSpec {
    /// Rebuilds the device, or `None` if the behaviour name is not in the
    /// registry (a spec deserialized from an incompatible peer).
    pub fn realize(&self) -> Option<Device> {
        let mut device = ecus::device_by_name(&self.behavior, self.cfg)?;
        for frame in &self.dropped_frames {
            device.drop_can_frame(*frame);
        }
        Some(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Behavior, PortValue};
    use comptest_model::SimTime;

    #[test]
    fn registry_devices_round_trip_through_spec() {
        for name in ecus::NAMES {
            let mut original =
                ecus::device_by_name(name, ElectricalConfig::default()).expect("registry name");
            original.shift_thresholds(0.05);
            original.drop_can_frame(CanFrameId(0x123));
            let spec = original.spec().expect("registry device has a spec");
            assert_eq!(spec.behavior, name);
            let rebuilt = spec.realize().expect("spec realizes");
            assert_eq!(rebuilt.behavior_name(), original.behavior_name());
            assert_eq!(rebuilt.config(), original.config());
            assert_eq!(rebuilt.dropped_frames(), original.dropped_frames());
        }
    }

    #[derive(Debug)]
    struct Custom;

    impl Behavior for Custom {
        fn name(&self) -> &str {
            // Deliberately an in-registry name: provenance, not the name,
            // must decide whether a spec exists.
            "interior_light"
        }
        fn inputs(&self) -> &[&'static str] {
            &[]
        }
        fn outputs(&self) -> &[&'static str] {
            &[]
        }
        fn reset(&mut self, _now: SimTime) {}
        fn set_input(&mut self, _port: &str, _value: PortValue, _now: SimTime) {}
        fn advance(&mut self, _now: SimTime) {}
        fn next_event(&self) -> Option<SimTime> {
            None
        }
        fn output(&self, _port: &str) -> PortValue {
            PortValue::Bool(false)
        }
    }

    #[test]
    fn custom_devices_have_no_spec_even_with_a_registry_name() {
        let device = Device::builder(Box::new(Custom)).build();
        assert!(device.spec().is_none());
    }

    #[test]
    fn unknown_behavior_fails_to_realize() {
        let spec = DeviceSpec {
            behavior: "toaster".into(),
            cfg: ElectricalConfig::default(),
            dropped_frames: Vec::new(),
        };
        assert!(spec.realize().is_none());
    }
}
