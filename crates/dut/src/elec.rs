//! The electrical pin model.
//!
//! Just enough circuit theory for component tests: every pin sees at most
//! two Thévenin sources — the DUT side (internal pull-up or push-pull
//! driver) and the stand side (resistor decade to ground, voltage source, or
//! nothing).  The pin voltage is the parallel combination; digital inputs
//! quantise it with hysteresis, so a marginal resistance (e.g. exactly at
//! the divider midpoint) genuinely leaves the previous state latched — as on
//! real hardware.

use std::fmt;

/// Electrical constants of a DUT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalConfig {
    /// Supply voltage in volts (the stand variable `ubatt`).
    pub ubatt: f64,
    /// Internal pull-up on digital inputs, in ohms.
    pub pull_up: f64,
    /// Low threshold as a fraction of `ubatt` (input ≤ this reads low).
    pub low_threshold: f64,
    /// High threshold as a fraction of `ubatt` (input ≥ this reads high).
    pub high_threshold: f64,
    /// Output driver source resistance in ohms.
    pub drive_resistance: f64,
}

impl Default for ElectricalConfig {
    /// 12 V system, 10 kΩ pull-ups, 30 %/70 % thresholds, 1 Ω drivers.
    fn default() -> Self {
        Self {
            ubatt: 12.0,
            pull_up: 10_000.0,
            low_threshold: 0.3,
            high_threshold: 0.7,
            drive_resistance: 1.0,
        }
    }
}

/// What the test stand applies to a pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PinDrive {
    /// Nothing connected (or a measurement instrument: ideal high-Z).
    HighZ,
    /// A resistance to ground (resistor decade). `f64::INFINITY` is a true
    /// open circuit.
    ResistanceToGround(f64),
    /// A stiff voltage source.
    Voltage(f64),
}

impl fmt::Display for PinDrive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinDrive::HighZ => f.write_str("high-Z"),
            PinDrive::ResistanceToGround(r) => {
                write!(f, "{}Ω→GND", comptest_model::value::number_to_string(*r))
            }
            PinDrive::Voltage(v) => write!(f, "{v}V"),
        }
    }
}

/// What the DUT itself does on a pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DutPinMode {
    /// Digital input with internal pull-up to `ubatt`.
    InputPullUp,
    /// Push-pull output driving `level × ubatt` (level in 0..=1).
    OutputPushPull {
        /// Drive level as a fraction of `ubatt`.
        level: f64,
    },
    /// Ground return terminal (e.g. the lamp's second pin).
    Ground,
    /// Not driven by the DUT.
    HighZ,
}

/// A Thévenin source: open-circuit voltage and series resistance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Source {
    v: f64,
    r: f64,
}

fn dut_source(cfg: &ElectricalConfig, mode: DutPinMode) -> Option<Source> {
    match mode {
        DutPinMode::InputPullUp => Some(Source {
            v: cfg.ubatt,
            r: cfg.pull_up,
        }),
        DutPinMode::OutputPushPull { level } => Some(Source {
            v: level.clamp(0.0, 1.0) * cfg.ubatt,
            r: cfg.drive_resistance,
        }),
        DutPinMode::Ground => Some(Source {
            v: 0.0,
            r: cfg.drive_resistance,
        }),
        DutPinMode::HighZ => None,
    }
}

fn stand_source(drive: PinDrive) -> Option<Source> {
    match drive {
        PinDrive::HighZ => None,
        PinDrive::ResistanceToGround(r) if r.is_infinite() => None,
        PinDrive::ResistanceToGround(r) => Some(Source { v: 0.0, r }),
        PinDrive::Voltage(v) => Some(Source { v, r: 0.1 }),
    }
}

/// Computes the voltage at a pin given both sides.
///
/// A completely floating pin (both sides high-Z) reads 0 V, which is what a
/// real DVM's input bias resistors would show.
pub fn pin_voltage(cfg: &ElectricalConfig, mode: DutPinMode, drive: PinDrive) -> f64 {
    const R_MIN: f64 = 1e-3;
    let sources: Vec<Source> = [dut_source(cfg, mode), stand_source(drive)]
        .into_iter()
        .flatten()
        .collect();
    if sources.is_empty() {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for s in &sources {
        let r = s.r.max(R_MIN);
        num += s.v / r;
        den += 1.0 / r;
    }
    num / den
}

/// A digital input with hysteresis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalInput {
    /// Latched logic state (`true` = high).
    high: bool,
}

impl DigitalInput {
    /// Creates an input that initially reads high (pull-up, nothing
    /// connected).
    pub fn new() -> Self {
        Self { high: true }
    }

    /// Feeds a new pin voltage; returns the (possibly unchanged) state.
    pub fn update(&mut self, v: f64, cfg: &ElectricalConfig) -> bool {
        if v <= cfg.low_threshold * cfg.ubatt {
            self.high = false;
        } else if v >= cfg.high_threshold * cfg.ubatt {
            self.high = true;
        }
        self.high
    }

    /// The latched state.
    pub fn is_high(&self) -> bool {
        self.high
    }
}

impl Default for DigitalInput {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ElectricalConfig {
        ElectricalConfig::default()
    }

    #[test]
    fn door_switch_divider() {
        // Decade at 0 Ω pulls the input to ground.
        let v = pin_voltage(
            &cfg(),
            DutPinMode::InputPullUp,
            PinDrive::ResistanceToGround(0.0),
        );
        assert!(v < 0.1, "grounded pin reads ~0, got {v}");
        // Open circuit: the pull-up wins.
        let v = pin_voltage(
            &cfg(),
            DutPinMode::InputPullUp,
            PinDrive::ResistanceToGround(f64::INFINITY),
        );
        assert!((v - 12.0).abs() < 1e-9);
        // 10 kΩ against the 10 kΩ pull-up: exactly half.
        let v = pin_voltage(
            &cfg(),
            DutPinMode::InputPullUp,
            PinDrive::ResistanceToGround(10_000.0),
        );
        assert!((v - 6.0).abs() < 1e-6);
        // 1 MΩ: nearly ubatt.
        let v = pin_voltage(
            &cfg(),
            DutPinMode::InputPullUp,
            PinDrive::ResistanceToGround(1e6),
        );
        assert!(v > 0.9 * 12.0);
    }

    #[test]
    fn output_driver_levels() {
        let v = pin_voltage(
            &cfg(),
            DutPinMode::OutputPushPull { level: 1.0 },
            PinDrive::HighZ,
        );
        assert!((v - 12.0).abs() < 1e-9);
        let v = pin_voltage(
            &cfg(),
            DutPinMode::OutputPushPull { level: 0.0 },
            PinDrive::HighZ,
        );
        assert!(v.abs() < 1e-9);
        // A load barely budges the stiff driver.
        let v = pin_voltage(
            &cfg(),
            DutPinMode::OutputPushPull { level: 1.0 },
            PinDrive::ResistanceToGround(1000.0),
        );
        assert!(v > 11.9);
    }

    #[test]
    fn voltage_source_dominates_pull_up() {
        let v = pin_voltage(&cfg(), DutPinMode::InputPullUp, PinDrive::Voltage(3.3));
        assert!((v - 3.3).abs() < 0.1, "stiff source wins, got {v}");
    }

    #[test]
    fn floating_pin_reads_zero() {
        assert_eq!(pin_voltage(&cfg(), DutPinMode::HighZ, PinDrive::HighZ), 0.0);
    }

    #[test]
    fn ground_return_reads_zero() {
        let v = pin_voltage(&cfg(), DutPinMode::Ground, PinDrive::HighZ);
        assert!(v.abs() < 1e-9);
    }

    #[test]
    fn hysteresis_latches_mid_band() {
        let c = cfg();
        let mut input = DigitalInput::new();
        assert!(input.is_high());
        // Mid-band voltage: stays high.
        assert!(input.update(0.5 * c.ubatt, &c));
        // Below low threshold: goes low.
        assert!(!input.update(0.2 * c.ubatt, &c));
        // Back to mid-band: stays low (hysteresis).
        assert!(!input.update(0.5 * c.ubatt, &c));
        // Above high threshold: goes high again.
        assert!(input.update(0.8 * c.ubatt, &c));
    }

    #[test]
    fn paper_closed_status_reads_high() {
        // `Closed` realised as 200 kΩ (the small decade's maximum) must read
        // as a released (high) input: 12·2e5/2.1e5 ≈ 11.4 V.
        let c = cfg();
        let v = pin_voltage(
            &c,
            DutPinMode::InputPullUp,
            PinDrive::ResistanceToGround(2e5),
        );
        let mut input = DigitalInput::new();
        assert!(input.update(v, &c));
        assert!(v >= c.high_threshold * c.ubatt);
    }
}
