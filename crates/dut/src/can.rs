//! A CAN bus carrying bit-field mapped signals.
//!
//! Payloads are modelled as a 64-bit field space per frame id (classic CAN's
//! 8 data bytes).  Both the test stand and the DUT read and write fields;
//! signal packing follows the `can:<frame>:<start_bit>:<width>` notation of
//! the signal sheets (LSB-first bit numbering).

use std::collections::BTreeMap;

use comptest_model::CanFrameId;

/// The shared bus state: last-seen payload per frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CanBus {
    frames: BTreeMap<CanFrameId, u64>,
    tx_count: u64,
}

impl CanBus {
    /// An empty bus (no frame seen yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a bit field, transmitting the updated frame. Creates the frame
    /// with an all-zero payload if it was never seen.
    ///
    /// Bits outside the field are preserved — multiple signals share frames.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or `start_bit + width > 64` (signal kinds are
    /// validated long before they reach the bus).
    pub fn write_field(&mut self, frame: CanFrameId, start_bit: u8, width: u8, value: u64) {
        assert!(
            width > 0 && start_bit as u16 + width as u16 <= 64,
            "field out of range"
        );
        let mask = field_mask(start_bit, width);
        let payload = self.frames.entry(frame).or_insert(0);
        *payload = (*payload & !mask) | ((value << start_bit) & mask);
        self.tx_count += 1;
    }

    /// Reads a bit field. `None` if the frame was never transmitted.
    pub fn read_field(&self, frame: CanFrameId, start_bit: u8, width: u8) -> Option<u64> {
        assert!(
            width > 0 && start_bit as u16 + width as u16 <= 64,
            "field out of range"
        );
        self.frames
            .get(&frame)
            .map(|payload| (payload >> start_bit) & low_mask(width))
    }

    /// The raw payload of a frame, if ever transmitted.
    pub fn frame(&self, frame: CanFrameId) -> Option<u64> {
        self.frames.get(&frame).copied()
    }

    /// Number of transmissions since construction (stimuli + DUT traffic).
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Clears all frames (device reset).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.tx_count = 0;
    }
}

fn low_mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn field_mask(start_bit: u8, width: u8) -> u64 {
    low_mask(width) << start_bit
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: CanFrameId = CanFrameId(0x130);

    #[test]
    fn write_read_roundtrip() {
        let mut bus = CanBus::new();
        assert_eq!(bus.read_field(F, 0, 4), None);
        bus.write_field(F, 0, 4, 0b0001);
        assert_eq!(bus.read_field(F, 0, 4), Some(1));
        assert_eq!(bus.frame(F), Some(1));
    }

    #[test]
    fn fields_share_frames_without_clobbering() {
        let mut bus = CanBus::new();
        bus.write_field(F, 0, 4, 0b1111);
        bus.write_field(F, 4, 2, 0b10);
        assert_eq!(bus.read_field(F, 0, 4), Some(0b1111));
        assert_eq!(bus.read_field(F, 4, 2), Some(0b10));
        // Overwrite the first field; second stays.
        bus.write_field(F, 0, 4, 0);
        assert_eq!(bus.read_field(F, 0, 4), Some(0));
        assert_eq!(bus.read_field(F, 4, 2), Some(0b10));
    }

    #[test]
    fn value_is_masked_to_width() {
        let mut bus = CanBus::new();
        bus.write_field(F, 2, 2, 0b1111);
        assert_eq!(bus.read_field(F, 2, 2), Some(0b11));
        assert_eq!(bus.read_field(F, 0, 2), Some(0));
    }

    #[test]
    fn full_width_field() {
        let mut bus = CanBus::new();
        bus.write_field(F, 0, 64, u64::MAX);
        assert_eq!(bus.read_field(F, 0, 64), Some(u64::MAX));
    }

    #[test]
    fn tx_count_and_clear() {
        let mut bus = CanBus::new();
        bus.write_field(F, 0, 1, 1);
        bus.write_field(F, 0, 1, 0);
        assert_eq!(bus.tx_count(), 2);
        bus.clear();
        assert_eq!(bus.tx_count(), 0);
        assert_eq!(bus.frame(F), None);
    }

    #[test]
    #[should_panic(expected = "field out of range")]
    fn oversized_field_panics() {
        let mut bus = CanBus::new();
        bus.write_field(F, 60, 8, 0);
    }
}
