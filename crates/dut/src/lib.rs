//! Simulated devices under test (DUTs).
//!
//! The paper tests real ECUs on real lab hardware; this crate supplies the
//! synthetic equivalent so the whole methodology can run on a laptop:
//!
//! * [`elec`] — a small electrical model: DUT pins with pull-ups or
//!   push-pull drivers, stand-side drives (resistance to ground, voltage
//!   source, high-Z), Thévenin combination, and digital inputs with
//!   hysteresis;
//! * [`can`] — a CAN bus carrying bit-field mapped signals;
//! * [`behavior`] — the event-driven [`Behavior`] trait ECU models
//!   implement (timers are simulation events, so a 300 s interior-light
//!   timeout costs nothing to simulate);
//! * [`device`] — [`Device`] binds a behaviour's ports to pins and CAN
//!   fields; the execution engine talks to devices only;
//! * [`ecus`] — the ECU library: the paper's interior-light controller plus
//!   wiper, power-window and central-locking models;
//! * [`fault`] — mutation-style fault injection (stuck/inverted outputs,
//!   ignored inputs, scaled timers, delayed outputs, electrical threshold
//!   shifts, dropped CAN frames) used to measure what the reused test sheets
//!   actually detect.
//!
//! # Example
//!
//! ```
//! use comptest_dut::ecus::interior_light;
//! use comptest_dut::elec::PinDrive;
//! use comptest_model::{PinId, SimTime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dut = interior_light::device(Default::default());
//! let t0 = SimTime::ZERO;
//! dut.reset(t0);
//! // Night bit on, driver door open: lamp lights.
//! dut.write_can_field(interior_light::NIGHT_FRAME, 0, 1, 1, t0);
//! dut.apply_pin(&PinId::new("DS_FL")?, PinDrive::ResistanceToGround(0.0), t0);
//! let t1 = SimTime::from_millis(500);
//! dut.advance_to(t1);
//! let v = dut.measure_pins(&[PinId::new("INT_ILL_F")?, PinId::new("INT_ILL_R")?]);
//! assert!(v > 0.7 * 12.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod can;
pub mod device;
pub mod ecus;
pub mod elec;
pub mod fault;
pub mod spec;

pub use behavior::{Behavior, PortValue};
pub use can::CanBus;
pub use device::{Device, DeviceBuilder, PinBinding};
pub use elec::{DigitalInput, ElectricalConfig, PinDrive};
pub use fault::{FaultKind, FaultyBehavior};
pub use spec::DeviceSpec;
