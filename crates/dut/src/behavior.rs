//! The event-driven behaviour interface ECU models implement.
//!
//! Behaviours are sampled-state machines with scheduled internal events
//! (timers).  The engine drives them with this contract:
//!
//! 1. [`Behavior::reset`] once at test start;
//! 2. [`Behavior::advance`] *to the current time* before any input change or
//!    output query — behaviours never see time move backwards;
//! 3. [`Behavior::set_input`] whenever a bound port's value changes;
//! 4. [`Behavior::next_event`] after every interaction: if `Some(t)`, the
//!    engine guarantees an [`advance`](Behavior::advance) call at `t` (or
//!    earlier).  Events in the past are processed immediately.

use std::fmt;

use comptest_model::SimTime;

/// A value on a behaviour port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortValue {
    /// A logic level (switch pressed, lamp on, …).
    Bool(bool),
    /// A multi-bit field (CAN-mapped values).
    Bits(u64),
}

impl PortValue {
    /// The boolean, coercing bits (`0` = false).
    pub fn as_bool(self) -> bool {
        match self {
            PortValue::Bool(b) => b,
            PortValue::Bits(v) => v != 0,
        }
    }

    /// The raw bits (`true` = 1).
    pub fn as_bits(self) -> u64 {
        match self {
            PortValue::Bool(b) => b as u64,
            PortValue::Bits(v) => v,
        }
    }
}

impl fmt::Display for PortValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortValue::Bool(b) => write!(f, "{b}"),
            PortValue::Bits(v) => write!(f, "{v:#b}"),
        }
    }
}

/// An ECU model. See the [module docs](self) for the driving contract.
pub trait Behavior: fmt::Debug {
    /// Model name, for reports.
    fn name(&self) -> &str;

    /// Input port names.
    fn inputs(&self) -> &[&'static str];

    /// Output port names.
    fn outputs(&self) -> &[&'static str];

    /// Re-initialises all state at time `now`.
    fn reset(&mut self, now: SimTime);

    /// Applies an input-port change at time `now`. Unknown ports are
    /// ignored (a wiring mistake shows up as a failed check, as on a real
    /// bench, not as a crash).
    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime);

    /// Processes internal events up to and including `now`.
    fn advance(&mut self, now: SimTime);

    /// The next scheduled internal event, if any.
    fn next_event(&self) -> Option<SimTime>;

    /// Reads an output port. Unknown ports read `Bool(false)`.
    fn output(&self, port: &str) -> PortValue;

    /// A stable rendering of the *slice* of this behaviour's configuration
    /// and dynamics that can influence `port` — the footprint-keyed cache
    /// hashes it instead of the whole behaviour, so edits to unrelated
    /// sub-blocks of a composite behaviour do not invalidate cells that
    /// never touch them.
    ///
    /// Contract: the returned string must cover **everything** that can
    /// change the port's observable waveform for any input sequence —
    /// configuration fields, timer constants, fault injections, couplings
    /// to other ports. When two configurations render the same slice for a
    /// port, the cache may serve one's recorded outcome for the other.
    /// When in doubt, include more (or return `None`).
    ///
    /// The default returns `None`, which makes footprint keying fall back
    /// to hashing the entire device — exactly as conservative as full
    /// keying, never less safe.
    fn port_slice(&self, _port: &str) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_value_coercions() {
        assert!(PortValue::Bool(true).as_bool());
        assert!(!PortValue::Bits(0).as_bool());
        assert!(PortValue::Bits(4).as_bool());
        assert_eq!(PortValue::Bool(true).as_bits(), 1);
        assert_eq!(PortValue::Bits(0b101).as_bits(), 5);
        assert_eq!(PortValue::Bool(false).to_string(), "false");
        assert_eq!(PortValue::Bits(5).to_string(), "0b101");
    }
}
