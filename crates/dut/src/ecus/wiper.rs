//! A windscreen-wiper controller: stalk modes, intermittent cycling and
//! wash-wipe follow-up.

use comptest_model::{CanFrameId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::device::{Device, PinBinding};
use crate::elec::ElectricalConfig;

/// The frame carrying the 2-bit stalk position (`WIPER_ST`).
pub const STALK_FRAME: CanFrameId = CanFrameId(0x240);
/// Intermittent mode: wipe duration.
pub const WIPE_ON: SimTime = SimTime::from_secs(1);
/// Intermittent mode: pause duration.
pub const WIPE_PAUSE: SimTime = SimTime::from_secs(3);
/// Wash-wipe follow-up duration after the wash button is released.
pub const WASH_FOLLOW_UP: SimTime = SimTime::from_secs(2);

/// Stalk positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Intermittent,
    Slow,
    Fast,
}

impl Mode {
    fn from_bits(v: u64) -> Mode {
        match v & 0b11 {
            0 => Mode::Off,
            1 => Mode::Intermittent,
            2 => Mode::Slow,
            _ => Mode::Fast,
        }
    }
}

/// The wiper behaviour.
#[derive(Debug)]
pub struct Wiper {
    mode: Mode,
    wash: bool,
    /// End of the wash follow-up window, if armed.
    follow_until: Option<SimTime>,
    /// Intermittent phase: currently wiping?
    phase_on: bool,
    /// End of the current intermittent phase.
    phase_end: SimTime,
    now: SimTime,
}

impl Wiper {
    /// Creates the behaviour.
    pub fn new() -> Self {
        Self {
            mode: Mode::Off,
            wash: false,
            follow_until: None,
            phase_on: false,
            phase_end: SimTime::MAX,
            now: SimTime::ZERO,
        }
    }

    fn motor_on(&self) -> bool {
        match self.mode {
            Mode::Slow | Mode::Fast => true,
            Mode::Intermittent => self.phase_on || self.wash || self.follow_active(),
            Mode::Off => self.wash || self.follow_active(),
        }
    }

    fn follow_active(&self) -> bool {
        self.follow_until.is_some_and(|t| self.now < t)
    }

    fn start_cycle(&mut self, now: SimTime) {
        self.phase_on = true;
        self.phase_end = now.saturating_add(WIPE_ON);
    }
}

impl Default for Wiper {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for Wiper {
    fn name(&self) -> &str {
        "wiper"
    }

    fn inputs(&self) -> &[&'static str] {
        &["stalk", "wash"]
    }

    fn outputs(&self) -> &[&'static str] {
        &["motor", "fast"]
    }

    fn reset(&mut self, now: SimTime) {
        *self = Wiper::new();
        self.now = now;
    }

    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime) {
        self.advance(now);
        match port {
            "stalk" => {
                let new_mode = Mode::from_bits(value.as_bits());
                if new_mode != self.mode {
                    self.mode = new_mode;
                    if new_mode == Mode::Intermittent {
                        self.start_cycle(now);
                    } else {
                        self.phase_end = SimTime::MAX;
                        self.phase_on = false;
                    }
                }
            }
            "wash" => {
                let pressed = value.as_bool();
                if self.wash && !pressed {
                    // Release: follow-up wipes.
                    self.follow_until = Some(now.saturating_add(WASH_FOLLOW_UP));
                }
                self.wash = pressed;
            }
            _ => {}
        }
    }

    fn advance(&mut self, now: SimTime) {
        self.now = now;
        if self.mode == Mode::Intermittent {
            while self.phase_end <= now {
                self.phase_on = !self.phase_on;
                let dur = if self.phase_on { WIPE_ON } else { WIPE_PAUSE };
                self.phase_end = self.phase_end.saturating_add(dur);
            }
        }
        if let Some(t) = self.follow_until {
            if now >= t {
                self.follow_until = None;
            }
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        if self.mode == Mode::Intermittent && self.phase_end != SimTime::MAX {
            next = Some(self.phase_end);
        }
        if let Some(t) = self.follow_until {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next.filter(|t| *t > self.now)
    }

    fn output(&self, port: &str) -> PortValue {
        match port {
            "motor" => PortValue::Bool(self.motor_on()),
            "fast" => PortValue::Bool(self.mode == Mode::Fast),
            _ => PortValue::Bool(false),
        }
    }
}

/// Builds the wiper DUT: `WASH_SW` (active low), motor outputs
/// `MOTOR_F`/`MOTOR_R` and `FAST_F`, stalk on CAN `0x240:0:2`.
pub fn device(cfg: ElectricalConfig) -> Device {
    let mut device = device_with(cfg, Box::new(Wiper::new()));
    device.mark_registry();
    device
}

/// Builds the device around a custom behaviour (fault injection).
pub fn device_with(cfg: ElectricalConfig, behavior: Box<dyn Behavior + Send>) -> Device {
    Device::builder(behavior)
        .config(cfg)
        .pin("WASH_SW", PinBinding::InputActiveLow { port: "wash" })
        .pin("MOTOR_F", PinBinding::Output { port: "motor" })
        .pin("MOTOR_R", PinBinding::Return)
        .pin("FAST_F", PinBinding::Output { port: "fast" })
        .can_input(STALK_FRAME.0, 0, 2, "stalk")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elec::PinDrive;
    use comptest_model::PinId;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn motor(d: &Device) -> bool {
        d.measure_pins(&[pid("MOTOR_F"), pid("MOTOR_R")]) > 6.0
    }

    #[test]
    fn continuous_modes() {
        let mut d = device(ElectricalConfig::default());
        assert!(!motor(&d));
        d.write_can_field(STALK_FRAME, 0, 2, 2, SimTime::from_secs(1)); // slow
        assert!(motor(&d));
        d.write_can_field(STALK_FRAME, 0, 2, 3, SimTime::from_secs(2)); // fast
        assert!(motor(&d));
        assert!(d.measure_pins(&[pid("FAST_F")]) > 6.0);
        d.write_can_field(STALK_FRAME, 0, 2, 0, SimTime::from_secs(3)); // off
        assert!(!motor(&d));
    }

    #[test]
    fn intermittent_cycles_1s_on_3s_off() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::from_secs(10));
        // Phase 1: wiping for 1 s.
        d.advance_to(SimTime::from_millis(10_500));
        assert!(motor(&d), "wiping at +0.5s");
        // Pause: 1 s .. 4 s.
        d.advance_to(SimTime::from_millis(12_000));
        assert!(!motor(&d), "paused at +2s");
        // Next wipe: 4 s .. 5 s.
        d.advance_to(SimTime::from_millis(14_500));
        assert!(motor(&d), "wiping again at +4.5s");
        // And pausing again.
        d.advance_to(SimTime::from_millis(16_000));
        assert!(!motor(&d), "paused at +6s");
    }

    #[test]
    fn wash_wipe_with_follow_up() {
        let mut d = device(ElectricalConfig::default());
        // Press wash at t=1 (active low).
        d.apply_pin(
            &pid("WASH_SW"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(1),
        );
        assert!(motor(&d), "washing wipes");
        // Release at t=3: follow-up until t=5.
        d.apply_pin(
            &pid("WASH_SW"),
            PinDrive::ResistanceToGround(f64::INFINITY),
            SimTime::from_secs(3),
        );
        d.advance_to(SimTime::from_secs(4));
        assert!(motor(&d), "follow-up wipe at +1s");
        d.advance_to(SimTime::from_millis(5_100));
        assert!(!motor(&d), "follow-up over");
    }

    #[test]
    fn mode_change_resets_cycle() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::from_secs(0));
        d.advance_to(SimTime::from_millis(2_000)); // in pause
        assert!(!motor(&d));
        // Switch to off and back to intermittent: a fresh wipe starts.
        d.write_can_field(STALK_FRAME, 0, 2, 0, SimTime::from_millis(2_100));
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::from_millis(2_200));
        d.advance_to(SimTime::from_millis(2_700));
        assert!(motor(&d), "new cycle starts wiping immediately");
    }

    #[test]
    fn long_advance_is_cheap_and_correct() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::ZERO);
        // One hour later the 4-second cycle is still phase-aligned:
        // t = 3600 s = 900 cycles exactly -> wiping phase just began.
        d.advance_to(SimTime::from_secs(3600));
        assert!(motor(&d));
        d.advance_to(SimTime::from_millis(3_601_500));
        assert!(!motor(&d));
    }
}
