//! The ECU library.
//!
//! [`interior_light`] is the paper's running example (Section 3).  The
//! others stand in for the "two ECUs of the next S-class" of Section 5 and
//! give the fault-injection experiments a varied population: combinational
//! logic, periodic timers, travel integration and command/response CAN
//! traffic.

pub mod central_lock;
pub mod flasher;
pub mod interior_light;
pub mod power_window;
pub mod wiper;

use crate::device::Device;
use crate::elec::ElectricalConfig;

/// The behaviour names of every ECU in the library, in catalog order —
/// the single source of truth for "all bundled ECUs" (suite files are
/// `assets/<name>.cts`, behaviours resolve via [`device_by_name`]).
pub const NAMES: [&str; 5] = [
    "interior_light",
    "wiper",
    "power_window",
    "central_lock",
    "flasher",
];

/// Instantiates every ECU in the library (used by campaign experiments).
pub fn all_devices(cfg: ElectricalConfig) -> Vec<Device> {
    vec![
        interior_light::device(cfg),
        wiper::device(cfg),
        power_window::device(cfg),
        central_lock::device(cfg),
        flasher::device(cfg),
    ]
}

/// Instantiates an ECU by its behaviour name.
pub fn device_by_name(name: &str, cfg: ElectricalConfig) -> Option<Device> {
    match name.to_ascii_lowercase().as_str() {
        "interior_light" => Some(interior_light::device(cfg)),
        "wiper" => Some(wiper::device(cfg)),
        "power_window" => Some(power_window::device(cfg)),
        "central_lock" => Some(central_lock::device(cfg)),
        "flasher" => Some(flasher::device(cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete() {
        let devices = all_devices(ElectricalConfig::default());
        assert_eq!(devices.len(), NAMES.len());
        for (d, name) in devices.iter().zip(NAMES) {
            assert_eq!(d.behavior_name(), name, "NAMES order matches catalog");
            assert!(device_by_name(d.behavior_name(), ElectricalConfig::default()).is_some());
        }
        assert!(device_by_name("toaster", ElectricalConfig::default()).is_none());
    }
}
