//! A central-locking controller: CAN lock/unlock commands, crash unlock,
//! and comfort auto-relock.

use comptest_model::{CanFrameId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::device::{Device, PinBinding};
use crate::elec::ElectricalConfig;

/// The frame carrying the lock (`bit 0`) and unlock (`bit 1`) commands.
pub const CMD_FRAME: CanFrameId = CanFrameId(0x2F0);
/// The frame on which the controller reports its state (`bit 0` = locked).
pub const STATUS_FRAME: CanFrameId = CanFrameId(0x2F8);
/// Auto-relock delay: an unlocked, untouched car relocks after this time.
pub const AUTO_RELOCK: SimTime = SimTime::from_secs(60);

/// The central-locking behaviour.
#[derive(Debug)]
pub struct CentralLock {
    locked: bool,
    crash: bool,
    lock_cmd: bool,
    unlock_cmd: bool,
    /// Auto-relock deadline, armed by an unlock command.
    relock_at: Option<SimTime>,
    now: SimTime,
}

impl CentralLock {
    /// Creates the behaviour (unlocked, no crash).
    pub fn new() -> Self {
        Self {
            locked: false,
            crash: false,
            lock_cmd: false,
            unlock_cmd: false,
            relock_at: None,
            now: SimTime::ZERO,
        }
    }
}

impl Default for CentralLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for CentralLock {
    fn name(&self) -> &str {
        "central_lock"
    }

    fn inputs(&self) -> &[&'static str] {
        &["lock_cmd", "unlock_cmd", "crash"]
    }

    fn outputs(&self) -> &[&'static str] {
        &["actuator", "locked"]
    }

    fn reset(&mut self, now: SimTime) {
        *self = CentralLock::new();
        self.now = now;
    }

    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime) {
        self.advance(now);
        match port {
            "lock_cmd" => {
                let cmd = value.as_bool();
                if cmd && !self.lock_cmd && !self.crash {
                    self.locked = true;
                    self.relock_at = None;
                }
                self.lock_cmd = cmd;
            }
            "unlock_cmd" => {
                let cmd = value.as_bool();
                if cmd && !self.unlock_cmd {
                    self.locked = false;
                    self.relock_at = Some(now.saturating_add(AUTO_RELOCK));
                }
                self.unlock_cmd = cmd;
            }
            "crash" => {
                let crash = value.as_bool();
                if crash && !self.crash {
                    // Crash: unlock immediately and stay unlocked.
                    self.locked = false;
                    self.relock_at = None;
                }
                self.crash = crash;
            }
            _ => {}
        }
    }

    fn advance(&mut self, now: SimTime) {
        self.now = now;
        if let Some(t) = self.relock_at {
            if now >= t {
                self.relock_at = None;
                if !self.crash {
                    self.locked = true;
                }
            }
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        self.relock_at.filter(|t| *t > self.now)
    }

    fn output(&self, port: &str) -> PortValue {
        match port {
            "actuator" => PortValue::Bool(self.locked),
            "locked" => PortValue::Bits(self.locked as u64),
            _ => PortValue::Bool(false),
        }
    }
}

/// Builds the central-lock DUT: `CRASH_SW` (active low), actuator output
/// `LOCK_F`/`LOCK_R`, commands on CAN `0x2F0` and status report on `0x2F8`.
pub fn device(cfg: ElectricalConfig) -> Device {
    let mut device = device_with(cfg, Box::new(CentralLock::new()));
    device.mark_registry();
    device
}

/// Builds the device around a custom behaviour (fault injection).
pub fn device_with(cfg: ElectricalConfig, behavior: Box<dyn Behavior + Send>) -> Device {
    Device::builder(behavior)
        .config(cfg)
        .pin("CRASH_SW", PinBinding::InputActiveLow { port: "crash" })
        .pin("LOCK_F", PinBinding::Output { port: "actuator" })
        .pin("LOCK_R", PinBinding::Return)
        .can_input(CMD_FRAME.0, 0, 1, "lock_cmd")
        .can_input(CMD_FRAME.0, 1, 1, "unlock_cmd")
        .can_output(STATUS_FRAME.0, 0, 1, "locked")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elec::PinDrive;
    use comptest_model::PinId;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn actuator(d: &Device) -> bool {
        d.measure_pins(&[pid("LOCK_F"), pid("LOCK_R")]) > 6.0
    }

    fn status(d: &Device) -> u64 {
        d.read_can_field(STATUS_FRAME, 0, 1).unwrap()
    }

    #[test]
    fn lock_unlock_cycle() {
        let mut d = device(ElectricalConfig::default());
        assert!(!actuator(&d));
        assert_eq!(status(&d), 0);
        d.write_can_field(CMD_FRAME, 0, 1, 1, SimTime::from_secs(1));
        assert!(actuator(&d));
        assert_eq!(status(&d), 1, "status frame reports locked");
        // Command bits are edge-triggered; clear then unlock.
        d.write_can_field(CMD_FRAME, 0, 1, 0, SimTime::from_secs(2));
        d.write_can_field(CMD_FRAME, 1, 1, 1, SimTime::from_secs(3));
        assert!(!actuator(&d));
        assert_eq!(status(&d), 0);
    }

    #[test]
    fn auto_relock_after_60s() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(CMD_FRAME, 0, 1, 1, SimTime::from_secs(1));
        d.write_can_field(CMD_FRAME, 0, 1, 0, SimTime::from_secs(2));
        d.write_can_field(CMD_FRAME, 1, 1, 1, SimTime::from_secs(10));
        assert!(!actuator(&d));
        // 59 s later: still unlocked.
        d.advance_to(SimTime::from_secs(69));
        assert!(!actuator(&d));
        // 61 s later: relocked.
        d.advance_to(SimTime::from_secs(71));
        assert!(actuator(&d));
        assert_eq!(status(&d), 1);
    }

    #[test]
    fn crash_unlocks_and_inhibits() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(CMD_FRAME, 0, 1, 1, SimTime::from_secs(1));
        assert!(actuator(&d));
        // Crash!
        d.apply_pin(
            &pid("CRASH_SW"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(2),
        );
        assert!(!actuator(&d), "crash unlocks");
        // Lock commands are ignored during a crash.
        d.write_can_field(CMD_FRAME, 0, 1, 0, SimTime::from_secs(3));
        d.write_can_field(CMD_FRAME, 0, 1, 1, SimTime::from_secs(4));
        assert!(!actuator(&d));
        // After the crash line clears, locking works again.
        d.apply_pin(
            &pid("CRASH_SW"),
            PinDrive::ResistanceToGround(f64::INFINITY),
            SimTime::from_secs(5),
        );
        d.write_can_field(CMD_FRAME, 0, 1, 0, SimTime::from_secs(6));
        d.write_can_field(CMD_FRAME, 0, 1, 1, SimTime::from_secs(7));
        assert!(actuator(&d));
    }

    #[test]
    fn crash_cancels_auto_relock() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(CMD_FRAME, 1, 1, 1, SimTime::from_secs(1));
        d.apply_pin(
            &pid("CRASH_SW"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(2),
        );
        d.advance_to(SimTime::from_secs(120));
        assert!(!actuator(&d), "no relock while crashed");
    }
}
