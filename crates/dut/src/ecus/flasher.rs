//! A turn-signal flasher: 1.5 Hz flashing, hazard mode, and the classic
//! lamp-outage behaviour — a burnt-out bulb doubles the flash frequency so
//! the driver notices. Exercises frequency measurement (`get_f`) end to end.

use comptest_model::{CanFrameId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::device::{Device, PinBinding};
use crate::elec::ElectricalConfig;

/// The frame carrying the 2-bit stalk position
/// (0 = off, 1 = left, 2 = right, 3 = hazard).
pub const STALK_FRAME: CanFrameId = CanFrameId(0x260);
/// Nominal flash half-period (full period 666.6 ms ≈ 1.5 Hz).
pub const HALF_PERIOD: SimTime = SimTime::from_micros(333_333);
/// Outage flash half-period (3 Hz).
pub const OUTAGE_HALF_PERIOD: SimTime = SimTime::from_micros(166_667);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stalk {
    Off,
    Left,
    Right,
    Hazard,
}

impl Stalk {
    fn from_bits(v: u64) -> Stalk {
        match v & 0b11 {
            0 => Stalk::Off,
            1 => Stalk::Left,
            2 => Stalk::Right,
            _ => Stalk::Hazard,
        }
    }
}

/// The flasher behaviour.
#[derive(Debug)]
pub struct Flasher {
    stalk: Stalk,
    outage: bool,
    /// Flash phase: lamps currently lit?
    lit: bool,
    /// Next toggle time while flashing.
    toggle_at: SimTime,
    now: SimTime,
}

impl Flasher {
    /// Creates the behaviour (stalk off).
    pub fn new() -> Self {
        Self {
            stalk: Stalk::Off,
            outage: false,
            lit: false,
            toggle_at: SimTime::MAX,
            now: SimTime::ZERO,
        }
    }

    fn half_period(&self) -> SimTime {
        if self.outage {
            OUTAGE_HALF_PERIOD
        } else {
            HALF_PERIOD
        }
    }

    fn flashing(&self) -> bool {
        self.stalk != Stalk::Off
    }

    fn start_flashing(&mut self, now: SimTime) {
        self.lit = true;
        self.toggle_at = now.saturating_add(self.half_period());
    }

    fn stop_flashing(&mut self) {
        self.lit = false;
        self.toggle_at = SimTime::MAX;
    }
}

impl Default for Flasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for Flasher {
    fn name(&self) -> &str {
        "flasher"
    }

    fn inputs(&self) -> &[&'static str] {
        &["stalk", "outage"]
    }

    fn outputs(&self) -> &[&'static str] {
        &["lamp_l", "lamp_r"]
    }

    fn reset(&mut self, now: SimTime) {
        *self = Flasher::new();
        self.now = now;
    }

    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime) {
        self.advance(now);
        match port {
            "stalk" => {
                let stalk = Stalk::from_bits(value.as_bits());
                if stalk != self.stalk {
                    self.stalk = stalk;
                    if self.flashing() {
                        self.start_flashing(now);
                    } else {
                        self.stop_flashing();
                    }
                }
            }
            "outage" => {
                let outage = value.as_bool();
                if outage != self.outage {
                    self.outage = outage;
                    // Re-time the running cycle with the new period.
                    if self.flashing() {
                        self.toggle_at = now.saturating_add(self.half_period());
                    }
                }
            }
            _ => {}
        }
    }

    fn advance(&mut self, now: SimTime) {
        self.now = now;
        while self.flashing() && self.toggle_at <= now {
            self.lit = !self.lit;
            self.toggle_at = self.toggle_at.saturating_add(self.half_period());
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        if self.flashing() && self.toggle_at != SimTime::MAX {
            Some(self.toggle_at).filter(|t| *t > self.now)
        } else {
            None
        }
    }

    fn output(&self, port: &str) -> PortValue {
        let lit = match (port, self.stalk) {
            ("lamp_l", Stalk::Left | Stalk::Hazard) => self.lit,
            ("lamp_r", Stalk::Right | Stalk::Hazard) => self.lit,
            _ => false,
        };
        PortValue::Bool(lit)
    }
}

/// Builds the flasher DUT: `OUTAGE_SW` (active low, from the lamp-current
/// monitor), lamp outputs `LAMP_L_F`/`LAMP_L_R` and `LAMP_R_F`/`LAMP_R_R`,
/// stalk on CAN `0x260:0:2`.
pub fn device(cfg: ElectricalConfig) -> Device {
    let mut device = device_with(cfg, Box::new(Flasher::new()));
    device.mark_registry();
    device
}

/// Builds the device around a custom behaviour (fault injection).
pub fn device_with(cfg: ElectricalConfig, behavior: Box<dyn Behavior + Send>) -> Device {
    Device::builder(behavior)
        .config(cfg)
        .pin("OUTAGE_SW", PinBinding::InputActiveLow { port: "outage" })
        .pin("LAMP_L_F", PinBinding::Output { port: "lamp_l" })
        .pin("LAMP_L_R", PinBinding::Return)
        .pin("LAMP_R_F", PinBinding::Output { port: "lamp_r" })
        .pin("LAMP_R_R", PinBinding::Return)
        .can_input(STALK_FRAME.0, 0, 2, "stalk")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elec::PinDrive;
    use comptest_model::PinId;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn lamp_l(d: &Device) -> bool {
        d.measure_pins(&[pid("LAMP_L_F"), pid("LAMP_L_R")]) > 6.0
    }

    fn lamp_r(d: &Device) -> bool {
        d.measure_pins(&[pid("LAMP_R_F"), pid("LAMP_R_R")]) > 6.0
    }

    #[test]
    fn left_flashes_right_stays_dark() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::from_secs(1));
        assert!(lamp_l(&d), "lamp lights immediately");
        assert!(!lamp_r(&d));
        // Half a period later it is dark.
        d.advance_to(SimTime::from_micros(1_400_000));
        assert!(!lamp_l(&d));
        // A full period later it is lit again.
        d.advance_to(SimTime::from_micros(1_700_000));
        assert!(lamp_l(&d));
    }

    #[test]
    fn nominal_frequency_is_1_5_hz() {
        let mut d = device(ElectricalConfig::default());
        let t0 = SimTime::from_secs(1);
        d.write_can_field(STALK_FRAME, 0, 2, 1, t0);
        let t1 = t0 + SimTime::from_secs(4);
        d.advance_to(t1);
        let f = d.frequency(&pid("LAMP_L_F"), t0, t1);
        assert!((1.2..=1.8).contains(&f), "measured {f} Hz");
        // The right lamp never toggled.
        assert_eq!(d.edge_count(&pid("LAMP_R_F"), t0, t1), 0);
    }

    #[test]
    fn outage_doubles_the_frequency() {
        let mut d = device(ElectricalConfig::default());
        let t0 = SimTime::from_secs(1);
        d.apply_pin(
            &pid("OUTAGE_SW"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_millis(500),
        );
        d.write_can_field(STALK_FRAME, 0, 2, 2, t0);
        let t1 = t0 + SimTime::from_secs(4);
        d.advance_to(t1);
        let f = d.frequency(&pid("LAMP_R_F"), t0, t1);
        assert!((2.6..=3.4).contains(&f), "measured {f} Hz");
    }

    #[test]
    fn hazard_flashes_both() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 3, SimTime::from_secs(1));
        assert!(lamp_l(&d));
        assert!(lamp_r(&d));
        let t1 = SimTime::from_secs(5);
        d.advance_to(t1);
        let fl = d.frequency(&pid("LAMP_L_F"), SimTime::from_secs(1), t1);
        let fr = d.frequency(&pid("LAMP_R_F"), SimTime::from_secs(1), t1);
        assert!(
            (fl - fr).abs() < 0.2,
            "both lamps flash together: {fl} vs {fr}"
        );
    }

    #[test]
    fn stalk_off_stops_flashing() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::from_secs(1));
        d.write_can_field(STALK_FRAME, 0, 2, 0, SimTime::from_secs(2));
        assert!(!lamp_l(&d));
        let before = d.edge_count(&pid("LAMP_L_F"), SimTime::ZERO, SimTime::from_secs(2));
        d.advance_to(SimTime::from_secs(10));
        let after = d.edge_count(&pid("LAMP_L_F"), SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(before, after, "no edges while off");
    }

    #[test]
    fn mid_flash_outage_retimes() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(STALK_FRAME, 0, 2, 1, SimTime::from_secs(1));
        // Outage occurs two seconds into flashing.
        d.apply_pin(
            &pid("OUTAGE_SW"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(3),
        );
        let t1 = SimTime::from_secs(7);
        d.advance_to(t1);
        let f = d.frequency(&pid("LAMP_L_F"), SimTime::from_secs(3), t1);
        assert!((2.6..=3.4).contains(&f), "post-outage frequency {f} Hz");
    }
}
