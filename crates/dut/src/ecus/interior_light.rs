//! The paper's running example: the interior illumination controller.
//!
//! "If the bit NIGHT is active, the interior illumination is lit for a
//! maximum duration of 300s, if one of the doors is open, what is indicated
//! by an 'Open' status of the door switch."

use comptest_model::{CanFrameId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::device::{Device, PinBinding};
use crate::elec::ElectricalConfig;

/// The frame carrying the 4-bit ignition status (`IGN_ST`).
pub const IGN_FRAME: CanFrameId = CanFrameId(0x130);
/// The frame carrying the light-sensor `NIGHT` bit.
pub const NIGHT_FRAME: CanFrameId = CanFrameId(0x2A0);
/// The illumination timeout: lamp off 300 s after the doors opened.
pub const TIMEOUT: SimTime = SimTime::from_secs(300);

const DOORS: [&str; 4] = ["door_fl", "door_fr", "door_rl", "door_rr"];

/// The interior-light behaviour.
#[derive(Debug)]
pub struct InteriorLight {
    timeout: SimTime,
    doors: [bool; 4],
    night: bool,
    ign: u64,
    /// Lamp-off deadline, armed on the rising edge of "any door open".
    deadline: Option<SimTime>,
    now: SimTime,
}

impl InteriorLight {
    /// Creates the behaviour with the production 300 s timeout.
    pub fn new() -> Self {
        Self::with_timeout(TIMEOUT)
    }

    /// Creates the behaviour with a custom timeout (used by tests and the
    /// fault-injection experiments).
    pub fn with_timeout(timeout: SimTime) -> Self {
        Self {
            timeout,
            doors: [false; 4],
            night: false,
            ign: 0,
            deadline: None,
            now: SimTime::ZERO,
        }
    }

    fn any_door_open(&self) -> bool {
        self.doors.iter().any(|d| *d)
    }

    fn lamp_on(&self) -> bool {
        self.night && self.any_door_open() && self.deadline.is_some_and(|d| self.now < d)
    }
}

impl Default for InteriorLight {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for InteriorLight {
    fn name(&self) -> &str {
        "interior_light"
    }

    fn inputs(&self) -> &[&'static str] {
        &["door_fl", "door_fr", "door_rl", "door_rr", "night", "ign"]
    }

    fn outputs(&self) -> &[&'static str] {
        &["lamp"]
    }

    fn reset(&mut self, now: SimTime) {
        self.doors = [false; 4];
        self.night = false;
        self.ign = 0;
        self.deadline = None;
        self.now = now;
    }

    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime) {
        self.now = now;
        if let Some(idx) = DOORS.iter().position(|p| *p == port) {
            let was_open = self.any_door_open();
            self.doors[idx] = value.as_bool();
            let is_open = self.any_door_open();
            if !was_open && is_open {
                self.deadline = Some(now.saturating_add(self.timeout));
            } else if !is_open {
                self.deadline = None;
            }
        } else if port == "night" {
            self.night = value.as_bool();
        } else if port == "ign" {
            self.ign = value.as_bits();
        }
    }

    fn advance(&mut self, now: SimTime) {
        self.now = now;
    }

    fn next_event(&self) -> Option<SimTime> {
        // The only internal event is the lamp-off deadline, and only while
        // the lamp is actually lit (otherwise nothing observable changes).
        match self.deadline {
            Some(d) if self.lamp_on() && d > self.now => Some(d),
            _ => None,
        }
    }

    fn output(&self, port: &str) -> PortValue {
        match port {
            "lamp" => PortValue::Bool(self.lamp_on()),
            _ => PortValue::Bool(false),
        }
    }
}

/// Builds the interior-light DUT with the paper's pin-out:
/// `DS_FL/DS_FR/DS_RL/DS_RR` door switches (active low), the
/// `INT_ILL_F`/`INT_ILL_R` lamp pair, `IGN_ST` on CAN `0x130:0:4` and
/// `NIGHT` on CAN `0x2A0:0:1`.
pub fn device(cfg: ElectricalConfig) -> Device {
    let mut device = device_with(cfg, Box::new(InteriorLight::new()));
    device.mark_registry();
    device
}

/// Builds the device around a custom behaviour (used for fault injection).
pub fn device_with(cfg: ElectricalConfig, behavior: Box<dyn Behavior + Send>) -> Device {
    Device::builder(behavior)
        .config(cfg)
        .pin("DS_FL", PinBinding::InputActiveLow { port: "door_fl" })
        .pin("DS_FR", PinBinding::InputActiveLow { port: "door_fr" })
        .pin("DS_RL", PinBinding::InputActiveLow { port: "door_rl" })
        .pin("DS_RR", PinBinding::InputActiveLow { port: "door_rr" })
        .pin("INT_ILL_F", PinBinding::Output { port: "lamp" })
        .pin("INT_ILL_R", PinBinding::Return)
        .can_input(IGN_FRAME.0, 0, 4, "ign")
        .can_input(NIGHT_FRAME.0, 0, 1, "night")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elec::PinDrive;
    use comptest_model::PinId;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn lamp_voltage(d: &Device) -> f64 {
        d.measure_pins(&[pid("INT_ILL_F"), pid("INT_ILL_R")])
    }

    #[test]
    fn day_no_light() {
        let mut d = device(ElectricalConfig::default());
        let t = SimTime::from_millis(500);
        d.apply_pin(&pid("DS_FL"), PinDrive::ResistanceToGround(0.0), t);
        d.advance_to(SimTime::from_secs(1));
        assert!(lamp_voltage(&d) < 0.3 * 12.0, "day: lamp must stay off");
    }

    #[test]
    fn night_door_open_lights_lamp() {
        let mut d = device(ElectricalConfig::default());
        let t = SimTime::from_millis(500);
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, t);
        d.apply_pin(&pid("DS_FR"), PinDrive::ResistanceToGround(0.0), t);
        d.advance_to(SimTime::from_secs(1));
        assert!(lamp_voltage(&d) > 0.7 * 12.0);
        // Door closes: lamp off.
        d.apply_pin(
            &pid("DS_FR"),
            PinDrive::ResistanceToGround(f64::INFINITY),
            SimTime::from_secs(2),
        );
        assert!(lamp_voltage(&d) < 0.3 * 12.0);
    }

    #[test]
    fn timeout_after_300_seconds() {
        let mut d = device(ElectricalConfig::default());
        let t_open = SimTime::from_secs(3);
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, SimTime::from_secs(2));
        d.apply_pin(&pid("DS_FL"), PinDrive::ResistanceToGround(0.0), t_open);
        // The paper's step 7 check: 280 s after opening, still on.
        d.advance_to(t_open + SimTime::from_secs(280));
        assert!(lamp_voltage(&d) > 0.7 * 12.0, "283 s: still lit");
        // The paper's step 8 check: 305 s after opening, off.
        d.advance_to(t_open + SimTime::from_secs(305));
        assert!(lamp_voltage(&d) < 0.3 * 12.0, "305 s: timed out");
    }

    #[test]
    fn reopening_rearms_the_timer() {
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, SimTime::from_millis(100));
        // Open at t=1, close at t=2, reopen at t=3.
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(1),
        );
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(f64::INFINITY),
            SimTime::from_secs(2),
        );
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(3),
        );
        // 299 s after the reopen the lamp is still lit (timer restarted).
        d.advance_to(SimTime::from_secs(3 + 299));
        assert!(lamp_voltage(&d) > 0.7 * 12.0);
        d.advance_to(SimTime::from_secs(3 + 301));
        assert!(lamp_voltage(&d) < 0.3 * 12.0);
    }

    #[test]
    fn second_door_does_not_rearm() {
        // The deadline arms on the rising edge of "any door open"; a second
        // door opening while the first is still open must not extend it.
        let mut d = device(ElectricalConfig::default());
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, SimTime::from_millis(100));
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(1),
        );
        d.apply_pin(
            &pid("DS_FR"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(200),
        );
        d.advance_to(SimTime::from_secs(302));
        assert!(
            lamp_voltage(&d) < 0.3 * 12.0,
            "timer counts from the first opening"
        );
    }

    #[test]
    fn night_toggle_mid_window() {
        let mut d = device(ElectricalConfig::default());
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(1),
        );
        d.advance_to(SimTime::from_secs(5));
        assert!(lamp_voltage(&d) < 0.3 * 12.0, "day");
        // Night falls while the door is open: the lamp lights, limited by
        // the deadline armed at the opening.
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, SimTime::from_secs(10));
        assert!(lamp_voltage(&d) > 0.7 * 12.0);
        d.advance_to(SimTime::from_secs(302));
        assert!(lamp_voltage(&d) < 0.3 * 12.0);
    }

    #[test]
    fn custom_timeout_for_fault_experiments() {
        let mut d = device_with(
            ElectricalConfig::default(),
            Box::new(InteriorLight::with_timeout(SimTime::from_secs(10))),
        );
        d.write_can_field(NIGHT_FRAME, 0, 1, 1, SimTime::from_millis(100));
        d.apply_pin(
            &pid("DS_FL"),
            PinDrive::ResistanceToGround(0.0),
            SimTime::from_secs(1),
        );
        d.advance_to(SimTime::from_secs(5));
        assert!(lamp_voltage(&d) > 0.7 * 12.0);
        d.advance_to(SimTime::from_secs(12));
        assert!(lamp_voltage(&d) < 0.3 * 12.0);
    }
}
