//! A power-window controller with anti-pinch reversal.

use comptest_model::{CanFrameId, SimTime};

use crate::behavior::{Behavior, PortValue};
use crate::device::{Device, PinBinding};
use crate::elec::ElectricalConfig;

/// Full travel time bottom ↔ top.
pub const TRAVEL: SimTime = SimTime::from_secs(3);
/// Anti-pinch reversal duration.
pub const REVERSE: SimTime = SimTime::from_millis(500);
/// The frame on which the controller reports the window position (0..=100).
pub const POSITION_FRAME: CanFrameId = CanFrameId(0x350);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    MovingUp,
    MovingDown,
    /// Anti-pinch emergency reversal (moves down), until the given time.
    Reversing(SimTime),
}

/// The power-window behaviour. Position is tracked in `0.0..=1.0`
/// (0 = fully open/bottom, 1 = fully closed/top) and integrated lazily.
#[derive(Debug)]
pub struct PowerWindow {
    state: State,
    position: f64,
    /// Time of the last position integration.
    last_update: SimTime,
    btn_up: bool,
    btn_down: bool,
    pinch: bool,
    now: SimTime,
}

impl PowerWindow {
    /// Creates the behaviour with the window half open.
    pub fn new() -> Self {
        Self {
            state: State::Idle,
            position: 0.5,
            last_update: SimTime::ZERO,
            btn_up: false,
            btn_down: false,
            pinch: false,
            now: SimTime::ZERO,
        }
    }

    /// Current window position (0 = open, 1 = closed).
    pub fn position(&self) -> f64 {
        self.position
    }

    fn integrate(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_update).as_secs_f64();
        let rate = 1.0 / TRAVEL.as_secs_f64();
        match self.state {
            State::MovingUp => self.position += rate * dt,
            State::MovingDown | State::Reversing(_) => self.position -= rate * dt,
            State::Idle => {}
        }
        self.position = self.position.clamp(0.0, 1.0);
        self.last_update = now;
    }

    fn update_state(&mut self, now: SimTime) {
        // Stops: terminal positions, dead-man release, reversal end.
        match self.state {
            State::MovingUp if self.position >= 1.0 || !self.btn_up => {
                self.state = State::Idle;
            }
            State::MovingDown if self.position <= 0.0 || !self.btn_down => {
                self.state = State::Idle;
            }
            State::Reversing(until) if now >= until || self.position <= 0.0 => {
                self.state = State::Idle;
            }
            _ => {}
        }
        // Starts: only from idle, only on an unambiguous button state.
        if self.state == State::Idle {
            if self.btn_up && !self.btn_down && self.position < 1.0 && !self.pinch {
                self.state = State::MovingUp;
            } else if self.btn_down && !self.btn_up && self.position > 0.0 {
                self.state = State::MovingDown;
            }
        }
        // Pinch while closing: emergency reversal (overrides the buttons).
        if self.pinch && self.state == State::MovingUp {
            self.state = State::Reversing(now.saturating_add(REVERSE));
        }
    }
}

impl Default for PowerWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for PowerWindow {
    fn name(&self) -> &str {
        "power_window"
    }

    fn inputs(&self) -> &[&'static str] {
        &["btn_up", "btn_down", "pinch"]
    }

    fn outputs(&self) -> &[&'static str] {
        &["motor_up", "motor_down", "position"]
    }

    fn reset(&mut self, now: SimTime) {
        *self = PowerWindow::new();
        self.now = now;
        self.last_update = now;
    }

    fn set_input(&mut self, port: &str, value: PortValue, now: SimTime) {
        self.advance(now);
        match port {
            "btn_up" => self.btn_up = value.as_bool(),
            "btn_down" => self.btn_down = value.as_bool(),
            "pinch" => self.pinch = value.as_bool(),
            _ => {}
        }
        self.update_state(now);
    }

    fn advance(&mut self, now: SimTime) {
        self.integrate(now);
        self.now = now;
        self.update_state(now);
    }

    fn next_event(&self) -> Option<SimTime> {
        let rate = TRAVEL.as_secs_f64();
        let event = match self.state {
            State::Idle => return None,
            State::MovingUp => {
                let remaining = (1.0 - self.position) * rate;
                self.now.saturating_add(SimTime::from_secs_f64(remaining))
            }
            State::MovingDown => {
                let remaining = self.position * rate;
                self.now.saturating_add(SimTime::from_secs_f64(remaining))
            }
            State::Reversing(until) => until,
        };
        Some(event).filter(|t| *t > self.now)
    }

    fn output(&self, port: &str) -> PortValue {
        match port {
            "motor_up" => PortValue::Bool(self.state == State::MovingUp),
            "motor_down" => PortValue::Bool(matches!(
                self.state,
                State::MovingDown | State::Reversing(_)
            )),
            "position" => PortValue::Bits((self.position * 100.0).round() as u64),
            _ => PortValue::Bool(false),
        }
    }
}

/// Builds the power-window DUT: buttons `BTN_UP`/`BTN_DOWN` and pinch sensor
/// `PINCH_SW` (all active low), motor outputs `MOT_UP_F`/`MOT_DN_F` with a
/// shared return `MOT_R`, position report on CAN `0x350:0:7`.
pub fn device(cfg: ElectricalConfig) -> Device {
    let mut device = device_with(cfg, Box::new(PowerWindow::new()));
    device.mark_registry();
    device
}

/// Builds the device around a custom behaviour (fault injection).
pub fn device_with(cfg: ElectricalConfig, behavior: Box<dyn Behavior + Send>) -> Device {
    Device::builder(behavior)
        .config(cfg)
        .pin("BTN_UP", PinBinding::InputActiveLow { port: "btn_up" })
        .pin("BTN_DOWN", PinBinding::InputActiveLow { port: "btn_down" })
        .pin("PINCH_SW", PinBinding::InputActiveLow { port: "pinch" })
        .pin("MOT_UP_F", PinBinding::Output { port: "motor_up" })
        .pin("MOT_DN_F", PinBinding::Output { port: "motor_down" })
        .pin("MOT_R", PinBinding::Return)
        .can_output(POSITION_FRAME.0, 0, 7, "position")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elec::PinDrive;
    use comptest_model::PinId;

    fn pid(s: &str) -> PinId {
        PinId::new(s).unwrap()
    }

    fn press(d: &mut Device, pin: &str, at: SimTime) {
        d.apply_pin(&pid(pin), PinDrive::ResistanceToGround(0.0), at);
    }

    fn release(d: &mut Device, pin: &str, at: SimTime) {
        d.apply_pin(&pid(pin), PinDrive::ResistanceToGround(f64::INFINITY), at);
    }

    fn motor_up(d: &Device) -> bool {
        d.measure_pins(&[pid("MOT_UP_F"), pid("MOT_R")]) > 6.0
    }

    fn motor_down(d: &Device) -> bool {
        d.measure_pins(&[pid("MOT_DN_F"), pid("MOT_R")]) > 6.0
    }

    fn position(d: &Device) -> u64 {
        d.read_can_field(POSITION_FRAME, 0, 7).unwrap()
    }

    #[test]
    fn closes_fully_and_stops() {
        let mut d = device(ElectricalConfig::default());
        assert_eq!(position(&d), 50, "starts half open");
        press(&mut d, "BTN_UP", SimTime::from_secs(1));
        assert!(motor_up(&d));
        // Half travel = 1.5 s; hold the button well past that.
        d.advance_to(SimTime::from_secs(4));
        assert!(!motor_up(&d), "stops at the top");
        assert_eq!(position(&d), 100);
    }

    #[test]
    fn dead_man_control_stops_on_release() {
        let mut d = device(ElectricalConfig::default());
        press(&mut d, "BTN_UP", SimTime::from_secs(1));
        release(&mut d, "BTN_UP", SimTime::from_millis(1_600));
        assert!(!motor_up(&d));
        // 0.6 s of travel from 0.5 -> 0.7.
        assert_eq!(position(&d), 70);
    }

    #[test]
    fn anti_pinch_reverses() {
        let mut d = device(ElectricalConfig::default());
        press(&mut d, "BTN_UP", SimTime::from_secs(1));
        d.advance_to(SimTime::from_millis(1_300));
        assert!(motor_up(&d));
        // Obstacle!
        press(&mut d, "PINCH_SW", SimTime::from_millis(1_300));
        assert!(!motor_up(&d));
        assert!(motor_down(&d), "reversing");
        // Reversal lasts 0.5 s, then idle even though the button is held.
        d.advance_to(SimTime::from_millis(1_900));
        assert!(!motor_down(&d));
        assert!(!motor_up(&d), "button held but pinch latched the stop");
        let p = position(&d);
        assert!(p < 60, "window backed off, got {p}");
    }

    #[test]
    fn pinch_blocks_closing_while_active() {
        let mut d = device(ElectricalConfig::default());
        press(&mut d, "PINCH_SW", SimTime::from_millis(500));
        press(&mut d, "BTN_UP", SimTime::from_secs(1));
        assert!(!motor_up(&d), "cannot close onto an obstacle");
        // Clear the obstacle; press again.
        release(&mut d, "PINCH_SW", SimTime::from_secs(2));
        release(&mut d, "BTN_UP", SimTime::from_secs(2));
        press(&mut d, "BTN_UP", SimTime::from_secs(3));
        assert!(motor_up(&d));
    }

    #[test]
    fn opens_fully_and_stops() {
        let mut d = device(ElectricalConfig::default());
        press(&mut d, "BTN_DOWN", SimTime::from_secs(1));
        assert!(motor_down(&d));
        d.advance_to(SimTime::from_secs(4));
        assert!(!motor_down(&d));
        assert_eq!(position(&d), 0);
    }

    #[test]
    fn conflicting_buttons() {
        let mut d = device(ElectricalConfig::default());
        // With both buttons held from idle, nothing starts.
        press(&mut d, "BTN_DOWN", SimTime::from_secs(1));
        press(&mut d, "BTN_UP", SimTime::from_millis(1_001));
        d.advance_to(SimTime::from_millis(1_100));
        assert!(motor_down(&d), "first (single) press wins until released");
        release(&mut d, "BTN_DOWN", SimTime::from_millis(1_200));
        // Only UP remains pressed: the window closes now.
        assert!(motor_up(&d));
        release(&mut d, "BTN_UP", SimTime::from_millis(1_300));
        assert!(!motor_up(&d));
        assert!(!motor_down(&d));
    }
}
