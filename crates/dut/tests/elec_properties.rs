//! Property tests for the electrical substrate.

use comptest_dut::elec::{pin_voltage, DigitalInput, DutPinMode, ElectricalConfig, PinDrive};
use proptest::prelude::*;

fn cfg() -> ElectricalConfig {
    ElectricalConfig::default()
}

proptest! {
    /// The pull-up divider is monotone: more resistance to ground, more
    /// voltage at the pin.
    #[test]
    fn divider_is_monotone(r1 in 0.0..1e6f64, r2 in 0.0..1e6f64) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let v_lo = pin_voltage(&cfg(), DutPinMode::InputPullUp, PinDrive::ResistanceToGround(lo));
        let v_hi = pin_voltage(&cfg(), DutPinMode::InputPullUp, PinDrive::ResistanceToGround(hi));
        prop_assert!(v_lo <= v_hi + 1e-9, "v({lo})={v_lo} > v({hi})={v_hi}");
    }

    /// Pin voltages stay within the physical rails for any resistive load.
    #[test]
    fn voltage_within_rails(r in 0.0..1e9f64, level in 0.0..=1.0f64) {
        let c = cfg();
        for mode in [
            DutPinMode::InputPullUp,
            DutPinMode::OutputPushPull { level },
            DutPinMode::Ground,
            DutPinMode::HighZ,
        ] {
            let v = pin_voltage(&c, mode, PinDrive::ResistanceToGround(r));
            prop_assert!((-1e-9..=c.ubatt + 1e-9).contains(&v), "{mode:?}: {v}");
        }
    }

    /// The open-circuit limit: a very large resistance converges to the
    /// true open-circuit voltage.
    #[test]
    fn open_circuit_limit(exp in 8u32..12) {
        let r = 10f64.powi(exp as i32);
        let v_big = pin_voltage(&cfg(), DutPinMode::InputPullUp, PinDrive::ResistanceToGround(r));
        let v_open = pin_voltage(
            &cfg(),
            DutPinMode::InputPullUp,
            PinDrive::ResistanceToGround(f64::INFINITY),
        );
        prop_assert!((v_big - v_open).abs() < 0.01, "r={r}: {v_big} vs {v_open}");
    }

    /// Hysteresis never produces an out-of-band flip: after an update the
    /// state is high only if the voltage was above the low threshold, and
    /// low only if it was below the high threshold.
    #[test]
    fn hysteresis_is_consistent(voltages in prop::collection::vec(0.0..12.0f64, 1..50)) {
        let c = cfg();
        let mut input = DigitalInput::new();
        for v in voltages {
            let high = input.update(v, &c);
            if v <= c.low_threshold * c.ubatt {
                prop_assert!(!high, "low drive must read low");
            }
            if v >= c.high_threshold * c.ubatt {
                prop_assert!(high, "high drive must read high");
            }
        }
    }

    /// A stiff voltage source overrides the pull-up to within 5 %.
    #[test]
    fn voltage_source_dominates(v_src in 0.0..12.0f64) {
        let v = pin_voltage(&cfg(), DutPinMode::InputPullUp, PinDrive::Voltage(v_src));
        prop_assert!((v - v_src).abs() < 0.05 * 12.0 + 0.2, "applied {v_src}, saw {v}");
    }
}
