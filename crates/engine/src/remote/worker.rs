//! The child side of the remote executor: `comptest worker`.
//!
//! A worker is a plain stdio filter: it reads [`ToWorker`] frames from
//! stdin, executes the jobs through the exact same
//! [`plan_and_execute`](crate::executor::plan_and_execute) path every
//! local executor uses (so outcomes are byte-identical by construction),
//! and writes [`FromWorker`] frames — live progress events followed by the
//! result record — to stdout. Stands and scripts arrive once per worker as
//! interning frames; execution plans are resolved at most once per
//! (script, stand) pair, mirroring the parent's shared
//! [`PlanSlot`](crate::executor::PlanSlot)s.
//!
//! A clean EOF on stdin is a shutdown request (the parent's cancel
//! fan-out closes the pipe); a malformed frame is answered with one
//! `Error` frame and exit code 2. The worker never caches: the campaign
//! cache lives in the parent, which only ships cache misses.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use comptest_core::campaign::TestJobOutcome;
use comptest_core::exec::ExecOptions;
use comptest_dut::DeviceSpec;
use comptest_script::TestScript;
use comptest_stand::TestStand;

use crate::cache::binary;
use crate::cache::{fold_cell, CellRecord};
use crate::events::EngineEvent;
use crate::executor::{outcome_status, plan_and_execute, JobCtx, PlanSlot};
use crate::handle::{CancelToken, RunCancel};
use crate::obs::Recorder;
use crate::remote::frame::{read_frame, write_frame, FromWorker, ToWorker, VERSION};

/// Environment variable holding a per-job artificial delay in
/// milliseconds. Used by the kill-a-worker tests and the CI smoke job to
/// keep jobs in flight long enough to be interrupted; unset or invalid
/// values mean no delay.
pub const HOLD_MS_ENV: &str = "COMPTEST_WORKER_HOLD_MS";

/// Runs the worker protocol over this process's stdin/stdout until the
/// parent shuts it down. Returns the process exit code: `0` for a clean
/// shutdown (EOF or `Shutdown` frame), `2` for a protocol error.
///
/// This is what the `comptest worker` CLI subcommand calls; it is public
/// so embedders that ship their own binary to
/// [`RemoteExecutor::command`](crate::remote::RemoteExecutor::command)
/// can expose the same entry point.
pub fn worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    match serve(stdin.lock(), stdout.lock()) {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("comptest worker: {error}");
            2
        }
    }
}

/// Everything a worker interns across jobs.
struct WorkerState {
    stands: HashMap<u64, Arc<TestStand>>,
    scripts: HashMap<u64, Arc<TestScript>>,
    /// One shared plan slot per (script, stand) pair — resolved once, like
    /// the parent's campaign-owned slots.
    plans: HashMap<(u64, u64), Arc<PlanSlot>>,
    ctx: JobCtx,
    hold: Option<Duration>,
}

impl WorkerState {
    fn new(exec: ExecOptions) -> Self {
        let hold = std::env::var(HOLD_MS_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        Self {
            stands: HashMap::new(),
            scripts: HashMap::new(),
            plans: HashMap::new(),
            ctx: JobCtx {
                exec,
                cancel: RunCancel::new(CancelToken::new()),
                stop: false,
                cache: None,
                obs: Recorder::disabled(),
                step_probe: None,
            },
            hold,
        }
    }

    fn stand(&self, id: u64) -> Result<&Arc<TestStand>, String> {
        self.stands
            .get(&id)
            .ok_or_else(|| format!("stand id {id} was never interned"))
    }

    fn script(&self, id: u64) -> Result<&Arc<TestScript>, String> {
        self.scripts
            .get(&id)
            .ok_or_else(|| format!("script id {id} was never interned"))
    }

    fn plan(&mut self, script: u64, stand: u64) -> Arc<PlanSlot> {
        Arc::clone(
            self.plans
                .entry((script, stand))
                .or_insert_with(|| Arc::new(PlanSlot::default())),
        )
    }

    fn device(&self, spec: &DeviceSpec) -> Result<comptest_dut::Device, String> {
        spec.realize()
            .ok_or_else(|| format!("device spec \"{}\" is not realizable here", spec.behavior))
    }
}

/// The worker protocol loop over arbitrary streams (tests drive it with
/// in-memory pipes).
pub(crate) fn serve(mut input: impl Read, mut output: impl Write) -> Result<(), String> {
    // Handshake: the first frame must be a version-matched Hello.
    let first = read_frame(&mut input).map_err(|e| e.to_string())?;
    let Some(first) = first else {
        // Spawned and immediately abandoned; nothing to do.
        return Ok(());
    };
    let exec = match ToWorker::decode(&first) {
        Ok(ToWorker::Hello { exec }) => exec,
        Ok(other) => return refuse(&mut output, format!("expected Hello, got {other:?}")),
        Err(error) => return refuse(&mut output, error.to_string()),
    };
    send(&mut output, &FromWorker::Ready { version: VERSION })?;

    let mut state = WorkerState::new(exec);
    loop {
        let Some(payload) = read_frame(&mut input).map_err(|e| e.to_string())? else {
            // Parent closed our stdin: cooperative shutdown.
            return Ok(());
        };
        let frame = match ToWorker::decode(&payload) {
            Ok(frame) => frame,
            Err(error) => return refuse(&mut output, error.to_string()),
        };
        match frame {
            ToWorker::Hello { .. } => return refuse(&mut output, "duplicate Hello".into()),
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Stand { id, text } => match TestStand::parse_str("remote.stand", &text) {
                Ok(stand) => {
                    state.stands.insert(id, Arc::new(stand));
                }
                Err(error) => return refuse(&mut output, format!("bad stand: {error}")),
            },
            ToWorker::Script { id, xml, names } => match TestScript::parse_xml(&xml) {
                Ok(mut script) => {
                    // The XML writer lowercased the signal names; put the
                    // shipped source spellings back so planning diagnostics
                    // match the parent's in-process executors byte for byte.
                    super::restore_signal_spellings(&mut script, &names);
                    state.scripts.insert(id, Arc::new(script));
                }
                Err(error) => return refuse(&mut output, format!("bad script: {error}")),
            },
            ToWorker::RunTest {
                job,
                cell,
                test,
                suite,
                name,
                script,
                stand,
                spec,
            } => {
                let result = run_test(
                    &mut state,
                    &mut output,
                    job,
                    cell,
                    test,
                    &suite,
                    &name,
                    script,
                    stand,
                    &spec,
                );
                if let Err(error) = result {
                    return refuse(&mut output, error);
                }
            }
            ToWorker::RunCell {
                cell,
                suite,
                scripts,
                stand,
                spec,
            } => {
                let result = run_cell(
                    &mut state,
                    &mut output,
                    cell,
                    &suite,
                    &scripts,
                    stand,
                    &spec,
                );
                if let Err(error) = result {
                    return refuse(&mut output, error);
                }
            }
        }
    }
}

/// Sends one `Error` frame (best effort) and fails the loop.
fn refuse(output: &mut impl Write, message: String) -> Result<(), String> {
    let _ = FromWorker::Error {
        message: message.clone(),
    }
    .encode()
    .map(|payload| write_frame(output, &payload));
    Err(message)
}

fn send(output: &mut impl Write, frame: &FromWorker) -> Result<(), String> {
    let payload = frame.encode().map_err(|e| e.to_string())?;
    write_frame(output, &payload).map_err(|e| e.to_string())
}

#[allow(clippy::too_many_arguments)]
fn run_test(
    state: &mut WorkerState,
    output: &mut impl Write,
    job: usize,
    cell: usize,
    test: usize,
    suite: &str,
    name: &str,
    script_id: u64,
    stand_id: u64,
    spec: &DeviceSpec,
) -> Result<(), String> {
    if let Some(hold) = state.hold {
        std::thread::sleep(hold);
    }
    let script = Arc::clone(state.script(script_id)?);
    let stand = Arc::clone(state.stand(stand_id)?);
    let plan = state.plan(script_id, stand_id);
    let mut device = state.device(spec)?;
    send(
        output,
        &FromWorker::Event(EngineEvent::TestStarted {
            cell,
            test,
            suite: suite.to_owned(),
            stand: stand.name().to_owned(),
            name: name.to_owned(),
        }),
    )?;
    let started = Instant::now();
    let outcome = plan_and_execute(&plan, &script, &stand, &mut device, &state.ctx);
    let (status, failed) = outcome_status(&outcome);
    send(
        output,
        &FromWorker::Event(EngineEvent::TestFinished {
            cell,
            test,
            suite: suite.to_owned(),
            stand: stand.name().to_owned(),
            name: name.to_owned(),
            status,
            failed,
            duration: started.elapsed(),
        }),
    )?;
    send(
        output,
        &FromWorker::TestDone {
            job,
            record: encode_outcomes(1, vec![outcome]),
        },
    )
}

fn run_cell(
    state: &mut WorkerState,
    output: &mut impl Write,
    cell: usize,
    suite: &str,
    script_ids: &[u64],
    stand_id: u64,
    spec: &DeviceSpec,
) -> Result<(), String> {
    if let Some(hold) = state.hold {
        std::thread::sleep(hold);
    }
    let stand = Arc::clone(state.stand(stand_id)?);
    send(
        output,
        &FromWorker::Event(EngineEvent::JobStarted {
            cell,
            suite: suite.to_owned(),
            stand: stand.name().to_owned(),
        }),
    )?;
    let mut outcomes: Vec<TestJobOutcome> = Vec::with_capacity(script_ids.len());
    for &script_id in script_ids {
        let script = Arc::clone(state.script(script_id)?);
        let plan = state.plan(script_id, stand_id);
        let mut device = state.device(spec)?;
        let outcome = plan_and_execute(&plan, &script, &stand, &mut device, &state.ctx);
        let stop_cell = outcome.is_err();
        outcomes.push(outcome);
        if stop_cell {
            // First planning failure ends the cell, exactly like local
            // execution.
            break;
        }
    }
    // Fold locally only to render the finished event; the parent re-folds
    // the shipped outcomes itself.
    let folded = fold_cell(suite.to_owned(), stand.name().to_owned(), outcomes.clone());
    send(
        output,
        &FromWorker::Event(EngineEvent::JobFinished {
            cell,
            suite: suite.to_owned(),
            stand: stand.name().to_owned(),
            status: folded.status(),
            failed: !folded.passed(),
        }),
    )?;
    send(
        output,
        &FromWorker::CellDone {
            cell,
            record: encode_outcomes(script_ids.len(), outcomes),
        },
    )
}

/// Serialises outcomes through the cache's record codec — the transport
/// reuses the bit-exact round-trip the cache conformance suite pins down.
pub(crate) fn encode_outcomes(total: usize, tests: Vec<TestJobOutcome>) -> Vec<u8> {
    binary::encode(&CellRecord {
        total,
        tests,
        footprint: None,
    })
}

/// Decodes a result record shipped by a worker.
pub(crate) fn decode_outcomes(record: &[u8]) -> Result<Vec<TestJobOutcome>, String> {
    binary::decode(record)
        .map(|record| record.tests)
        .map_err(|e| e.to_string())
}
