//! The worker wire protocol: length-prefixed frames over stdio.
//!
//! The parent and its `comptest worker` children speak a binary protocol
//! built from the same primitives as the cache's record codec
//! (`cache::binary`): a fixed magic + version in the handshake, LEB128
//! varints for every integer, length-validated strings and byte blobs.
//! Each frame travels as `[u32 LE payload length][payload]`; the payload
//! is one tag byte followed by the variant's fields.
//!
//! Like the cache codec, the decoder is hardened for **hostile input** — a
//! worker is an external process whose stdout could contain anything (a
//! stray `println!`, a crashed allocator, an impostor binary). Every
//! length is validated against the remaining bytes, varints are
//! overflow-checked, strings are UTF-8 validated, unknown tags are
//! errors, and frames are capped at [`MAX_FRAME`] bytes. A malformed
//! frame must surface as a [`FrameError`] (the parent treats it as a
//! worker death, the worker as a fatal protocol error) — never a panic or
//! an unbounded allocation.

use std::io::{self, Read, Write};
use std::time::Duration;

use comptest_core::exec::{ExecOptions, SampleMode};
use comptest_dut::DeviceSpec;
use comptest_dut::ElectricalConfig;
use comptest_model::{CanFrameId, SimTime};

use crate::events::EngineEvent;

/// Protocol magic carried by the `Hello` handshake frame.
pub(crate) const MAGIC: [u8; 3] = *b"CWP";

/// Protocol version; bumped on any wire-layout change. A worker that sees
/// a different version refuses the handshake with an `Error` frame, so a
/// mixed-version parent/worker pair fails loudly instead of corrupting.
pub(crate) const VERSION: u8 = 1;

/// Upper bound on one frame's payload, validated before allocating. Real
/// frames are a few KiB (a stand text, a script XML, a result record); a
/// length field beyond this is hostile or corrupt.
pub(crate) const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// A malformed frame: truncated, oversized, bad tag, bad UTF-8, varint
/// overflow. The parent maps this to a worker death; the worker replies
/// with an `Error` frame and exits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub(crate) String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker frame decode: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FrameError> {
    Err(FrameError(msg.into()))
}

/// Writes one `[u32 LE length][payload]` frame and flushes, so a child
/// blocked on its next frame always sees complete bytes.
pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF **at a frame boundary** (the
/// peer closed the stream); EOF mid-frame, an oversized length or any I/O
/// problem is an error.
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Primitive readers/writers (the cache codec's idioms, local to this
// protocol: its `Reader` is private to `cache::binary`).
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return err(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => err(format!("bad bool byte {other}")),
        }
    }

    /// LEB128 varint, overflow-checked (max 10 bytes for a u64).
    fn varint(&mut self) -> Result<u64, FrameError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && bits > 1) {
                return err("varint overflow");
            }
            out |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn len(&mut self) -> Result<usize, FrameError> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| FrameError("length exceeds usize".into()))?;
        if n > self.remaining() {
            return err(format!("length {n} exceeds remaining {}", self.remaining()));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError("invalid UTF-8".into()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        let raw = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(le)))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return err(format!("{} trailing bytes", self.remaining()));
        }
        Ok(())
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn read_usize(r: &mut Reader<'_>) -> Result<usize, FrameError> {
    usize::try_from(r.varint()?).map_err(|_| FrameError("index exceeds usize".into()))
}

// ---------------------------------------------------------------------------
// DeviceSpec
// ---------------------------------------------------------------------------

fn put_spec(out: &mut Vec<u8>, spec: &DeviceSpec) {
    put_str(out, &spec.behavior);
    put_f64(out, spec.cfg.ubatt);
    put_f64(out, spec.cfg.pull_up);
    put_f64(out, spec.cfg.low_threshold);
    put_f64(out, spec.cfg.high_threshold);
    put_f64(out, spec.cfg.drive_resistance);
    put_varint(out, spec.dropped_frames.len() as u64);
    for frame in &spec.dropped_frames {
        put_varint(out, u64::from(frame.0));
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<DeviceSpec, FrameError> {
    let behavior = r.str()?;
    let cfg = ElectricalConfig {
        ubatt: r.f64()?,
        pull_up: r.f64()?,
        low_threshold: r.f64()?,
        high_threshold: r.f64()?,
        drive_resistance: r.f64()?,
    };
    let n = r.len()?;
    let mut dropped_frames = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let id = r.varint()?;
        let id = u32::try_from(id).map_err(|_| FrameError("CAN frame id exceeds u32".into()))?;
        dropped_frames.push(CanFrameId(id));
    }
    Ok(DeviceSpec {
        behavior,
        cfg,
        dropped_frames,
    })
}

// ---------------------------------------------------------------------------
// Parent → worker frames
// ---------------------------------------------------------------------------

/// Frames the parent sends to a worker child over its stdin.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ToWorker {
    /// Handshake: protocol magic + version and the campaign's execution
    /// options. Always the first frame on the pipe.
    Hello {
        /// The campaign's execution options, applied to every job.
        exec: ExecOptions,
    },
    /// Interns one test stand under `id`; later `RunTest`/`RunCell` frames
    /// reference it by id. Sent at most once per (worker, stand).
    Stand {
        /// Parent-assigned intern id.
        id: u64,
        /// The stand's canonical text (`write_stand` round-trip).
        text: String,
    },
    /// Interns one generated test script under `id` (XML round-trip).
    Script {
        /// Parent-assigned intern id.
        id: u64,
        /// The script's XML.
        xml: String,
        /// Source-sheet spellings of the script's signal names. The XML
        /// writer canonicalises names to lowercase, so a worker re-parsing
        /// `xml` would plan — and word its diagnostics — with different
        /// bytes than the parent's in-process executors. Shipping the
        /// original spellings lets the worker restore them after parse,
        /// keeping remote results byte-identical to serial.
        names: Vec<String>,
    },
    /// Executes one test-granular job against a fresh device realized from
    /// `spec`.
    RunTest {
        /// Merge-slot index, echoed back in `TestDone`.
        job: usize,
        /// Deterministic cell index (event payloads).
        cell: usize,
        /// Test index within its suite (event payloads).
        test: usize,
        /// Suite name (event payloads).
        suite: String,
        /// Test name (event payloads).
        name: String,
        /// Interned script id.
        script: u64,
        /// Interned stand id.
        stand: u64,
        /// Registry device recipe for the fresh DUT.
        spec: DeviceSpec,
    },
    /// Executes one whole suite×stand cell: the scripts in suite order,
    /// each against its own fresh device realized from `spec`.
    RunCell {
        /// Merge-slot (cell) index, echoed back in `CellDone`.
        cell: usize,
        /// Suite name (event payloads).
        suite: String,
        /// Interned script ids in suite order.
        scripts: Vec<u64>,
        /// Interned stand id.
        stand: u64,
        /// Registry device recipe, one fresh device per test.
        spec: DeviceSpec,
    },
    /// Cooperative cancel fan-out: finish nothing more, exit cleanly.
    Shutdown,
}

impl ToWorker {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ToWorker::Hello { exec } => {
                out.push(0);
                out.extend_from_slice(&MAGIC);
                out.push(VERSION);
                match exec.sample {
                    SampleMode::EndOfStep => out.push(0),
                    SampleMode::Continuous { interval } => {
                        out.push(1);
                        put_varint(&mut out, interval.as_micros());
                    }
                }
                put_bool(&mut out, exec.stop_on_failure);
            }
            ToWorker::Stand { id, text } => {
                out.push(1);
                put_varint(&mut out, *id);
                put_str(&mut out, text);
            }
            ToWorker::Script { id, xml, names } => {
                out.push(2);
                put_varint(&mut out, *id);
                put_str(&mut out, xml);
                put_varint(&mut out, names.len() as u64);
                for name in names {
                    put_str(&mut out, name);
                }
            }
            ToWorker::RunTest {
                job,
                cell,
                test,
                suite,
                name,
                script,
                stand,
                spec,
            } => {
                out.push(3);
                put_varint(&mut out, *job as u64);
                put_varint(&mut out, *cell as u64);
                put_varint(&mut out, *test as u64);
                put_str(&mut out, suite);
                put_str(&mut out, name);
                put_varint(&mut out, *script);
                put_varint(&mut out, *stand);
                put_spec(&mut out, spec);
            }
            ToWorker::RunCell {
                cell,
                suite,
                scripts,
                stand,
                spec,
            } => {
                out.push(4);
                put_varint(&mut out, *cell as u64);
                put_str(&mut out, suite);
                put_varint(&mut out, scripts.len() as u64);
                for id in scripts {
                    put_varint(&mut out, *id);
                }
                put_varint(&mut out, *stand);
                put_spec(&mut out, spec);
            }
            ToWorker::Shutdown => out.push(5),
        }
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(bytes);
        let frame = match r.u8()? {
            0 => {
                if r.take(3)? != MAGIC {
                    return err("bad protocol magic");
                }
                let version = r.u8()?;
                if version != VERSION {
                    return err(format!("protocol version {version}, expected {VERSION}"));
                }
                let sample = match r.u8()? {
                    0 => SampleMode::EndOfStep,
                    1 => SampleMode::Continuous {
                        interval: SimTime::from_micros(r.varint()?),
                    },
                    other => return err(format!("bad sample mode tag {other}")),
                };
                ToWorker::Hello {
                    exec: ExecOptions {
                        sample,
                        stop_on_failure: r.bool()?,
                    },
                }
            }
            1 => ToWorker::Stand {
                id: r.varint()?,
                text: r.str()?,
            },
            2 => {
                let id = r.varint()?;
                let xml = r.str()?;
                let n = r.len()?;
                let mut names = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    names.push(r.str()?);
                }
                ToWorker::Script { id, xml, names }
            }
            3 => ToWorker::RunTest {
                job: read_usize(&mut r)?,
                cell: read_usize(&mut r)?,
                test: read_usize(&mut r)?,
                suite: r.str()?,
                name: r.str()?,
                script: r.varint()?,
                stand: r.varint()?,
                spec: read_spec(&mut r)?,
            },
            4 => {
                let cell = read_usize(&mut r)?;
                let suite = r.str()?;
                let n = r.len()?;
                let mut scripts = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    scripts.push(r.varint()?);
                }
                ToWorker::RunCell {
                    cell,
                    suite,
                    scripts,
                    stand: r.varint()?,
                    spec: read_spec(&mut r)?,
                }
            }
            5 => ToWorker::Shutdown,
            other => return err(format!("bad parent frame tag {other}")),
        };
        r.done()?;
        Ok(frame)
    }
}

// ---------------------------------------------------------------------------
// Worker → parent frames
// ---------------------------------------------------------------------------

/// Frames a worker child sends to the parent over its stdout.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FromWorker {
    /// Handshake acknowledgement (version echoed for diagnostics).
    Ready {
        /// The worker's protocol version.
        version: u8,
    },
    /// A live progress event from the job currently executing; the parent
    /// forwards it verbatim into the campaign's event stream.
    Event(EngineEvent),
    /// Outcome of a `RunTest` frame: the `job` slot plus the outcome as an
    /// encoded single-test cache record (`cache::binary` layout, so the
    /// result round-trips bit-exactly — the same property the cache's
    /// byte-identity conformance pins down).
    TestDone {
        /// Echoed merge-slot index.
        job: usize,
        /// `cache::binary`-encoded record holding the one outcome.
        record: Vec<u8>,
    },
    /// Outcome of a `RunCell` frame: the per-test outcomes (possibly a
    /// truncated prefix, exactly like local cell execution) as an encoded
    /// cache record.
    CellDone {
        /// Echoed cell index.
        cell: usize,
        /// `cache::binary`-encoded record with the cell's outcomes.
        record: Vec<u8>,
    },
    /// Fatal worker-side problem (protocol violation, unrealizable device
    /// spec). The worker exits right after sending it.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Event tags the protocol can carry — the per-job progress variants. The
/// worker never emits the others (`CellCached` needs a cache, worker
/// events come from the parent).
impl FromWorker {
    pub(crate) fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut out = Vec::with_capacity(64);
        match self {
            FromWorker::Ready { version } => {
                out.push(0);
                out.push(*version);
            }
            FromWorker::Event(event) => {
                out.push(1);
                put_event(&mut out, event)?;
            }
            FromWorker::TestDone { job, record } => {
                out.push(2);
                put_varint(&mut out, *job as u64);
                put_bytes(&mut out, record);
            }
            FromWorker::CellDone { cell, record } => {
                out.push(3);
                put_varint(&mut out, *cell as u64);
                put_bytes(&mut out, record);
            }
            FromWorker::Error { message } => {
                out.push(4);
                put_str(&mut out, message);
            }
        }
        Ok(out)
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(bytes);
        let frame = match r.u8()? {
            0 => FromWorker::Ready { version: r.u8()? },
            1 => FromWorker::Event(read_event(&mut r)?),
            2 => FromWorker::TestDone {
                job: read_usize(&mut r)?,
                record: r.bytes()?,
            },
            3 => FromWorker::CellDone {
                cell: read_usize(&mut r)?,
                record: r.bytes()?,
            },
            4 => FromWorker::Error { message: r.str()? },
            other => return err(format!("bad worker frame tag {other}")),
        };
        r.done()?;
        Ok(frame)
    }
}

fn put_event(out: &mut Vec<u8>, event: &EngineEvent) -> Result<(), FrameError> {
    match event {
        EngineEvent::JobStarted { cell, suite, stand } => {
            out.push(0);
            put_varint(out, *cell as u64);
            put_str(out, suite);
            put_str(out, stand);
        }
        EngineEvent::JobFinished {
            cell,
            suite,
            stand,
            status,
            failed,
        } => {
            out.push(1);
            put_varint(out, *cell as u64);
            put_str(out, suite);
            put_str(out, stand);
            put_str(out, status);
            put_bool(out, *failed);
        }
        EngineEvent::TestStarted {
            cell,
            test,
            suite,
            stand,
            name,
        } => {
            out.push(2);
            put_varint(out, *cell as u64);
            put_varint(out, *test as u64);
            put_str(out, suite);
            put_str(out, stand);
            put_str(out, name);
        }
        EngineEvent::TestFinished {
            cell,
            test,
            suite,
            stand,
            name,
            status,
            failed,
            duration,
        } => {
            out.push(3);
            put_varint(out, *cell as u64);
            put_varint(out, *test as u64);
            put_str(out, suite);
            put_str(out, stand);
            put_str(out, name);
            put_str(out, status);
            put_bool(out, *failed);
            let micros = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
            put_varint(out, micros);
        }
        other => {
            return err(format!(
                "event {other:?} is not representable on the worker protocol"
            ))
        }
    }
    Ok(())
}

fn read_event(r: &mut Reader<'_>) -> Result<EngineEvent, FrameError> {
    Ok(match r.u8()? {
        0 => EngineEvent::JobStarted {
            cell: read_usize(r)?,
            suite: r.str()?,
            stand: r.str()?,
        },
        1 => EngineEvent::JobFinished {
            cell: read_usize(r)?,
            suite: r.str()?,
            stand: r.str()?,
            status: r.str()?,
            failed: r.bool()?,
        },
        2 => EngineEvent::TestStarted {
            cell: read_usize(r)?,
            test: read_usize(r)?,
            suite: r.str()?,
            stand: r.str()?,
            name: r.str()?,
        },
        3 => EngineEvent::TestFinished {
            cell: read_usize(r)?,
            test: read_usize(r)?,
            suite: r.str()?,
            stand: r.str()?,
            name: r.str()?,
            status: r.str()?,
            failed: r.bool()?,
            duration: Duration::from_micros(r.varint()?),
        },
        other => return err(format!("bad event tag {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            behavior: "interior_light".into(),
            cfg: ElectricalConfig::default(),
            dropped_frames: vec![CanFrameId(0x2A0), CanFrameId(0x123)],
        }
    }

    #[test]
    fn to_worker_frames_round_trip() {
        let frames = vec![
            ToWorker::Hello {
                exec: ExecOptions {
                    sample: SampleMode::Continuous {
                        interval: SimTime::from_micros(12_500),
                    },
                    stop_on_failure: true,
                },
            },
            ToWorker::Stand {
                id: 3,
                text: "[stand]\nname = HIL-A\n".into(),
            },
            ToWorker::Script {
                id: 9,
                xml: "<testscript name=\"t\"/>".into(),
                names: vec!["INT_ILL".into(), "Ds_Fl".into()],
            },
            ToWorker::RunTest {
                job: 7,
                cell: 2,
                test: 1,
                suite: "lamp".into(),
                name: "night_on".into(),
                script: 9,
                stand: 3,
                spec: spec(),
            },
            ToWorker::RunCell {
                cell: 4,
                suite: "lamp".into(),
                scripts: vec![9, 10, 11],
                stand: 3,
                spec: spec(),
            },
            ToWorker::Shutdown,
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(ToWorker::decode(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn from_worker_frames_round_trip() {
        let frames = vec![
            FromWorker::Ready { version: VERSION },
            FromWorker::Event(EngineEvent::TestStarted {
                cell: 1,
                test: 0,
                suite: "lamp".into(),
                stand: "HIL-A".into(),
                name: "night_on".into(),
            }),
            FromWorker::Event(EngineEvent::TestFinished {
                cell: 1,
                test: 0,
                suite: "lamp".into(),
                stand: "HIL-A".into(),
                name: "night_on".into(),
                status: "PASS".into(),
                failed: false,
                duration: Duration::from_micros(420),
            }),
            FromWorker::Event(EngineEvent::JobStarted {
                cell: 0,
                suite: "lamp".into(),
                stand: "HIL-A".into(),
            }),
            FromWorker::Event(EngineEvent::JobFinished {
                cell: 0,
                suite: "lamp".into(),
                stand: "HIL-A".into(),
                status: "PASS (2P/0F/0E)".into(),
                failed: false,
            }),
            FromWorker::TestDone {
                job: 5,
                record: vec![1, 2, 3],
            },
            FromWorker::CellDone {
                cell: 2,
                record: vec![],
            },
            FromWorker::Error {
                message: "unrealizable spec".into(),
            },
        ];
        for frame in frames {
            let bytes = frame.encode().unwrap();
            assert_eq!(FromWorker::decode(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn hostile_bytes_never_panic() {
        // Truncations of a valid frame at every length.
        let valid = ToWorker::RunTest {
            job: 7,
            cell: 2,
            test: 1,
            suite: "lamp".into(),
            name: "night_on".into(),
            script: 9,
            stand: 3,
            spec: spec(),
        }
        .encode();
        for n in 0..valid.len() {
            let _ = ToWorker::decode(&valid[..n]);
            let _ = FromWorker::decode(&valid[..n]);
        }
        // Bad tags, overlong varints, lying lengths, bad UTF-8.
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![99],
            vec![
                1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
            ],
            vec![1, 0, 0xff],
            vec![1, 0, 2, 0xff, 0xfe],
            vec![0, b'X', b'Y', b'Z', 1, 0, 0],
            vec![0, b'C', b'W', b'P', 99, 0, 0],
            vec![2, 1, 0x85],
            vec![4, 0, 0xff, 0xff, 0x7f],
        ];
        for bytes in &cases {
            let _ = ToWorker::decode(bytes);
            let _ = FromWorker::decode(bytes);
        }
        // Trailing garbage after a valid frame is rejected, not ignored.
        let mut padded = ToWorker::Shutdown.encode();
        padded.push(0);
        assert!(ToWorker::decode(&padded).is_err());
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_before_allocation() {
        let mut stream: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        assert!(read_frame(&mut stream).is_err());
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        let mut torn: &[u8] = &[5, 0];
        assert!(read_frame(&mut torn).is_err());
        let mut short_payload: &[u8] = &[5, 0, 0, 0, 1, 2];
        assert!(read_frame(&mut short_payload).is_err());
    }
}
