//! Distributed execution: ship packaged jobs to `comptest worker`
//! processes.
//!
//! [`RemoteExecutor`] implements the same
//! [`CampaignExecutor`](crate::CampaignExecutor) contract as the serial,
//! pooled and async executors, but runs jobs in **spawned worker
//! processes** connected over stdio with the length-prefixed frame
//! protocol in [`frame`]. The division of labour:
//!
//! * the **parent** plans, packages, admits against the campaign cache
//!   (only misses are shipped), dispatches in plan order with a window of
//!   one in-flight job per worker, forwards worker progress events into
//!   the campaign's event stream, feeds results back into the cache, and
//!   merges outcomes byte-identical to every local executor;
//! * each **worker** ([`worker_main`]) interns stands and scripts once,
//!   realizes a fresh device per test from the shipped
//!   [`DeviceSpec`](comptest_dut::DeviceSpec), and executes through the
//!   same `plan_and_execute` path as local execution.
//!
//! # Robustness
//!
//! * **Worker death** (EOF, decode error, non-zero exit) is detected per
//!   worker; the in-flight job is retried on a surviving or respawned
//!   worker with exponential backoff, counted by the `jobs_retried`
//!   metric. A job whose retries are exhausted is reported in
//!   [`CoreError::JobsLost`](comptest_core::CoreError::JobsLost) **with
//!   its label**, keeping
//!   `jobs_executed + jobs_cached + jobs_cancelled == jobs_planned`
//!   balanced (retries add attempts, not planned jobs).
//! * **Graceful degradation**: jobs whose devices have no registry spec
//!   (custom behaviours, fault-wrapped devices) and campaigns whose
//!   workers cannot spawn at all run **in-process** instead, inside a
//!   panic catch — so a remote campaign never does worse than a local
//!   one.
//! * **Cancel fan-out** is cooperative: once the queue drains, workers
//!   get a `Shutdown` frame, their stdin closes, and a grace window of
//!   polling precedes SIGTERM and finally a hard kill.

pub(crate) mod frame;
mod worker;

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use comptest_core::campaign::{merge_test_outcomes, CampaignCell, TestJobOutcome};
use comptest_core::error::CoreError;
use comptest_dut::DeviceSpec;

use crate::cache::fold_cell;
use crate::campaign::{Campaign, Granularity};
use crate::events::{emit, EngineEvent};
use crate::executor::{
    check_lost, check_verified, collect, fold_cell_slots, outcome_sim_end, outcome_status,
    rescue_cell_strands, rescue_test_strands, CampaignExecutor, JobCtx, JobMsg, PackagedCell,
    PackagedJob, Prepared, Strand,
};
use crate::handle::{CampaignHandle, CampaignOutcome, EventStream};
use crate::obs::{Counter, Gauge, SpanCat};
use frame::{read_frame, write_frame, FromWorker, ToWorker};
pub use worker::{worker_main, HOLD_MS_ENV};

/// The distinct source-sheet spellings of a script's signal names, in
/// first-appearance order. Shipped alongside the script XML (whose writer
/// canonicalises names to lowercase) so the worker can restore them —
/// see [`restore_signal_spellings`].
fn signal_spellings(script: &comptest_script::TestScript) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut names = Vec::new();
    let statements = script
        .init
        .iter()
        .chain(script.steps.iter().flat_map(|s| s.statements.iter()));
    for name in script
        .signals
        .iter()
        .map(|def| &def.name)
        .chain(statements.map(|stmt| &stmt.signal))
    {
        if seen.insert(name.key()) {
            names.push(name.as_str().to_owned());
        }
    }
    names
}

/// Rewrites a re-parsed script's signal names back to the shipped source
/// spellings (keyed case-insensitively), so worker-side planning
/// diagnostics print the exact bytes the in-process executors produce.
/// Unknown spellings are ignored — worst case the lowercase canonical
/// name stays, which is only a wording difference, never a wrong result.
pub(crate) fn restore_signal_spellings(script: &mut comptest_script::TestScript, names: &[String]) {
    use comptest_model::SignalName;
    let by_key: std::collections::HashMap<String, &String> = names
        .iter()
        .map(|name| (name.to_ascii_lowercase(), name))
        .collect();
    let restore = |signal: &mut SignalName| {
        if let Some(spelling) = by_key.get(&signal.key()) {
            if signal.as_str() != spelling.as_str() {
                if let Ok(restored) = SignalName::new(spelling.as_str()) {
                    *signal = restored;
                }
            }
        }
    };
    for def in &mut script.signals {
        restore(&mut def.name);
    }
    for stmt in script.init.iter_mut().chain(
        script
            .steps
            .iter_mut()
            .flat_map(|s| s.statements.iter_mut()),
    ) {
        restore(&mut stmt.signal);
    }
}

/// How long the shutdown sequence polls for a worker to exit voluntarily
/// before escalating to SIGTERM, and again before the hard kill.
const GRACE: Duration = Duration::from_secs(2);

/// Executes campaigns on spawned `comptest worker` processes — see the
/// [module docs](self) for the protocol and robustness rules.
///
/// ```no_run
/// use comptest_engine::{remote::RemoteExecutor, Campaign};
/// # fn demo(campaign: Campaign<'_, '_>) -> Result<(), comptest_core::CoreError> {
/// let executor = RemoteExecutor::new(4);
/// let result = campaign.run(&executor)?;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct RemoteExecutor {
    workers: usize,
    command: Option<Vec<String>>,
    retry_limit: usize,
    backoff: Duration,
    envs: Vec<(String, String)>,
}

impl RemoteExecutor {
    /// An executor targeting `workers` simultaneous worker processes.
    /// Workers are spawned lazily (a fully cached campaign spawns none)
    /// and respawned on death while jobs remain.
    ///
    /// `workers` must be at least `1` — the same rule the CLI enforces for
    /// `--remote-workers`. Debug builds assert on `0`, release builds
    /// clamp to `1`.
    ///
    /// # Panics
    ///
    /// Debug builds panic on `workers == 0`.
    pub fn new(workers: usize) -> Self {
        debug_assert!(
            workers > 0,
            "RemoteExecutor::new(0): at least one worker is required \
             (release builds clamp to 1; the CLI rejects --remote-workers 0 outright)"
        );
        Self {
            workers: workers.max(1),
            command: None,
            retry_limit: 2,
            backoff: Duration::from_millis(25),
            envs: Vec::new(),
        }
    }

    /// Overrides the worker command line (builder style). The default is
    /// `current_exe() worker` — the running binary's own `worker`
    /// subcommand, which is what the `comptest` CLI provides.
    pub fn command(mut self, command: Vec<String>) -> Self {
        self.command = Some(command);
        self
    }

    /// Adds an environment variable to spawned workers (builder style) —
    /// e.g. [`HOLD_MS_ENV`] for tests that need jobs to stay in flight.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Sets how many times one job may be retried after worker deaths
    /// before it is reported lost (builder style; default 2). `0` disables
    /// retry entirely — the first death loses its in-flight job.
    pub fn retry_limit(mut self, retries: usize) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Target number of worker processes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Resolved worker command line, or `None` when the running
    /// executable cannot be determined (the campaign then degrades to
    /// in-process execution).
    fn resolve_command(&self) -> Option<Vec<String>> {
        if let Some(command) = &self.command {
            return (!command.is_empty()).then(|| command.clone());
        }
        let exe = std::env::current_exe().ok()?;
        Some(vec![exe.to_str()?.to_owned(), "worker".to_owned()])
    }

    fn config(&self) -> OrchestratorConfig {
        OrchestratorConfig {
            workers: self.workers,
            command: self.resolve_command(),
            retry_limit: self.retry_limit,
            backoff: self.backoff,
            envs: self.envs.clone(),
        }
    }
}

impl CampaignExecutor for RemoteExecutor {
    fn launch<'a>(&self, campaign: &Campaign<'a, '_>) -> Result<CampaignHandle<'a>, CoreError> {
        let prepared = Prepared::new(campaign)?;
        let ctx = JobCtx::new(campaign, &prepared);
        let (events_tx, events_rx) = mpsc::channel();
        ctx.emit_cache_warnings(&events_tx);
        let lost = Arc::new(Mutex::new(Vec::<String>::new()));
        let cfg = self.config();
        let run_token = ctx.cancel.run_token();
        ctx.obs.gauge_add(Gauge::Workers, cfg.workers as i64);
        let claimed_workers = cfg.workers as i64;
        match campaign.granularity {
            Granularity::Test => {
                let jobs = prepared.package_jobs(campaign.entries);
                let n_jobs = jobs.len();
                let (results_tx, results_rx) = mpsc::channel();
                {
                    let ctx = ctx.clone();
                    let lost = Arc::clone(&lost);
                    std::thread::spawn(move || {
                        Orchestrator::new(cfg, ctx, events_tx, results_tx, lost).run(jobs);
                    });
                }
                let entries = campaign.entries;
                let stands = campaign.stands;
                Ok(CampaignHandle::new(
                    EventStream::new(events_rx),
                    run_token,
                    Box::new(move || {
                        let (mut slots, acknowledged, strands) = collect(results_rx, n_jobs);
                        ctx.obs.gauge_add(Gauge::Workers, -claimed_workers);
                        rescue_test_strands(strands, entries, &ctx, &mut slots);
                        let lost = std::mem::take(&mut *lost.lock().unwrap());
                        if !lost.is_empty() {
                            return Err(CoreError::JobsLost {
                                lost: lost.len(),
                                jobs: lost,
                            });
                        }
                        let (result, cancelled) = merge_test_outcomes(entries, stands, slots);
                        check_lost(cancelled, acknowledged)?;
                        check_verified(&ctx.cache)?;
                        Ok(CampaignOutcome { result, cancelled })
                    }),
                ))
            }
            Granularity::Cell => {
                let cells = prepared.package_cells(campaign.entries);
                let n_cells = cells.len();
                let (results_tx, results_rx) = mpsc::channel();
                {
                    let ctx = ctx.clone();
                    let lost = Arc::clone(&lost);
                    std::thread::spawn(move || {
                        Orchestrator::new(cfg, ctx, events_tx, results_tx, lost).run(cells);
                    });
                }
                let entries = campaign.entries;
                Ok(CampaignHandle::new(
                    EventStream::new(events_rx),
                    run_token,
                    Box::new(move || {
                        let (mut slots, acknowledged, strands) = collect(results_rx, n_cells);
                        ctx.obs.gauge_add(Gauge::Workers, -claimed_workers);
                        rescue_cell_strands(strands, entries, &ctx, &mut slots);
                        let lost = std::mem::take(&mut *lost.lock().unwrap());
                        if !lost.is_empty() {
                            return Err(CoreError::JobsLost {
                                lost: lost.len(),
                                jobs: lost,
                            });
                        }
                        let outcome = fold_cell_slots(slots, acknowledged)?;
                        check_verified(&ctx.cache)?;
                        Ok(outcome)
                    }),
                ))
            }
        }
    }
}

/// Owned orchestrator configuration (the executor stays borrowable).
struct OrchestratorConfig {
    workers: usize,
    command: Option<Vec<String>>,
    retry_limit: usize,
    backoff: Duration,
    envs: Vec<(String, String)>,
}

/// One schedulable unit of remote work — a test-granular job or a whole
/// cell — with the operations the orchestrator needs. Implemented by
/// [`PackagedJob`] and [`PackagedCell`]; the scheduling loop is shared.
trait RemoteUnit: Sized + Send + 'static {
    /// What the merge collects for this granularity.
    type Output: Send + 'static;

    /// `suite::test` / `suite @ stand` label for `JobsLost` attribution.
    fn label(&self) -> String;

    /// Cancel-check plus cache admission at dispatch time; `true` when
    /// the unit resolved without executing.
    fn admit(
        &self,
        ctx: &JobCtx,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<Self::Output>>,
    ) -> bool;

    /// `true` when packaging predicted a hit and built no device; the
    /// unit strands back to the join instead of shipping.
    fn stranded(&self) -> bool;

    fn into_strand(self) -> Strand;

    /// The registry device recipe — `None` for custom/fault-wrapped
    /// devices, which run in-process instead of remotely.
    fn spec(&self) -> Option<DeviceSpec>;

    /// Frames that ship this unit to `conn` (interning anything the
    /// worker has not seen yet).
    fn ship(
        &self,
        spec: DeviceSpec,
        interner: &mut Interner,
        conn: &mut WorkerConn,
    ) -> Vec<ToWorker>;

    /// In-process execution — the degradation path.
    fn run_local(
        self,
        ctx: &JobCtx,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<Self::Output>>,
    );

    /// Consumes the worker's result record: cache store, counters, stop
    /// latch, collector message. A decode failure bubbles up so the
    /// caller treats the worker as dead (and retries the unit).
    fn finish_remote(
        &self,
        record: &[u8],
        wall: Duration,
        ctx: &JobCtx,
        results: &Sender<JobMsg<Self::Output>>,
    ) -> Result<(), String>;
}

impl RemoteUnit for PackagedJob {
    type Output = TestJobOutcome;

    fn label(&self) -> String {
        format!("{}::{}", self.suite, self.name)
    }

    fn admit(
        &self,
        ctx: &JobCtx,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<TestJobOutcome>>,
    ) -> bool {
        if ctx.cancel.is_cancelled() {
            let _ = results.send(JobMsg::Cancelled);
            return true;
        }
        ctx.try_cached_test(self, events, results)
    }

    fn stranded(&self) -> bool {
        self.device.is_none()
    }

    fn into_strand(self) -> Strand {
        Strand::Test(Box::new(self))
    }

    fn spec(&self) -> Option<DeviceSpec> {
        self.device.as_ref().and_then(|d| d.spec())
    }

    fn ship(
        &self,
        spec: DeviceSpec,
        interner: &mut Interner,
        conn: &mut WorkerConn,
    ) -> Vec<ToWorker> {
        let mut frames = Vec::new();
        let stand = interner.stand(&self.stand_name, || {
            comptest_stand::write_stand(&self.stand)
        });
        if conn.sent_stands.insert(stand.id) {
            frames.push(ToWorker::Stand {
                id: stand.id,
                text: stand.payload,
            });
        }
        let script = interner.script(&self.suite, &self.script.name, || self.script.to_xml());
        if conn.sent_scripts.insert(script.id) {
            frames.push(ToWorker::Script {
                id: script.id,
                xml: script.payload,
                names: signal_spellings(&self.script),
            });
        }
        frames.push(ToWorker::RunTest {
            job: self.job,
            cell: self.cell,
            test: self.test,
            suite: self.suite.clone(),
            name: self.name.clone(),
            script: script.id,
            stand: stand.id,
            spec,
        });
        frames
    }

    fn run_local(
        self,
        ctx: &JobCtx,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<TestJobOutcome>>,
    ) {
        crate::executor::run_packaged_test(self, ctx, events, results);
    }

    fn finish_remote(
        &self,
        record: &[u8],
        wall: Duration,
        ctx: &JobCtx,
        results: &Sender<JobMsg<TestJobOutcome>>,
    ) -> Result<(), String> {
        let mut outcomes = worker::decode_outcomes(record)?;
        let outcome = outcomes.pop().ok_or("empty test result record")?;
        if !outcomes.is_empty() {
            return Err("test result record held more than one outcome".into());
        }
        if let Some(runtime) = &ctx.cache {
            runtime.finish_test(self.cell, self.test, &outcome);
        }
        let (status, failed) = outcome_status(&outcome);
        // Spans open and close at receipt: the remote wall time is real,
        // but the parent's trace timeline must stay self-consistent.
        let span = ctx
            .obs
            .span_begin(SpanCat::Test, || format!("{}::{}", self.suite, self.name));
        ctx.obs.span_end(span, || Some(status));
        ctx.obs.inc(Counter::JobsExecuted);
        ctx.obs.inc(Counter::TestsExecuted);
        // Steps ran in the worker, whose recorder dies with it; the step
        // results in the record are the parent's source of truth.
        ctx.obs.add(
            Counter::StepsExecuted,
            count_steps(std::slice::from_ref(&outcome)),
        );
        ctx.obs.test_timing(wall, outcome_sim_end(&outcome));
        if failed && ctx.stop {
            ctx.cancel.trip();
        }
        let _ = results.send(JobMsg::Done(self.job, outcome));
        Ok(())
    }
}

impl RemoteUnit for PackagedCell {
    type Output = CampaignCell;

    fn label(&self) -> String {
        format!("{} @ {}", self.suite, self.stand_name)
    }

    fn admit(
        &self,
        ctx: &JobCtx,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<CampaignCell>>,
    ) -> bool {
        if ctx.cancel.is_cancelled() {
            let _ = results.send(JobMsg::Cancelled);
            return true;
        }
        ctx.try_cached_cell(self, events, results)
    }

    fn stranded(&self) -> bool {
        self.tests.iter().any(|t| t.device.is_none())
    }

    fn into_strand(self) -> Strand {
        Strand::Cell(Box::new(self))
    }

    fn spec(&self) -> Option<DeviceSpec> {
        // All tests of a cell share one entry, hence one device recipe; an
        // empty cell has nothing to execute remotely and runs (trivially)
        // in-process.
        let mut specs = self.tests.iter().map(|t| t.device.as_ref()?.spec());
        let first = specs.next()??;
        for spec in specs {
            if spec.as_ref() != Some(&first) {
                return None;
            }
        }
        Some(first)
    }

    fn ship(
        &self,
        spec: DeviceSpec,
        interner: &mut Interner,
        conn: &mut WorkerConn,
    ) -> Vec<ToWorker> {
        let mut frames = Vec::new();
        let stand = interner.stand(&self.stand_name, || {
            comptest_stand::write_stand(&self.stand)
        });
        if conn.sent_stands.insert(stand.id) {
            frames.push(ToWorker::Stand {
                id: stand.id,
                text: stand.payload,
            });
        }
        let mut scripts = Vec::with_capacity(self.tests.len());
        for test in &self.tests {
            let script = interner.script(&self.suite, &test.script.name, || test.script.to_xml());
            if conn.sent_scripts.insert(script.id) {
                frames.push(ToWorker::Script {
                    id: script.id,
                    xml: script.payload,
                    names: signal_spellings(&test.script),
                });
            }
            scripts.push(script.id);
        }
        frames.push(ToWorker::RunCell {
            cell: self.cell,
            suite: self.suite.clone(),
            scripts,
            stand: stand.id,
            spec,
        });
        frames
    }

    fn run_local(
        self,
        ctx: &JobCtx,
        events: &Sender<EngineEvent>,
        results: &Sender<JobMsg<CampaignCell>>,
    ) {
        crate::executor::run_packaged_cell(self, ctx, events, results);
    }

    fn finish_remote(
        &self,
        record: &[u8],
        wall: Duration,
        ctx: &JobCtx,
        results: &Sender<JobMsg<CampaignCell>>,
    ) -> Result<(), String> {
        let outcomes = worker::decode_outcomes(record)?;
        if outcomes.len() > self.tests.len() {
            return Err("cell result record held more outcomes than tests".into());
        }
        if let Some(runtime) = &ctx.cache {
            runtime.finish_cell(self.cell, &self.suite, &self.stand_name, &outcomes);
        }
        let span = ctx.obs.span_begin(SpanCat::Cell, || {
            format!("{} on {}", self.suite, self.stand_name)
        });
        ctx.obs.inc(Counter::JobsExecuted);
        ctx.obs.add(Counter::TestsExecuted, outcomes.len() as u64);
        ctx.obs.add(Counter::StepsExecuted, count_steps(&outcomes));
        if let Some(last_sim) = outcomes.last().map(outcome_sim_end) {
            ctx.obs.test_timing(wall, last_sim);
        }
        let cell = fold_cell(self.suite.clone(), self.stand_name.clone(), outcomes);
        let failed = !cell.passed();
        ctx.obs.span_end(span, || Some(cell.status()));
        if failed && ctx.stop {
            ctx.cancel.trip();
        }
        let _ = results.send(JobMsg::Done(self.cell, cell));
        Ok(())
    }
}

/// Executed steps carried home in a result record — the parent-side
/// source for `steps_executed` on remote runs (worker recorders are not
/// aggregated).
fn count_steps(outcomes: &[TestJobOutcome]) -> u64 {
    outcomes
        .iter()
        .filter_map(|outcome| outcome.as_ref().ok())
        .map(|result| result.steps.len() as u64)
        .sum()
}

/// A parent-assigned intern id plus the payload to ship when a worker has
/// not seen it yet.
struct Interned {
    id: u64,
    payload: String,
}

/// Campaign-wide intern table: stable ids for stands (by name — campaign
/// validation guarantees uniqueness) and scripts (by suite × test name),
/// with payload text rendered once and reused for every worker.
#[derive(Default)]
struct Interner {
    ids: HashMap<String, u64>,
    payloads: HashMap<u64, String>,
}

impl Interner {
    fn intern(&mut self, key: String, render: impl FnOnce() -> String) -> Interned {
        let next = self.ids.len() as u64;
        let id = *self.ids.entry(key).or_insert(next);
        let payload = self.payloads.entry(id).or_insert_with(render).clone();
        Interned { id, payload }
    }

    fn stand(&mut self, name: &str, render: impl FnOnce() -> String) -> Interned {
        self.intern(format!("stand\u{0}{name}"), render)
    }

    fn script(&mut self, suite: &str, test: &str, render: impl FnOnce() -> String) -> Interned {
        self.intern(format!("script\u{0}{suite}\u{0}{test}"), render)
    }
}

/// What a worker's reader thread reports to the orchestrator.
enum WorkerMsg {
    Frame(usize, FromWorker),
    /// EOF or an undecodable frame — the worker is unusable.
    Dead(usize),
}

/// One live worker process: the child, its stdin, and what it has been
/// sent so far.
struct WorkerConn {
    child: Child,
    stdin: Option<ChildStdin>,
    pid: u32,
    sent_stands: std::collections::HashSet<u64>,
    sent_scripts: std::collections::HashSet<u64>,
}

impl WorkerConn {
    fn write_frames(&mut self, frames: &[ToWorker]) -> std::io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "stdin closed"))?;
        for frame in frames {
            write_frame(stdin, &frame.encode())?;
        }
        Ok(())
    }
}

/// One in-flight dispatch: the unit (kept for retry), its attempt count
/// and the dispatch instant (wall-clock metrics at receipt).
struct InFlight<U> {
    unit: U,
    attempts: usize,
    dispatched: Instant,
}

/// The scheduling loop shared by both granularities. Owns the queue, the
/// worker slots and the channels; runs on its own thread so `launch`
/// returns a live handle immediately.
struct Orchestrator<U: RemoteUnit> {
    cfg: OrchestratorConfig,
    ctx: JobCtx,
    events: Sender<EngineEvent>,
    results: Sender<JobMsg<U::Output>>,
    lost: Arc<Mutex<Vec<String>>>,
    interner: Interner,
    /// Worker slots: `None` until first spawn or after a death.
    slots: Vec<Option<WorkerConn>>,
    inflight: Vec<Option<InFlight<U>>>,
    msg_tx: Sender<WorkerMsg>,
    msg_rx: Receiver<WorkerMsg>,
    spawned: usize,
}

impl<U: RemoteUnit> Orchestrator<U> {
    fn new(
        cfg: OrchestratorConfig,
        ctx: JobCtx,
        events: Sender<EngineEvent>,
        results: Sender<JobMsg<U::Output>>,
        lost: Arc<Mutex<Vec<String>>>,
    ) -> Self {
        let (msg_tx, msg_rx) = mpsc::channel();
        let workers = cfg.workers;
        Self {
            cfg,
            ctx,
            events,
            results,
            lost,
            interner: Interner::default(),
            slots: (0..workers).map(|_| None).collect(),
            inflight: (0..workers).map(|_| None).collect(),
            msg_tx,
            msg_rx,
            spawned: 0,
        }
    }

    /// Hard cap on process spawns across the campaign — deaths trigger
    /// respawns, but a crash-looping worker binary must not fork-bomb.
    fn spawn_budget(&self) -> usize {
        self.cfg.workers * 2 + 2
    }

    fn run(mut self, units: Vec<U>) {
        let mut queue: VecDeque<(U, usize)> = units.into_iter().map(|u| (u, 0)).collect();
        loop {
            self.dispatch_ready(&mut queue);
            if queue.is_empty() && self.inflight.iter().all(Option::is_none) {
                break;
            }
            match self.msg_rx.recv() {
                Ok(WorkerMsg::Frame(slot, frame)) => self.on_frame(slot, frame, &mut queue),
                Ok(WorkerMsg::Dead(slot)) => self.on_death(slot, &mut queue),
                // All reader threads gone while work remains: no workers
                // were ever live. `dispatch_ready` degrades the rest to
                // in-process execution on the next pass.
                Err(_) => {
                    if queue.is_empty() {
                        break;
                    }
                }
            }
        }
        self.shutdown();
    }

    /// Fills every idle worker in plan order. Admission (cancel + cache)
    /// happens here — at dispatch time, not packaging time — so a stop
    /// latch tripped by an earlier result truncates exactly like the
    /// local executors.
    fn dispatch_ready(&mut self, queue: &mut VecDeque<(U, usize)>) {
        while let Some((unit, attempts)) = queue.pop_front() {
            if attempts == 0 && unit.admit(&self.ctx, &self.events, &self.results) {
                continue;
            }
            if unit.stranded() {
                let _ = self.results.send(JobMsg::Stranded(unit.into_strand()));
                continue;
            }
            let Some(spec) = unit.spec() else {
                self.run_local_caught(unit);
                continue;
            };
            match self.idle_worker() {
                Some(slot) => {
                    if let Err(dead_slot) = self.ship_to(slot, &unit, spec) {
                        // The write failed: the worker is dead. Requeue
                        // the unit (the death handler will also run when
                        // the reader reports EOF) and try again.
                        queue.push_front((unit, attempts));
                        self.on_death(dead_slot, queue);
                        continue;
                    }
                    self.inflight[slot] = Some(InFlight {
                        unit,
                        attempts,
                        dispatched: Instant::now(),
                    });
                }
                None if self.live_workers() == 0 => {
                    // Zero workers and none can spawn: degrade the whole
                    // queue to in-process execution.
                    self.run_local_caught(unit);
                }
                None => {
                    // All live workers busy: put the unit back and wait
                    // for a result.
                    queue.push_front((unit, attempts));
                    return;
                }
            }
        }
    }

    fn live_workers(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// An idle live worker's slot — spawning a new process if every live
    /// worker is busy, the target count is not reached and the spawn
    /// budget allows.
    fn idle_worker(&mut self) -> Option<usize> {
        for (i, conn) in self.slots.iter().enumerate() {
            if conn.is_some() && self.inflight[i].is_none() {
                return Some(i);
            }
        }
        if self.spawned >= self.spawn_budget() {
            return None;
        }
        let empty = (0..self.slots.len()).find(|&i| self.slots[i].is_none())?;
        match self.spawn_worker(empty) {
            Ok(()) => Some(empty),
            Err(_) => None,
        }
    }

    fn spawn_worker(&mut self, slot: usize) -> Result<(), ()> {
        let command = self.cfg.command.as_ref().ok_or(())?;
        self.spawned += 1;
        let mut cmd = Command::new(&command[0]);
        cmd.args(&command[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in &self.cfg.envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().map_err(|_| ())?;
        let mut stdin = child.stdin.take().ok_or(())?;
        let stdout = child.stdout.take().ok_or(())?;
        let hello = ToWorker::Hello {
            exec: self.ctx.exec,
        };
        if write_frame(&mut stdin, &hello.encode()).is_err() {
            let _ = child.kill();
            let _ = child.wait();
            return Err(());
        }
        let pid = child.id();
        let msg_tx = self.msg_tx.clone();
        std::thread::spawn(move || {
            let mut stdout = stdout;
            loop {
                match read_frame(&mut stdout) {
                    Ok(Some(payload)) => match FromWorker::decode(&payload) {
                        Ok(frame) => {
                            if msg_tx.send(WorkerMsg::Frame(slot, frame)).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            let _ = msg_tx.send(WorkerMsg::Dead(slot));
                            return;
                        }
                    },
                    Ok(None) | Err(_) => {
                        let _ = msg_tx.send(WorkerMsg::Dead(slot));
                        return;
                    }
                }
            }
        });
        emit(
            &self.events,
            EngineEvent::WorkerSpawned { worker: slot, pid },
        );
        self.slots[slot] = Some(WorkerConn {
            child,
            stdin: Some(stdin),
            pid,
            sent_stands: Default::default(),
            sent_scripts: Default::default(),
        });
        Ok(())
    }

    /// Ships one unit to the worker in `slot`; `Err(slot)` when the pipe
    /// write failed (worker dead).
    fn ship_to(&mut self, slot: usize, unit: &U, spec: DeviceSpec) -> Result<(), usize> {
        let conn = self.slots[slot].as_mut().expect("shipping to empty slot");
        let frames = unit.ship(spec, &mut self.interner, conn);
        conn.write_frames(&frames).map_err(|_| slot)
    }

    fn on_frame(&mut self, slot: usize, frame: FromWorker, queue: &mut VecDeque<(U, usize)>) {
        match frame {
            FromWorker::Ready { .. } => {}
            FromWorker::Event(event) => emit(&self.events, event),
            FromWorker::TestDone { record, .. } | FromWorker::CellDone { record, .. } => {
                let Some(inflight) = self.inflight[slot].take() else {
                    // A result with nothing in flight: protocol breach.
                    self.on_death(slot, queue);
                    return;
                };
                let wall = inflight.dispatched.elapsed();
                match inflight
                    .unit
                    .finish_remote(&record, wall, &self.ctx, &self.results)
                {
                    Ok(()) => {}
                    Err(_) => {
                        // Undecodable result: the worker is lying or
                        // corrupt. Retry the unit elsewhere.
                        self.inflight[slot] = Some(inflight);
                        self.on_death(slot, queue);
                    }
                }
            }
            FromWorker::Error { message } => {
                eprintln!("comptest worker {slot}: {message}");
                self.on_death(slot, queue);
            }
        }
    }

    /// Handles a worker death: reap the child, surface `WorkerLost`, and
    /// retry (with backoff) or report the in-flight unit lost.
    fn on_death(&mut self, slot: usize, queue: &mut VecDeque<(U, usize)>) {
        let Some(mut conn) = self.slots[slot].take() else {
            return;
        };
        drop(conn.stdin.take());
        let _ = conn.child.kill();
        let _ = conn.child.wait();
        emit(
            &self.events,
            EngineEvent::WorkerLost {
                worker: slot,
                pid: conn.pid,
            },
        );
        if let Some(inflight) = self.inflight[slot].take() {
            let attempts = inflight.attempts + 1;
            if attempts <= self.cfg.retry_limit {
                self.ctx.obs.inc(Counter::JobsRetried);
                // Exponential backoff before the retry lands on a
                // surviving (or respawned) worker.
                let exp = u32::try_from(attempts.saturating_sub(1)).unwrap_or(u32::MAX);
                std::thread::sleep(self.cfg.backoff.saturating_mul(1 << exp.min(8)));
                queue.push_front((inflight.unit, attempts));
            } else {
                self.lost.lock().unwrap().push(inflight.unit.label());
            }
        }
    }

    /// In-process degradation inside a panic catch: a panicking DUT model
    /// must surface as a lost job (with its label), never tear down the
    /// orchestrator — the behaviour `catches_lost_jobs` conformance pins.
    fn run_local_caught(&self, unit: U) {
        let label = unit.label();
        let ctx = &self.ctx;
        let events = &self.events;
        let results = &self.results;
        let outcome = catch_unwind(AssertUnwindSafe(|| unit.run_local(ctx, events, results)));
        if outcome.is_err() {
            // Rebalance the gauge the panicking job left claimed.
            ctx.obs.gauge_add(Gauge::InflightJobs, -1);
            self.lost.lock().unwrap().push(label);
        }
    }

    /// Cooperative cancel fan-out / end-of-campaign teardown: `Shutdown`
    /// frame, close stdin, grace window, SIGTERM, hard kill.
    fn shutdown(mut self) {
        for conn in self.slots.iter_mut().filter_map(Option::as_mut) {
            let _ = conn.write_frames(&[ToWorker::Shutdown]);
            drop(conn.stdin.take());
        }
        let deadline = Instant::now() + GRACE;
        loop {
            let mut alive = false;
            for conn in self.slots.iter_mut().filter_map(Option::as_mut) {
                match conn.child.try_wait() {
                    Ok(Some(_)) => {}
                    _ => alive = true,
                }
            }
            if !alive {
                return;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Grace expired: escalate. The engine forbids unsafe code, so
        // SIGTERM goes through the `kill` utility; the hard kill is the
        // portable std fallback.
        for conn in self.slots.iter_mut().filter_map(Option::as_mut) {
            if matches!(conn.child.try_wait(), Ok(Some(_))) {
                continue;
            }
            let _ = Command::new("kill")
                .args(["-TERM", &conn.pid.to_string()])
                .status();
        }
        let term_deadline = Instant::now() + GRACE;
        while Instant::now() < term_deadline {
            if self
                .slots
                .iter_mut()
                .filter_map(Option::as_mut)
                .all(|c| matches!(c.child.try_wait(), Ok(Some(_))))
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        for conn in self.slots.iter_mut().filter_map(Option::as_mut) {
            let _ = conn.child.kill();
            let _ = conn.child.wait();
        }
    }
}
