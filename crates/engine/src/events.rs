//! Live progress events streamed while a campaign runs.

use std::sync::mpsc::Sender;
use std::time::Duration;

/// Live progress events emitted while a campaign runs.
///
/// The variant set depends on the scheduling granularity: cell-granular
/// runs emit [`EngineEvent::JobStarted`] / [`EngineEvent::JobFinished`] per
/// suite×stand cell, test-granular runs emit [`EngineEvent::TestStarted`] /
/// [`EngineEvent::TestFinished`] per single test.
///
/// Marked `#[non_exhaustive]`: future executors (the planned async
/// event-loop engine, campaign caching) will add event kinds, so matches
/// outside this crate need a wildcard arm —
/// `comptest_report::progress::progress_line` renders every variant and is
/// the recommended way to print these.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A worker picked up a cell.
    JobStarted {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
    },
    /// A cell finished (executed or found not runnable).
    JobFinished {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// The cell's short status line (`PASS (3P/0F/0E)`, `NOT RUNNABLE
        /// (…)`).
        status: String,
        /// True when the cell did not fully pass.
        failed: bool,
    },
    /// A worker picked up one test of a cell (test granularity only).
    TestStarted {
        /// Deterministic cell index.
        cell: usize,
        /// Index of the test within its suite.
        test: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// Test name.
        name: String,
    },
    /// One test finished (test granularity only).
    TestFinished {
        /// Deterministic cell index.
        cell: usize,
        /// Index of the test within its suite.
        test: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// Test name.
        name: String,
        /// Short status: the verdict (`PASS`, `FAIL`, `ERROR`) or
        /// `NOT RUNNABLE` for per-test planning failures.
        status: String,
        /// True when the test did not pass.
        failed: bool,
        /// Wall-clock execution time of this test on its worker.
        duration: Duration,
    },
    /// A job was served from the campaign cache instead of executing —
    /// a whole suite×stand cell at cell granularity (`test: None`), a
    /// single test at test granularity (`test: Some(index)`). Replaces the
    /// started/finished pair for that job; a cached failure still trips
    /// `stop_on_first_fail` exactly like an executed one.
    CellCached {
        /// Deterministic cell index.
        cell: usize,
        /// Test index within the suite for test-granular hits; `None`
        /// when the whole cell was served at once.
        test: Option<usize>,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// The short status line of the cached outcome.
        status: String,
    },
    /// A cache entry for a cell existed but could not be decoded
    /// (truncated file, wrong record version, garbage) and was treated as
    /// a miss. Emitted once per affected cell at launch, before any job
    /// runs, so operators can tell a cold cache from a rotting store; the
    /// `cache_corrupt_entries` counter tracks the same condition.
    CellCacheCorrupt {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
    },
    /// The remote executor spawned a worker process (remote executor
    /// only). Emitted once per OS process, including respawns after a
    /// death; `worker` is the stable slot index the process fills.
    WorkerSpawned {
        /// Worker slot index (`0..remote_workers`).
        worker: usize,
        /// OS process id of the spawned `comptest worker` child.
        pid: u32,
    },
    /// A remote worker process died or became unusable (EOF, decode error,
    /// non-zero exit) while the campaign still had work for it (remote
    /// executor only). Any job in flight on it is retried or reported in
    /// [`CoreError::JobsLost`](comptest_core::CoreError::JobsLost).
    WorkerLost {
        /// Worker slot index (`0..remote_workers`).
        worker: usize,
        /// OS process id of the lost child.
        pid: u32,
    },
    /// The campaign is complete.
    ///
    /// Only the deprecated shim entry points emit this terminal marker; in
    /// the builder API the event stream simply ends and
    /// [`CampaignHandle::join`](crate::CampaignHandle::join) returns the
    /// totals as a [`CampaignOutcome`](crate::CampaignOutcome).
    CampaignDone {
        /// Tests passed across the matrix.
        passed: usize,
        /// Tests failed across the matrix.
        failed: usize,
        /// Tests errored across the matrix.
        errored: usize,
        /// Cells that could not be planned.
        not_runnable: usize,
        /// Jobs cancelled before they ran: whole cells at cell
        /// granularity, single tests at test granularity.
        cancelled: usize,
    },
}

/// Sends one event, ignoring a dropped receiver: an abandoned event stream
/// must never fail the campaign.
pub(crate) fn emit(events: &Sender<EngineEvent>, event: EngineEvent) {
    let _ = events.send(event);
}
