//! `comptest-engine` — parallel campaign execution.
//!
//! The campaign matrix (every suite × every stand × its DUT) is the paper's
//! Section-5 evaluation shape, and its cells are independent: component
//! verdicts compose without cross-talk, so the matrix is embarrassingly
//! parallel — and because every test runs against a fresh power-cycled
//! DUT, so are the tests *inside* a cell. This crate turns
//! `comptest-core`'s deterministic job plans into wall-clock speedup at two
//! granularities ([`Granularity`]):
//!
//! * **cell-granular** ([`Granularity::Cell`]): the suite×stand matrix is
//!   sharded into [`CellJob`]s and drained by a scoped pool — the coarse
//!   mode of PR 1, still the default;
//! * **test-granular** ([`Granularity::Test`]): the matrix is sharded into
//!   [`TestJob`]s (one per (entry, stand, test) triple) and drained by a
//!   persistent [`WorkerPool`] that outlives the campaign and can be
//!   reused across successive runs ([`run_campaign_with_pool`]) — the mode
//!   that wins when one large workbook would otherwise bound wall-clock;
//! * workers stream [`EngineEvent`]s over an `mpsc` channel for live
//!   progress (per cell, and per test at test granularity),
//! * finished jobs merge back **in deterministic (cell, test) order**
//!   regardless of completion order, so an N-worker run at either
//!   granularity is cell-for-cell and test-for-test identical to the
//!   serial [`run_campaign`](comptest_core::campaign::run_campaign).
//!
//! # Example
//!
//! ```
//! use comptest_core::campaign::CampaignEntry;
//! use comptest_core::ExecOptions;
//! use comptest_engine::{run_campaign_parallel, EngineOptions};
//! use comptest_sheets::Workbook;
//! use comptest_stand::TestStand;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = Workbook::parse_str("wb.cts", "\
//! [signals]
//! name,    kind,                     direction, init
//! DS_FL,   pin:DS_FL,                input,     Closed
//! NIGHT,   can:0x2A0:0:1,            input,     0
//! INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,
//!
//! [status]
//! status, method,  attribut, var,   nom, min,  max
//! Open,   put_r,   r,        ,      0,   0,    2
//! Closed, put_r,   r,        ,      INF, 5000, INF
//! 0,      put_can, data,     ,      0B,  ,
//! 1,      put_can, data,     ,      1B,  ,
//! Lo,     get_u,   u,        UBATT, 0,   0,    0.3
//! Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1
//!
//! [test night_on]
//! step, dt,  DS_FL, NIGHT, INT_ILL
//! 0,    0.5, Open,  1,     Ho
//! ")?;
//! let stand = TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A)?;
//! let entries = vec![CampaignEntry {
//!     suite: &wb.suite,
//!     device_factory: Box::new(|| {
//!         comptest_dut::ecus::interior_light::device(Default::default())
//!     }),
//! }];
//! let result = run_campaign_parallel(
//!     &entries,
//!     &[&stand],
//!     &EngineOptions::with_workers(4),
//!     &ExecOptions::default(),
//!     None,
//! )?;
//! assert!(result.all_green());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use comptest_core::campaign::{
    execute_script_job, merge_test_outcomes, precheck_entries, run_cell, CampaignCell,
    CampaignEntry, CampaignResult, TestJobOutcome,
};
use comptest_core::error::CoreError;
use comptest_core::exec::ExecOptions;
use comptest_dut::Device;
use comptest_script::TestScript;
use comptest_stand::TestStand;

pub use comptest_core::campaign::{plan_cells, plan_test_jobs, CellJob, TestJob};

/// Scheduling granularity of a parallel campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One job per (suite, stand) cell: a worker runs the whole suite.
    /// Lowest overhead, but one large workbook bounds wall-clock.
    #[default]
    Cell,
    /// One job per (suite, stand, test) triple: a large workbook's tests
    /// spread over all workers, and `stop_on_first_fail` cancels at test
    /// granularity.
    Test,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Cell => "cell",
            Granularity::Test => "test",
        })
    }
}

impl FromStr for Granularity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cell" => Ok(Granularity::Cell),
            "test" => Ok(Granularity::Test),
            other => Err(format!("unknown granularity {other:?} (cell|test)")),
        }
    }
}

/// Engine configuration (`ExecOptions`-style: plain data, `Default` +
/// builders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads draining the job queue. `1` forces strictly serial,
    /// in-order execution — the reference mode for determinism checks.
    /// `0` is treated as `1` everywhere (see [`EngineOptions::effective_workers`]).
    pub workers: usize,
    /// Cancel remaining jobs as soon as one fails (or is not runnable).
    /// At [`Granularity::Cell`] a whole cell is the unit of cancellation;
    /// at [`Granularity::Test`] a single failing test cancels the rest,
    /// and the interrupted cell keeps its finished prefix of tests. Either
    /// way the result stays in deterministic order.
    pub stop_on_first_fail: bool,
    /// Scheduling granularity (default: [`Granularity::Cell`]).
    pub granularity: Granularity,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            stop_on_first_fail: false,
            granularity: Granularity::default(),
        }
    }
}

impl EngineOptions {
    /// Options with an explicit worker count (`0` is clamped to `1`).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Enables early cancellation (builder style).
    pub fn stop_on_first_fail(mut self, stop: bool) -> Self {
        self.stop_on_first_fail = stop;
        self
    }

    /// Sets the scheduling granularity (builder style).
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// The worker count the engine will actually use: `workers`, but never
    /// `0` — a hand-built `EngineOptions { workers: 0, .. }` must not
    /// deadlock a pool with no threads.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Live progress events emitted while a campaign runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A worker picked up a cell.
    JobStarted {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
    },
    /// A cell finished (executed or found not runnable).
    JobFinished {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// The cell's short status line (`PASS (3P/0F/0E)`, `NOT RUNNABLE
        /// (…)`).
        status: String,
        /// True when the cell did not fully pass.
        failed: bool,
    },
    /// A worker picked up one test of a cell ([`Granularity::Test`] only).
    TestStarted {
        /// Deterministic cell index.
        cell: usize,
        /// Index of the test within its suite.
        test: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// Test name.
        name: String,
    },
    /// One test finished ([`Granularity::Test`] only).
    TestFinished {
        /// Deterministic cell index.
        cell: usize,
        /// Index of the test within its suite.
        test: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// Test name.
        name: String,
        /// Short status: the verdict (`PASS`, `FAIL`, `ERROR`) or
        /// `NOT RUNNABLE` for per-test planning failures.
        status: String,
        /// True when the test did not pass.
        failed: bool,
        /// Wall-clock execution time of this test on its worker.
        duration: Duration,
    },
    /// The campaign is complete.
    CampaignDone {
        /// Tests passed across the matrix.
        passed: usize,
        /// Tests failed across the matrix.
        failed: usize,
        /// Tests errored across the matrix.
        errored: usize,
        /// Cells that could not be planned.
        not_runnable: usize,
        /// Jobs cancelled by `stop_on_first_fail` before they ran: whole
        /// cells at [`Granularity::Cell`], single tests at
        /// [`Granularity::Test`].
        cancelled: usize,
    },
}

/// Shared scheduler state: one atomic cursor over the deterministic job
/// list (the "shared queue" — every worker steals the next un-taken job),
/// a cancellation latch, and the merge slots.
struct Shared<'a, 'b> {
    entries: &'a [CampaignEntry<'b>],
    stands: &'a [&'a TestStand],
    jobs: Vec<CellJob>,
    next: AtomicUsize,
    cancel: AtomicBool,
    slots: Mutex<Vec<Option<CampaignCell>>>,
    fatal: Mutex<Option<CoreError>>,
    options: EngineOptions,
    exec: &'a ExecOptions,
}

impl Shared<'_, '_> {
    /// One worker: steal jobs off the shared cursor until the queue drains
    /// or the campaign is cancelled.
    fn work(&self, events: Option<&Sender<EngineEvent>>) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(job) = self.jobs.get(i) else {
                return;
            };
            if self.cancel.load(Ordering::SeqCst) {
                return;
            }
            let entry = &self.entries[job.entry];
            let stand = self.stands[job.stand];
            emit(
                events,
                EngineEvent::JobStarted {
                    cell: job.cell,
                    suite: entry.suite.name.clone(),
                    stand: stand.name().to_owned(),
                },
            );
            match run_cell(entry, stand, self.exec) {
                Ok(cell) => {
                    let failed = !cell.passed();
                    emit(
                        events,
                        EngineEvent::JobFinished {
                            cell: job.cell,
                            suite: cell.suite.clone(),
                            stand: cell.stand.clone(),
                            status: cell.status(),
                            failed,
                        },
                    );
                    self.slots.lock().expect("slot lock")[job.cell] = Some(cell);
                    if failed && self.options.stop_on_first_fail {
                        self.cancel.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                Err(e) => {
                    *self.fatal.lock().expect("fatal lock") = Some(e);
                    self.cancel.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

fn emit(events: Option<&Sender<EngineEvent>>, event: EngineEvent) {
    if let Some(tx) = events {
        // A dropped receiver must never fail the campaign.
        let _ = tx.send(event);
    }
}

/// A boxed unit of work for the [`WorkerPool`].
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool: `workers` threads constructed once, parked on
/// a shared queue, reusable across successive campaigns (replay / watch
/// mode pays thread start-up exactly once). Threads exit when the pool is
/// dropped.
///
/// The pool executes `'static` tasks, so campaign state is packaged per
/// job (generated script, stand, freshly built device) rather than
/// borrowed — that is what lets the pool outlive any single
/// [`run_campaign_with_pool`] call without `unsafe`.
#[derive(Debug)]
pub struct WorkerPool {
    queue: Option<Sender<PoolTask>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (`0` is clamped to `1`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<PoolTask>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the lock only while stealing, not while running.
                    let task = match rx.lock().expect("pool queue lock").recv() {
                        Ok(task) => task,
                        Err(_) => return, // pool dropped
                    };
                    // A panicking task must not kill the thread: the pool is
                    // persistent, and a dead worker would silently shrink
                    // every later campaign (a 1-worker pool would run none of
                    // its jobs at all). The panicked job's outcome is simply
                    // missing, which the merge already reports as cancelled.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                })
            })
            .collect();
        Self {
            queue: Some(tx),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues one task. Tasks run in submission order (each idle worker
    /// steals the oldest queued task).
    fn submit(&self, task: PoolTask) {
        self.queue
            .as_ref()
            .expect("pool queue open while pool is alive")
            .send(task)
            .expect("pool workers alive while pool is alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue wakes every worker with `Err(Disconnected)`.
        self.queue.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One packaged test job: everything a pool worker needs, owned.
struct PackagedJob {
    job: usize,
    cell: usize,
    test: usize,
    suite: String,
    stand_name: String,
    name: String,
    script: Arc<TestScript>,
    stand: Arc<TestStand>,
    device: Device,
}

/// What a packaged job reports back to the collector.
enum JobMsg {
    Done(usize, TestJobOutcome),
    Cancelled,
}

/// Executes one packaged job (worker side): plan against the stand, run
/// against the fresh device, stream per-test events.
fn run_packaged(
    job: PackagedJob,
    exec: &ExecOptions,
    cancel: &AtomicBool,
    stop_on_first_fail: bool,
    events: Option<&Sender<EngineEvent>>,
    results: &Sender<JobMsg>,
) {
    let PackagedJob {
        job,
        cell,
        test,
        suite,
        stand_name,
        name,
        script,
        stand,
        mut device,
    } = job;
    if cancel.load(Ordering::SeqCst) {
        let _ = results.send(JobMsg::Cancelled);
        return;
    }
    emit(
        events,
        EngineEvent::TestStarted {
            cell,
            test,
            suite: suite.clone(),
            stand: stand_name.clone(),
            name: name.clone(),
        },
    );
    let started = Instant::now();
    let outcome = execute_script_job(&script, &stand, &mut device, exec);
    let status = match &outcome {
        Ok(result) => result.verdict().to_string(),
        Err(_) => "NOT RUNNABLE".to_owned(),
    };
    let failed = !matches!(&outcome, Ok(r) if r.passed());
    emit(
        events,
        EngineEvent::TestFinished {
            cell,
            test,
            suite,
            stand: stand_name,
            name,
            status,
            failed,
            duration: started.elapsed(),
        },
    );
    if failed && stop_on_first_fail {
        cancel.store(true, Ordering::SeqCst);
    }
    let _ = results.send(JobMsg::Done(job, outcome));
}

/// Packages the deterministic test-job list: scripts are generated once per
/// (entry, test) and shared across stands, stands are cloned once, and
/// every job gets its own freshly built device (the serial pipeline
/// power-cycles the DUT per test; building up front keeps worker tasks
/// `'static`). The trade-off is deliberate: all devices are live until
/// their jobs run, which is cheap for simulated ECUs — revisit if device
/// construction ever becomes heavy.
fn package_jobs(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
) -> Result<Vec<PackagedJob>, CoreError> {
    let scripts: Vec<Vec<Arc<TestScript>>> = entries
        .iter()
        .map(|e| {
            Ok(comptest_script::generate_all(e.suite)?
                .into_iter()
                .map(Arc::new)
                .collect())
        })
        .collect::<Result<_, CoreError>>()?;
    let stands_owned: Vec<Arc<TestStand>> = stands.iter().map(|s| Arc::new((*s).clone())).collect();

    let counts: Vec<usize> = entries.iter().map(|e| e.suite.tests.len()).collect();
    Ok(plan_test_jobs(&counts, stands.len())
        .into_iter()
        .map(|j| PackagedJob {
            job: j.job,
            cell: j.cell,
            test: j.test,
            suite: entries[j.entry].suite.name.clone(),
            stand_name: stands[j.stand].name().to_owned(),
            name: entries[j.entry].suite.tests[j.test].name.clone(),
            script: Arc::clone(&scripts[j.entry][j.test]),
            stand: Arc::clone(&stands_owned[j.stand]),
            device: entries[j.entry].device_factory.build(),
        })
        .collect())
}

/// Runs a campaign at [`Granularity::Test`] on a caller-provided persistent
/// [`WorkerPool`], so successive campaigns (replay, watch mode) reuse the
/// same threads. The pool's size — not `options.workers` — decides the
/// parallelism; `options.granularity` is ignored (this entry point *is* the
/// test-granular engine).
///
/// The returned [`CampaignResult`] is merged in deterministic (cell, test)
/// order via
/// [`merge_test_outcomes`](comptest_core::campaign::merge_test_outcomes):
/// without cancellation it is byte-identical to the serial
/// [`run_campaign`](comptest_core::campaign::run_campaign).
///
/// `events` receives [`EngineEvent::TestStarted`] /
/// [`EngineEvent::TestFinished`] per test and a final
/// [`EngineEvent::CampaignDone`]; there are no per-cell `JobStarted` /
/// `JobFinished` events at this granularity.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] for invalid suites (checked up front),
/// and [`CoreError::JobsLost`] when jobs vanish without cancellation (a
/// worker died mid-job) — never a silently truncated result.
pub fn run_campaign_with_pool(
    pool: &WorkerPool,
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &EngineOptions,
    exec: &ExecOptions,
    events: Option<&Sender<EngineEvent>>,
) -> Result<CampaignResult, CoreError> {
    // No separate precheck: packaging generates every script up front and
    // surfaces the same first codegen error before any job is submitted.
    let jobs = package_jobs(entries, stands)?;
    let n_jobs = jobs.len();

    let cancel = Arc::new(AtomicBool::new(false));
    let stop = options.stop_on_first_fail;
    let exec = *exec;
    let (results_tx, results_rx): (Sender<JobMsg>, Receiver<JobMsg>) = mpsc::channel();
    for job in jobs {
        let cancel = Arc::clone(&cancel);
        let events = events.cloned();
        let results = results_tx.clone();
        pool.submit(Box::new(move || {
            run_packaged(job, &exec, &cancel, stop, events.as_ref(), &results);
        }));
    }
    drop(results_tx);

    let mut slots: Vec<Option<TestJobOutcome>> = (0..n_jobs).map(|_| None).collect();
    let mut acknowledged_cancels = 0usize;
    for msg in results_rx.iter().take(n_jobs) {
        match msg {
            JobMsg::Done(job, outcome) => slots[job] = Some(outcome),
            JobMsg::Cancelled => acknowledged_cancels += 1,
        }
    }

    let (result, cancelled) = merge_test_outcomes(entries, stands, slots);
    // Every job either reports an outcome or acknowledges cancellation; a
    // slot that is missing *without* an acknowledgement means a worker died
    // mid-job (a panic caught by the pool). Surface it instead of returning
    // a silently truncated — possibly all-green — result, even when
    // `stop_on_first_fail` makes genuine cancellations expected.
    let lost = cancelled.saturating_sub(acknowledged_cancels);
    if lost > 0 {
        return Err(CoreError::JobsLost { lost });
    }
    let (passed, failed, errored, not_runnable) = result.totals();
    emit(
        events,
        EngineEvent::CampaignDone {
            passed,
            failed,
            errored,
            not_runnable,
            cancelled,
        },
    );
    Ok(result)
}

/// Runs the campaign matrix on a worker pool at the granularity selected
/// in [`EngineOptions::granularity`].
///
/// At [`Granularity::Cell`] with `workers == 1` the jobs run strictly in
/// order on the calling thread; with more workers they are sharded over a
/// scoped thread pool. At [`Granularity::Test`] a fresh [`WorkerPool`] is
/// built for the run — construct one yourself and call
/// [`run_campaign_with_pool`] to amortise thread start-up across campaigns.
/// Either way the returned [`CampaignResult`] lists cells in the canonical
/// deterministic order of [`plan_cells`] — byte-identical to the serial
/// [`run_campaign`](comptest_core::campaign::run_campaign) (modulo jobs
/// skipped by `stop_on_first_fail`).
///
/// `events`, when given, receives [`EngineEvent`]s as jobs start and
/// finish (per cell at cell granularity, per test at test granularity),
/// plus a final [`EngineEvent::CampaignDone`] when the campaign completes.
/// No `CampaignDone` is sent when a fatal error aborts the run (the `Err`
/// return carries the outcome instead), so a started job may have no
/// matching `JobFinished`.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] for invalid suites (checked up front) and
/// propagates any non-planning error raised inside a cell.
pub fn run_campaign_parallel(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &EngineOptions,
    exec: &ExecOptions,
    events: Option<&Sender<EngineEvent>>,
) -> Result<CampaignResult, CoreError> {
    if options.granularity == Granularity::Test {
        let pool = WorkerPool::new(options.effective_workers());
        return run_campaign_with_pool(&pool, entries, stands, options, exec, events);
    }
    precheck_entries(entries)?;
    let jobs = plan_cells(entries.len(), stands.len());
    let n_jobs = jobs.len();
    let shared = Shared {
        entries,
        stands,
        jobs,
        next: AtomicUsize::new(0),
        cancel: AtomicBool::new(false),
        slots: Mutex::new((0..n_jobs).map(|_| None).collect()),
        fatal: Mutex::new(None),
        options: *options,
        exec,
    };

    let workers = options.effective_workers().min(n_jobs.max(1));
    if workers <= 1 {
        shared.work(events);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let shared = &shared;
                let events = events.cloned();
                scope.spawn(move || shared.work(events.as_ref()));
            }
        });
    }

    if let Some(e) = shared.fatal.lock().expect("fatal lock").take() {
        return Err(e);
    }

    let slots = shared.slots.into_inner().expect("slot lock");
    let mut result = CampaignResult::default();
    let mut cancelled = 0usize;
    for slot in slots {
        match slot {
            Some(cell) => result.cells.push(cell),
            None => cancelled += 1,
        }
    }
    let (passed, failed, errored, not_runnable) = result.totals();
    emit(
        events,
        EngineEvent::CampaignDone {
            passed,
            failed,
            errored,
            not_runnable,
            cancelled,
        },
    );
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::campaign::run_campaign;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;
    use std::sync::mpsc;

    const WB_PASS: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test day_off]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    /// Same shape but expecting the lamp ON during the day: always fails.
    const WB_FAIL: &str = "\
[suite]
name = broken

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test impossible]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Ho
";

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A).unwrap()
    }

    fn entries(suites: &[comptest_model::TestSuite]) -> Vec<CampaignEntry<'_>> {
        suites
            .iter()
            .map(|suite| CampaignEntry {
                suite,
                device_factory: Box::new(|| interior_light::device(Default::default())),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_cell_for_cell() {
        let suites = vec![
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
        ];
        let stand = stand();
        let stands = [&stand, &stand];
        let serial = run_campaign(&entries(&suites), &stands, &ExecOptions::default()).unwrap();
        for workers in [1, 2, 4, 8] {
            let parallel = run_campaign_parallel(
                &entries(&suites),
                &stands,
                &EngineOptions::with_workers(workers),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert_eq!(parallel, serial, "workers = {workers}");
        }
    }

    #[test]
    fn events_stream_start_finish_done() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        let (tx, rx) = mpsc::channel();
        let result = run_campaign_parallel(
            &entries(&suites),
            &[&stand],
            &EngineOptions::with_workers(2),
            &ExecOptions::default(),
            Some(&tx),
        )
        .unwrap();
        drop(tx);
        let events: Vec<EngineEvent> = rx.into_iter().collect();
        assert!(result.all_green());
        let starts = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::JobStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::JobFinished { failed: false, .. }))
            .count();
        assert_eq!(starts, 1);
        assert_eq!(finishes, 1);
        match events.last() {
            Some(EngineEvent::CampaignDone {
                passed,
                failed,
                cancelled,
                ..
            }) => {
                assert_eq!((*passed, *failed, *cancelled), (2, 0, 0));
            }
            other => panic!("expected CampaignDone last, got {other:?}"),
        }
    }

    #[test]
    fn stop_on_first_fail_cancels_remaining_jobs() {
        // Failing suite first: with one worker, the first cell fails and
        // every later cell is cancelled.
        let suites = vec![
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
        ];
        let stand = stand();
        let stands = [&stand, &stand];
        let result = run_campaign_parallel(
            &entries(&suites),
            &stands,
            &EngineOptions::with_workers(1).stop_on_first_fail(true),
            &ExecOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.cells.len(), 1, "{result}");
        assert!(!result.cells[0].passed());
    }

    /// Pass, fail, pass — exercises per-test cancellation mid-cell.
    const WB_MIXED: &str = "\
[suite]
name = mixed

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test ok_first]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test fails_second]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Ho

[test never_runs]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    #[test]
    fn granularity_parses_and_displays() {
        assert_eq!("cell".parse::<Granularity>().unwrap(), Granularity::Cell);
        assert_eq!("test".parse::<Granularity>().unwrap(), Granularity::Test);
        assert!("suite".parse::<Granularity>().is_err());
        assert_eq!(Granularity::Test.to_string(), "test");
        assert_eq!(Granularity::default(), Granularity::Cell);
    }

    #[test]
    fn zero_workers_is_clamped_everywhere() {
        assert_eq!(EngineOptions::with_workers(0).workers, 1);
        // A hand-built options struct must not deadlock the engine either.
        let options = EngineOptions {
            workers: 0,
            ..EngineOptions::default()
        };
        assert_eq!(options.effective_workers(), 1);
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        for granularity in [Granularity::Cell, Granularity::Test] {
            let result = run_campaign_parallel(
                &entries(&suites),
                &[&stand],
                &options.granularity(granularity),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert!(result.all_green(), "granularity {granularity}");
        }
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|| panic!("task bug")));
        // The single worker must still be alive to run the next task.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(42u8).expect("receiver alive")));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)),
            Ok(42),
            "worker thread died on the panicking task"
        );
    }

    #[test]
    fn test_granular_matches_serial_and_cell_granular() {
        let suites = vec![
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
        ];
        let stand = stand();
        let stands = [&stand, &stand];
        let serial = run_campaign(&entries(&suites), &stands, &ExecOptions::default()).unwrap();
        for workers in [1, 2, 4, 8] {
            let parallel = run_campaign_parallel(
                &entries(&suites),
                &stands,
                &EngineOptions::with_workers(workers).granularity(Granularity::Test),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert_eq!(parallel, serial, "test granular, workers = {workers}");
        }
    }

    #[test]
    fn worker_pool_is_reusable_across_campaigns() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let serial = run_campaign(&entries(&suites), &[&stand], &ExecOptions::default()).unwrap();
        // Two successive campaigns on the same threads (replay mode).
        for round in 0..2 {
            let result = run_campaign_with_pool(
                &pool,
                &entries(&suites),
                &[&stand],
                &EngineOptions::default(),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert_eq!(result, serial, "round {round}");
        }
    }

    #[test]
    fn test_granular_events_cover_every_test() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        let (tx, rx) = mpsc::channel();
        let result = run_campaign_parallel(
            &entries(&suites),
            &[&stand],
            &EngineOptions::with_workers(2).granularity(Granularity::Test),
            &ExecOptions::default(),
            Some(&tx),
        )
        .unwrap();
        drop(tx);
        assert!(result.all_green());
        let events: Vec<EngineEvent> = rx.into_iter().collect();
        let started = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::TestStarted { .. }))
            .count();
        let mut names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::TestFinished {
                    name,
                    failed: false,
                    ..
                } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        names.sort_unstable();
        assert_eq!(started, 2);
        assert_eq!(names, ["day_off", "night_on"]);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, EngineEvent::JobStarted { .. })),
            "no per-cell events at test granularity"
        );
        assert!(matches!(
            events.last(),
            Some(EngineEvent::CampaignDone {
                passed: 2,
                failed: 0,
                cancelled: 0,
                ..
            })
        ));
    }

    #[test]
    fn stop_on_first_fail_cancels_at_test_granularity() {
        let suites = vec![Workbook::parse_str("m.cts", WB_MIXED).unwrap().suite];
        let stand = stand();
        let (tx, rx) = mpsc::channel();
        let result = run_campaign_parallel(
            &entries(&suites),
            &[&stand],
            &EngineOptions::with_workers(1)
                .granularity(Granularity::Test)
                .stop_on_first_fail(true),
            &ExecOptions::default(),
            Some(&tx),
        )
        .unwrap();
        drop(tx);
        // The interrupted cell keeps its finished prefix: the passing test
        // and the failing one, but not the cancelled third.
        assert_eq!(result.cells.len(), 1);
        let suite_result = result.cells[0].outcome.as_ref().unwrap();
        assert_eq!(suite_result.results.len(), 2, "{result}");
        assert_eq!(suite_result.results[1].test, "fails_second");
        match rx.into_iter().last() {
            Some(EngineEvent::CampaignDone {
                passed,
                failed,
                cancelled,
                ..
            }) => assert_eq!((passed, failed, cancelled), (1, 1, 1)),
            other => panic!("expected CampaignDone, got {other:?}"),
        }
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        let result = run_campaign_parallel(
            &entries(&suites),
            &[&stand],
            &EngineOptions::with_workers(64),
            &ExecOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.cells.len(), 1);
        assert!(result.all_green());
    }
}
