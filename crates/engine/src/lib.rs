//! `comptest-engine` — parallel campaign execution.
//!
//! The campaign matrix (every suite × every stand × its DUT) is the paper's
//! Section-5 evaluation shape, and its cells are independent: component
//! verdicts compose without cross-talk, so the matrix is embarrassingly
//! parallel. This crate turns `comptest-core`'s deterministic job plan
//! ([`plan_cells`]) into wall-clock speedup:
//!
//! * the suite×stand matrix is sharded into [`CellJob`]s,
//! * a scoped worker pool (`std::thread::scope`) drains one shared queue,
//! * workers stream [`EngineEvent`]s over an `mpsc` channel for live
//!   progress,
//! * finished cells merge back **in deterministic cell order** regardless
//!   of completion order, so an N-worker run is cell-for-cell identical to
//!   the serial [`run_campaign`](comptest_core::campaign::run_campaign).
//!
//! # Example
//!
//! ```
//! use comptest_core::campaign::CampaignEntry;
//! use comptest_core::ExecOptions;
//! use comptest_engine::{run_campaign_parallel, EngineOptions};
//! use comptest_sheets::Workbook;
//! use comptest_stand::TestStand;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = Workbook::parse_str("wb.cts", "\
//! [signals]
//! name,    kind,                     direction, init
//! DS_FL,   pin:DS_FL,                input,     Closed
//! NIGHT,   can:0x2A0:0:1,            input,     0
//! INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,
//!
//! [status]
//! status, method,  attribut, var,   nom, min,  max
//! Open,   put_r,   r,        ,      0,   0,    2
//! Closed, put_r,   r,        ,      INF, 5000, INF
//! 0,      put_can, data,     ,      0B,  ,
//! 1,      put_can, data,     ,      1B,  ,
//! Lo,     get_u,   u,        UBATT, 0,   0,    0.3
//! Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1
//!
//! [test night_on]
//! step, dt,  DS_FL, NIGHT, INT_ILL
//! 0,    0.5, Open,  1,     Ho
//! ")?;
//! let stand = TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A)?;
//! let entries = vec![CampaignEntry {
//!     suite: &wb.suite,
//!     device_factory: Box::new(|| {
//!         comptest_dut::ecus::interior_light::device(Default::default())
//!     }),
//! }];
//! let result = run_campaign_parallel(
//!     &entries,
//!     &[&stand],
//!     &EngineOptions::with_workers(4),
//!     &ExecOptions::default(),
//!     None,
//! )?;
//! assert!(result.all_green());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use comptest_core::campaign::{
    precheck_entries, run_cell, CampaignCell, CampaignEntry, CampaignResult,
};
use comptest_core::error::CoreError;
use comptest_core::exec::ExecOptions;
use comptest_stand::TestStand;

pub use comptest_core::campaign::{plan_cells, CellJob};

/// Engine configuration (`ExecOptions`-style: plain data, `Default` +
/// builders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads draining the job queue. `1` forces strictly serial,
    /// in-order execution — the reference mode for determinism checks.
    pub workers: usize,
    /// Cancel remaining jobs as soon as one cell fails (or is not
    /// runnable). The result then contains only the cells that finished,
    /// still in deterministic order.
    pub stop_on_first_fail: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            stop_on_first_fail: false,
        }
    }
}

impl EngineOptions {
    /// Options with an explicit worker count (`0` is clamped to `1`).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Enables early cancellation (builder style).
    pub fn stop_on_first_fail(mut self, stop: bool) -> Self {
        self.stop_on_first_fail = stop;
        self
    }
}

/// Live progress events emitted while a campaign runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A worker picked up a cell.
    JobStarted {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
    },
    /// A cell finished (executed or found not runnable).
    JobFinished {
        /// Deterministic cell index.
        cell: usize,
        /// Suite name.
        suite: String,
        /// Stand name.
        stand: String,
        /// The cell's short status line (`PASS (3P/0F/0E)`, `NOT RUNNABLE
        /// (…)`).
        status: String,
        /// True when the cell did not fully pass.
        failed: bool,
    },
    /// The campaign is complete.
    CampaignDone {
        /// Tests passed across the matrix.
        passed: usize,
        /// Tests failed across the matrix.
        failed: usize,
        /// Tests errored across the matrix.
        errored: usize,
        /// Cells that could not be planned.
        not_runnable: usize,
        /// Cells cancelled by `stop_on_first_fail` before they ran.
        cancelled: usize,
    },
}

/// Shared scheduler state: one atomic cursor over the deterministic job
/// list (the "shared queue" — every worker steals the next un-taken job),
/// a cancellation latch, and the merge slots.
struct Shared<'a, 'b> {
    entries: &'a [CampaignEntry<'b>],
    stands: &'a [&'a TestStand],
    jobs: Vec<CellJob>,
    next: AtomicUsize,
    cancel: AtomicBool,
    slots: Mutex<Vec<Option<CampaignCell>>>,
    fatal: Mutex<Option<CoreError>>,
    options: EngineOptions,
    exec: &'a ExecOptions,
}

impl Shared<'_, '_> {
    /// One worker: steal jobs off the shared cursor until the queue drains
    /// or the campaign is cancelled.
    fn work(&self, events: Option<&Sender<EngineEvent>>) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(job) = self.jobs.get(i) else {
                return;
            };
            if self.cancel.load(Ordering::SeqCst) {
                return;
            }
            let entry = &self.entries[job.entry];
            let stand = self.stands[job.stand];
            emit(
                events,
                EngineEvent::JobStarted {
                    cell: job.cell,
                    suite: entry.suite.name.clone(),
                    stand: stand.name().to_owned(),
                },
            );
            match run_cell(entry, stand, self.exec) {
                Ok(cell) => {
                    let failed = !cell.passed();
                    emit(
                        events,
                        EngineEvent::JobFinished {
                            cell: job.cell,
                            suite: cell.suite.clone(),
                            stand: cell.stand.clone(),
                            status: cell.status(),
                            failed,
                        },
                    );
                    self.slots.lock().expect("slot lock")[job.cell] = Some(cell);
                    if failed && self.options.stop_on_first_fail {
                        self.cancel.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                Err(e) => {
                    *self.fatal.lock().expect("fatal lock") = Some(e);
                    self.cancel.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

fn emit(events: Option<&Sender<EngineEvent>>, event: EngineEvent) {
    if let Some(tx) = events {
        // A dropped receiver must never fail the campaign.
        let _ = tx.send(event);
    }
}

/// Runs the campaign matrix on a worker pool.
///
/// With `workers == 1` the jobs run strictly in order on the calling
/// thread; with more workers they are sharded over a scoped thread pool.
/// Either way the returned [`CampaignResult`] lists cells in the canonical
/// deterministic order of [`plan_cells`] — byte-identical to the serial
/// [`run_campaign`](comptest_core::campaign::run_campaign) (modulo cells
/// skipped by `stop_on_first_fail`).
///
/// `events`, when given, receives [`EngineEvent`]s as jobs start and
/// finish, plus a final [`EngineEvent::CampaignDone`] when the campaign
/// completes. No `CampaignDone` is sent when a fatal error aborts the run
/// (the `Err` return carries the outcome instead), so a started job may
/// have no matching `JobFinished`.
///
/// # Errors
///
/// Returns [`CoreError::Codegen`] for invalid suites (checked up front) and
/// propagates any non-planning error raised inside a cell.
pub fn run_campaign_parallel(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &EngineOptions,
    exec: &ExecOptions,
    events: Option<&Sender<EngineEvent>>,
) -> Result<CampaignResult, CoreError> {
    precheck_entries(entries)?;
    let jobs = plan_cells(entries.len(), stands.len());
    let n_jobs = jobs.len();
    let shared = Shared {
        entries,
        stands,
        jobs,
        next: AtomicUsize::new(0),
        cancel: AtomicBool::new(false),
        slots: Mutex::new((0..n_jobs).map(|_| None).collect()),
        fatal: Mutex::new(None),
        options: *options,
        exec,
    };

    let workers = options.workers.clamp(1, n_jobs.max(1));
    if workers <= 1 {
        shared.work(events);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let shared = &shared;
                let events = events.cloned();
                scope.spawn(move || shared.work(events.as_ref()));
            }
        });
    }

    if let Some(e) = shared.fatal.lock().expect("fatal lock").take() {
        return Err(e);
    }

    let slots = shared.slots.into_inner().expect("slot lock");
    let mut result = CampaignResult::default();
    let mut cancelled = 0usize;
    for slot in slots {
        match slot {
            Some(cell) => result.cells.push(cell),
            None => cancelled += 1,
        }
    }
    let (passed, failed, errored, not_runnable) = result.totals();
    emit(
        events,
        EngineEvent::CampaignDone {
            passed,
            failed,
            errored,
            not_runnable,
            cancelled,
        },
    );
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_core::campaign::run_campaign;
    use comptest_dut::ecus::interior_light;
    use comptest_sheets::Workbook;
    use std::sync::mpsc;

    const WB_PASS: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test day_off]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    /// Same shape but expecting the lamp ON during the day: always fails.
    const WB_FAIL: &str = "\
[suite]
name = broken

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test impossible]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Ho
";

    fn stand() -> TestStand {
        TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A).unwrap()
    }

    fn entries(suites: &[comptest_model::TestSuite]) -> Vec<CampaignEntry<'_>> {
        suites
            .iter()
            .map(|suite| CampaignEntry {
                suite,
                device_factory: Box::new(|| interior_light::device(Default::default())),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_cell_for_cell() {
        let suites = vec![
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
        ];
        let stand = stand();
        let stands = [&stand, &stand];
        let serial = run_campaign(&entries(&suites), &stands, &ExecOptions::default()).unwrap();
        for workers in [1, 2, 4, 8] {
            let parallel = run_campaign_parallel(
                &entries(&suites),
                &stands,
                &EngineOptions::with_workers(workers),
                &ExecOptions::default(),
                None,
            )
            .unwrap();
            assert_eq!(parallel, serial, "workers = {workers}");
        }
    }

    #[test]
    fn events_stream_start_finish_done() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        let (tx, rx) = mpsc::channel();
        let result = run_campaign_parallel(
            &entries(&suites),
            &[&stand],
            &EngineOptions::with_workers(2),
            &ExecOptions::default(),
            Some(&tx),
        )
        .unwrap();
        drop(tx);
        let events: Vec<EngineEvent> = rx.into_iter().collect();
        assert!(result.all_green());
        let starts = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::JobStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::JobFinished { failed: false, .. }))
            .count();
        assert_eq!(starts, 1);
        assert_eq!(finishes, 1);
        match events.last() {
            Some(EngineEvent::CampaignDone {
                passed,
                failed,
                cancelled,
                ..
            }) => {
                assert_eq!((*passed, *failed, *cancelled), (2, 0, 0));
            }
            other => panic!("expected CampaignDone last, got {other:?}"),
        }
    }

    #[test]
    fn stop_on_first_fail_cancels_remaining_jobs() {
        // Failing suite first: with one worker, the first cell fails and
        // every later cell is cancelled.
        let suites = vec![
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
        ];
        let stand = stand();
        let stands = [&stand, &stand];
        let result = run_campaign_parallel(
            &entries(&suites),
            &stands,
            &EngineOptions::with_workers(1).stop_on_first_fail(true),
            &ExecOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.cells.len(), 1, "{result}");
        assert!(!result.cells[0].passed());
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let stand = stand();
        let result = run_campaign_parallel(
            &entries(&suites),
            &[&stand],
            &EngineOptions::with_workers(64),
            &ExecOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.cells.len(), 1);
        assert!(result.all_green());
    }
}
