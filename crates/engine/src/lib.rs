//! `comptest-engine` — campaign execution behind one composable API.
//!
//! The campaign matrix (every suite × every stand × its DUT) is the paper's
//! Section-5 evaluation shape, and its cells are independent: component
//! verdicts compose without cross-talk, so the matrix is embarrassingly
//! parallel — and because every test runs against a fresh power-cycled
//! DUT, so are the tests *inside* a cell. This crate turns
//! `comptest-core`'s deterministic job plans into wall-clock speedup
//! through three pieces:
//!
//! * a [`Campaign`] builder describing one run — entries × stands,
//!   [`ExecOptions`], scheduling [`Granularity`], `stop_on_first_fail` and
//!   an optional external [`CancelToken`] — which owns validation (empty
//!   matrices and duplicate stand names are rejected before anything
//!   runs);
//! * a [`CampaignExecutor`] trait with four implementations —
//!   [`SerialExecutor`] (in-order on the calling thread, the determinism
//!   reference), [`PooledExecutor`] (a persistent [`WorkerPool`] that
//!   outlives campaigns and amortises thread start-up across replays),
//!   [`AsyncExecutor`] (an event loop of resumable
//!   [`TestRun`](comptest_core::TestRun)s: thousands of concurrent
//!   simulated stands interleave per OS thread on a sim-time wheel,
//!   optionally sharded across several) and [`RemoteExecutor`] (packaged
//!   jobs shipped to spawned `comptest worker` *processes* over a
//!   length-prefixed stdio frame protocol — see [`remote`]). The trait
//!   contract all four
//!   keep: outcomes merge back in the deterministic plan order (so every
//!   executor, at every worker count / concurrency limit, is
//!   byte-identical to serial), launch surfaces the first codegen error
//!   before any job runs, and cancellation is cooperative — between jobs
//!   on the blocking executors, between *steps* on the async one (a
//!   cancelled campaign abandons in-flight runs at the next step boundary
//!   and counts them into `cancelled`);
//! * a [`CampaignHandle`] returned by [`Campaign::launch`]: a typed
//!   [`EventStream`] of [`EngineEvent`]s, cooperative cancellation via
//!   [`CancelToken`], and a [`CampaignHandle::join`] folding every
//!   worker's outcome back **in deterministic (cell, test) order**, so an
//!   N-worker run at either granularity is byte-identical to serial
//!   execution;
//! * a content-addressed campaign [`cache`]: cells keyed by stable
//!   structural hashes of (suite, stand, DUT config, exec options) —
//!   [`CellKey`], computed in `comptest_core::hash` — with an in-process
//!   [`MemoryCache`] and an on-disk [`DirCache`] (atomic
//!   write-then-rename records — length-prefixed binary by default,
//!   readable-either-way JSON for compatibility, see
//!   [`cache::RecordFormat`]; anything unreadable is a miss).
//!   Installed via [`Campaign::cache`], every executor consults it at job
//!   admission: hits emit [`EngineEvent::CellCached`], merge
//!   byte-identical to a cold run (full results, traces and sim timing
//!   travel in the record), and a cached failure trips
//!   `stop_on_first_fail` exactly like an executed one.
//!   [`Campaign::cache_verify`] is the audit mode: everything re-executes
//!   and [`CampaignHandle::join`] errors with
//!   [`CoreError::CacheMismatch`](comptest_core::CoreError::CacheMismatch)
//!   if any cached outcome diverged. Execution plans are likewise reused:
//!   each (entry, test, stand) triple is planned at most once per
//!   campaign *value* (not per launch), so replay loops and warm runs
//!   never re-plan at admission.
//!
//! # What invalidates the cache
//!
//! [`CacheKeying`] ([`Campaign::cache_keying`], CLI `--cache-key`)
//! selects the invalidation granularity. The default,
//! [`CacheKeying::Footprint`], keys every cell by its recorded dependency
//! footprint — the digest of the cell's resolved execution plans (the
//! exact stand slice the planner allocated) and of the DUT slice its
//! signals route through — so editing one ECU's configuration, fault set
//! or an unrelated stand resource re-executes *only the cells that touch
//! it*; everything else keeps hitting. [`CacheKeying::Full`] restores
//! whole-artifact keying (any change to suite, stand or DUT config
//! invalidates every cell keyed against it). An author-supplied
//! [`Campaign::cache_salt`] (CLI `--cache-salt`) folds into footprint
//! keys so a firmware release can invalidate everything at once, and
//! anything a footprint cannot prove untouched falls back to whole-device
//! hashing — footprint keying is never less safe than full keying. The
//! precise rules, the salt semantics and the record-format details live
//! in [the cache module docs](cache#what-invalidates-the-cache).
//!
//! The PR-1/PR-2 free functions ([`run_campaign_parallel`],
//! [`run_campaign_with_pool`], and `comptest_core`'s serial
//! `run_campaign`) survive as deprecated shims over this API.
//!
//! # Observability
//!
//! The [`obs`] module is the engine's first-class observability layer: a
//! lock-cheap metrics registry (counters, gauges, fixed-bucket
//! histograms, phase timings) plus span tracing with a campaign → cell →
//! test → step hierarchy, recorded identically by all three executors at
//! both granularities. Attach a [`Recorder`] with [`Campaign::recorder`];
//! the default is disabled and costs nothing. Wall-clock readings are
//! **export-only** — never folded into results, cache keys or cache
//! records — so observed and unobserved runs are byte-identical.
//!
//! CLI flags (`comptest campaign`): `--trace-out <path>` writes Chrome
//! trace-event JSON, `--metrics-out <path>` writes the metrics snapshot
//! as JSON, `--metrics` prints the summary tables. Library users call
//! [`Recorder::metrics`] / [`Recorder::chrome_trace_json`] after
//! [`CampaignHandle::join`].
//!
//! **Trace-viewer walkthrough.** Open the `--trace-out` file in
//! <https://ui.perfetto.dev> (or `chrome://tracing`): each worker thread
//! is one named track. The `campaign` span brackets the whole run;
//! `codegen`/`hash`/`cache_preload`/`plan`/`execute`/`report` phase spans
//! show where setup time goes; cell and test spans are *async* (paired
//! begin/end) because on the [`AsyncExecutor`] thousands of them overlap
//! on one track; step spans are the innermost complete slices. Gaps
//! between step spans on a track are scheduler wait — compare executors
//! by how densely they pack the `execute` phase.
//!
//! **Counter glossary** (names as they appear in
//! [`MetricsSnapshot::counters`]):
//!
//! | counter | meaning |
//! |---|---|
//! | `jobs_planned` | schedulable jobs at the configured granularity ([`Campaign::job_count`]) |
//! | `jobs_executed` | jobs that ran to completion (cells at cell granularity, tests at test granularity) |
//! | `jobs_cached` | jobs short-circuited by a cache hit |
//! | `jobs_cancelled` | jobs skipped by `stop_on_first_fail` or a [`CancelToken`] |
//! | `jobs_retried` | extra dispatch attempts after remote worker deaths ([`RemoteExecutor`] only — retries add attempts, not planned jobs, so the balance below still holds) |
//! | `tests_executed` | individual tests driven to a verdict (per job at test granularity, per suite member at cell granularity) |
//! | `steps_executed` | test steps driven through the DUT |
//! | `cache_hits` / `cache_misses` | cache lookups by outcome |
//! | `cache_hits_bin` / `cache_hits_json` | hits by on-disk record format (subsets of `cache_hits`; in-memory hits count only the total) |
//! | `cache_hits_footprint` | admission hits while the campaign keys by [`CacheKeying::Footprint`] (equals `cache_hits` there; `0` under full keying) |
//! | `cells_invalidated` | cells whose preload lookup found no usable record — exactly the cells this run re-executes |
//! | `footprint_bytes` | summed encoded size of the campaign's captured dependency footprints |
//! | `cache_corrupt_entries` | unreadable/undecodable cache records (also emitted as [`EngineEvent::CellCacheCorrupt`] warnings) |
//! | `cache_bytes_read` / `cache_bytes_written` | encoded record bytes moved at preload / by stores — what the `cache_preload` phase cost buys |
//! | `spans_opened` / `spans_closed` | trace spans begun / ended — equal once the campaign joins, even under cancellation |
//! | `worker_busy_micros` | summed wall-clock the workers spent inside steps |
//! | `campaign_wall_micros` | wall-clock from launch to join |
//! | `test_wall_micros_total` / `test_sim_micros_total` | summed wall vs *simulated* test time — their ratio is the sim speed-up |
//!
//! Invariants a joined campaign satisfies: `jobs_executed + jobs_cached
//! == jobs_planned` (without cancellation) and `spans_opened ==
//! spans_closed` (always). One asymmetry to know: at cell granularity the
//! async executor records cell and step spans but no per-test spans or
//! per-test wall timings (tests interleave step-by-step there, so a
//! per-test wall clock would measure scheduling, not work);
//! `tests_executed` still counts every test.
//!
//! # Distributed execution
//!
//! [`RemoteExecutor`] (CLI `--executor remote --remote-workers N`) runs
//! jobs in spawned **worker processes** (`comptest worker`) instead of
//! threads. The parent keeps everything stateful — planning, cache
//! admission (only misses ship), event ordering, result merging — and
//! sends each cache-missing job to a worker as a few length-prefixed
//! binary frames: stand and script text interned once per worker, then a
//! run request carrying the device *recipe*
//! ([`DeviceSpec`](comptest_dut::DeviceSpec)). Workers execute through
//! the same planning/execution path as every local executor and stream
//! progress events plus a result record (the cache's binary codec) back,
//! so merged results stay byte-identical to serial at both granularities
//! and under every cache mode.
//!
//! Failure handling is part of the contract: a worker death
//! ([`EngineEvent::WorkerLost`]) retries the in-flight job on another
//! worker with exponential backoff (counted as `jobs_retried`; bounded by
//! [`RemoteExecutor::retry_limit`]), exhausted retries surface as
//! [`CoreError::JobsLost`](comptest_core::CoreError::JobsLost) *naming
//! the lost jobs*, and campaigns degrade gracefully to in-process
//! execution when workers cannot spawn at all or a device has no
//! shippable recipe (custom behaviours). See the [`remote`] module docs
//! for the frame protocol and the full robustness rules.
//!
//! # Serving campaigns
//!
//! Everything above is per-process; the `comptest-server` crate (re-exported
//! by the facade as `comptest::server`, CLI `comptest serve`) keeps one
//! engine resident and multiplexes many tenants onto it: a single shared
//! [`WorkerPool`] + [`AsyncExecutor`] + [`DirCache`], one [`Campaign`] per
//! submission. Three engine properties make that multiplexing sound, and
//! they are the reason the daemon needs no protocol-level result plumbing:
//!
//! * **byte-identity** — merged results depend only on the campaign value,
//!   never on worker count, interleaving or cache temperature, so a served
//!   verdict equals a local `SerialExecutor` run byte for byte;
//! * **lane fairness** — [`Campaign::lane`] tags a campaign's jobs so the
//!   shared pool round-robins *between* campaigns (the daemon uses the
//!   campaign id as the lane): a 500-cell tenant cannot starve a 5-cell one;
//! * **cooperative cancellation** — an external [`CancelToken`] held per
//!   tenant turns a wire `cancel` frame into the same job-boundary drain a
//!   local Ctrl-C performs, with skipped work counted in
//!   [`CampaignOutcome`]`::cancelled`.
//!
//! The wire protocol is newline-delimited JSON frames (the [`codec`]
//! module's `Value` on both sides). Requests: `submit` (a campaign spec;
//! answers `submitted` with a stable id `c-NNNNNN`), `watch` (replay +
//! live-stream a campaign's [`EngineEvent`]s as `event` frames, ending in
//! `result`), `fetch` (verdict by id: `result` once terminal, `pending`
//! while queued/running), `cancel`, `status` (all tenants), `metrics`
//! (one tenant's [`MetricsSnapshot`] as JSON), `shutdown`, `ping`. The
//! authoritative frame-by-frame reference with field tables lives on
//! `comptest-server`'s `protocol` module.
//!
//! A served campaign walks `queued → running → {done, cancelled, failed}`.
//! Terminal verdicts outlive connections: a watcher killed mid-stream can
//! reconnect and `fetch`/`watch` by id — replay is gapless, so the re-read
//! report is byte-identical to the uninterrupted stream. Each tenant gets
//! its own enabled [`Recorder`], so the `metrics` frame answers with
//! exactly the [`MetricsSnapshot::to_json`] shape documented above —
//! `{"counters": {"jobs_planned": 10, "jobs_executed": 10, ...}}` — and the
//! counter glossary and invariants apply per campaign, not per daemon.
//!
//! # Example
//!
//! ```
//! use comptest_core::campaign::CampaignEntry;
//! use comptest_engine::{Campaign, Granularity, PooledExecutor};
//! use comptest_sheets::Workbook;
//! use comptest_stand::TestStand;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = Workbook::parse_str("wb.cts", "\
//! [signals]
//! name,    kind,                     direction, init
//! DS_FL,   pin:DS_FL,                input,     Closed
//! NIGHT,   can:0x2A0:0:1,            input,     0
//! INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,
//!
//! [status]
//! status, method,  attribut, var,   nom, min,  max
//! Open,   put_r,   r,        ,      0,   0,    2
//! Closed, put_r,   r,        ,      INF, 5000, INF
//! 0,      put_can, data,     ,      0B,  ,
//! 1,      put_can, data,     ,      1B,  ,
//! Lo,     get_u,   u,        UBATT, 0,   0,    0.3
//! Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1
//!
//! [test night_on]
//! step, dt,  DS_FL, NIGHT, INT_ILL
//! 0,    0.5, Open,  1,     Ho
//! ")?;
//! let stand = TestStand::parse_str("a.stand", comptest_core::PAPER_STAND_A)?;
//! let entries = vec![CampaignEntry {
//!     suite: &wb.suite,
//!     device_factory: Box::new(|| {
//!         comptest_dut::ecus::interior_light::device(Default::default())
//!     }),
//! }];
//! let stands = [&stand];
//! let executor = PooledExecutor::new(4);
//! let mut handle = Campaign::new(&entries, &stands)
//!     .granularity(Granularity::Test)
//!     .launch(&executor)?;
//! for event in handle.events() {
//!     // live progress — see comptest_report::progress for rendering
//!     let _ = event;
//! }
//! let outcome = handle.join()?;
//! assert!(outcome.result.all_green());
//! assert_eq!(outcome.cancelled, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_exec;
pub mod cache;
mod campaign;
pub mod codec;
mod events;
mod executor;
mod handle;
pub mod obs;
mod pool;
pub mod remote;

pub use async_exec::AsyncExecutor;
pub use cache::{
    CacheKeying, CacheLookup, CampaignCache, CellRecord, DirCache, LookupInfo, MemoryCache,
    RecordFormat,
};
pub use campaign::{Campaign, Granularity};
pub use events::EngineEvent;
pub use executor::{CampaignExecutor, PooledExecutor, SerialExecutor};
pub use handle::{CampaignHandle, CampaignOutcome, CancelToken, EventStream};
pub use obs::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, PhaseSnapshot, Recorder};
pub use pool::WorkerPool;
pub use remote::{worker_main, RemoteExecutor, HOLD_MS_ENV};

pub use comptest_core::campaign::{plan_cells, plan_test_jobs, CellJob, TestJob};
pub use comptest_core::hash::{CellKey, Footprint, FootprintKey};

use std::sync::mpsc::Sender;

use comptest_core::campaign::{CampaignEntry, CampaignResult};
use comptest_core::error::CoreError;
use comptest_core::exec::ExecOptions;
use comptest_stand::TestStand;

/// Engine configuration for the **deprecated** free-function entry points
/// (`ExecOptions`-style: plain data, `Default` + builders). The builder
/// API spreads these across [`Campaign`] (granularity, stop-on-first-fail)
/// and the executor (worker count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads draining the job queue. `1` forces strictly serial,
    /// in-order execution — the reference mode for determinism checks.
    /// `0` is treated as `1` everywhere (see [`EngineOptions::effective_workers`]).
    pub workers: usize,
    /// Cancel remaining jobs as soon as one fails (or is not runnable).
    /// See [`Campaign::stop_on_first_fail`] for the semantics.
    pub stop_on_first_fail: bool,
    /// Scheduling granularity (default: [`Granularity::Cell`]).
    pub granularity: Granularity,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            stop_on_first_fail: false,
            granularity: Granularity::default(),
        }
    }
}

impl EngineOptions {
    /// Options with an explicit worker count (`0` is clamped to `1`).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Enables early cancellation (builder style).
    pub fn stop_on_first_fail(mut self, stop: bool) -> Self {
        self.stop_on_first_fail = stop;
        self
    }

    /// Sets the scheduling granularity (builder style).
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// The worker count the engine will actually use: `workers`, but never
    /// `0` — a hand-built `EngineOptions { workers: 0, .. }` must not
    /// deadlock a pool with no threads.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Shim body shared by the deprecated entry points: launch on the new API,
/// forward events to the caller's bare channel, synthesize the historical
/// terminal [`EngineEvent::CampaignDone`].
fn shim_run(
    campaign: &Campaign<'_, '_>,
    executor: &dyn CampaignExecutor,
    events: Option<&Sender<EngineEvent>>,
) -> Result<CampaignResult, CoreError> {
    let mut handle = campaign.launch(executor)?;
    let forwarder = events.map(|tx| {
        let stream = handle.events();
        let tx = tx.clone();
        std::thread::spawn(move || {
            for event in stream {
                if tx.send(event).is_err() {
                    break;
                }
            }
        })
    });
    let outcome = handle.join();
    if let Some(thread) = forwarder {
        let _ = thread.join();
    }
    let outcome = outcome?;
    if let Some(tx) = events {
        let (passed, failed, errored, not_runnable) = outcome.result.totals();
        let _ = tx.send(EngineEvent::CampaignDone {
            passed,
            failed,
            errored,
            not_runnable,
            cancelled: outcome.cancelled,
        });
    }
    Ok(outcome.result)
}

/// Runs a campaign at [`Granularity::Test`] on a caller-provided persistent
/// [`WorkerPool`].
///
/// Deprecated shim over the builder API — and stricter than the PR-2
/// original: the campaign is validated first, so empty matrices and
/// duplicate stand names now error instead of running vacuously.
///
/// # Errors
///
/// Everything [`Campaign::launch`] and [`CampaignHandle::join`] raise.
#[deprecated(
    since = "0.1.0",
    note = "use Campaign::new(entries, stands).granularity(Granularity::Test).launch(&pool) — \
            WorkerPool implements CampaignExecutor"
)]
pub fn run_campaign_with_pool(
    pool: &WorkerPool,
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &EngineOptions,
    exec: &ExecOptions,
    events: Option<&Sender<EngineEvent>>,
) -> Result<CampaignResult, CoreError> {
    // As in PR 2: this entry point *is* the test-granular engine, and the
    // pool's size — not `options.workers` — decides the parallelism.
    let campaign = Campaign::new(entries, stands)
        .exec_options(*exec)
        .granularity(Granularity::Test)
        .stop_on_first_fail(options.stop_on_first_fail);
    shim_run(&campaign, pool, events)
}

/// Runs the campaign matrix on a fresh worker pool at the granularity
/// selected in [`EngineOptions::granularity`].
///
/// Deprecated shim over the builder API — and stricter than the PR-1
/// original: the campaign is validated first, so empty matrices and
/// duplicate stand names now error instead of running vacuously.
///
/// # Errors
///
/// Everything [`Campaign::launch`] and [`CampaignHandle::join`] raise.
#[deprecated(
    since = "0.1.0",
    note = "use Campaign::new(entries, stands).launch(&PooledExecutor::new(workers)) instead"
)]
pub fn run_campaign_parallel(
    entries: &[CampaignEntry<'_>],
    stands: &[&TestStand],
    options: &EngineOptions,
    exec: &ExecOptions,
    events: Option<&Sender<EngineEvent>>,
) -> Result<CampaignResult, CoreError> {
    let campaign = Campaign::new(entries, stands)
        .exec_options(*exec)
        .granularity(options.granularity)
        .stop_on_first_fail(options.stop_on_first_fail);
    // As in PR 1: never spawn more threads than there are jobs to drain.
    let workers = options.effective_workers().min(campaign.job_count().max(1));
    shim_run(&campaign, &PooledExecutor::new(workers), events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comptest_sheets::Workbook;
    use std::sync::mpsc;

    const WB_PASS: &str = "\
[suite]
name = lamp

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test night_on]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test day_off]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    /// Same shape but expecting the lamp ON during the day: always fails.
    const WB_FAIL: &str = "\
[suite]
name = broken

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test impossible]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Ho
";

    /// Pass, fail, pass — exercises per-test cancellation mid-cell.
    const WB_MIXED: &str = "\
[suite]
name = mixed

[signals]
name,    kind,                     direction, init
DS_FL,   pin:DS_FL,                input,     Closed
NIGHT,   can:0x2A0:0:1,            input,     0
INT_ILL, pin:INT_ILL_F/INT_ILL_R,  output,

[status]
status, method,  attribut, var,   nom, min,  max
Open,   put_r,   r,        ,      0,   0,    2
Closed, put_r,   r,        ,      INF, 5000, INF
0,      put_can, data,     ,      0B,  ,
1,      put_can, data,     ,      1B,  ,
Lo,     get_u,   u,        UBATT, 0,   0,    0.3
Ho,     get_u,   u,        UBATT, 1,   0.7,  1.1

[test ok_first]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  1,     Ho

[test fails_second]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Ho

[test never_runs]
step, dt,  DS_FL, NIGHT, INT_ILL
0,    0.5, Open,  0,     Lo
";

    /// A stand named `name` with the paper's stand-A resources (distinct
    /// names because campaigns reject duplicate stand ids).
    fn stand_named(name: &str) -> TestStand {
        let text = comptest_core::PAPER_STAND_A.replace("HIL-A", name);
        TestStand::parse_str("a.stand", &text).unwrap()
    }

    fn stand() -> TestStand {
        stand_named("HIL-A")
    }

    fn entries(suites: &[comptest_model::TestSuite]) -> Vec<CampaignEntry<'_>> {
        suites
            .iter()
            .map(|suite| CampaignEntry {
                suite,
                device_factory: Box::new(|| {
                    comptest_dut::ecus::interior_light::device(Default::default())
                }),
            })
            .collect()
    }

    fn suites_pass_fail() -> Vec<comptest_model::TestSuite> {
        vec![
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
        ]
    }

    #[test]
    fn granularity_parses_and_displays() {
        // Valid names.
        assert_eq!("cell".parse::<Granularity>().unwrap(), Granularity::Cell);
        assert_eq!("test".parse::<Granularity>().unwrap(), Granularity::Test);
        // Case handling: parsing is case-insensitive.
        assert_eq!("Cell".parse::<Granularity>().unwrap(), Granularity::Cell);
        assert_eq!("TEST".parse::<Granularity>().unwrap(), Granularity::Test);
        // Invalid names report the accepted set.
        let err = "suite".parse::<Granularity>().unwrap_err();
        assert!(err.contains("\"suite\""), "{err}");
        assert!(err.contains("cell, test"), "{err}");
        assert_eq!(Granularity::Test.to_string(), "test");
        assert_eq!(Granularity::default(), Granularity::Cell);
    }

    #[test]
    fn builder_validation_rejects_bad_campaigns() {
        use comptest_core::campaign::CampaignSpecError;
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let executor = SerialExecutor;

        let no_entries = Campaign::new(&[], &[&stand]).launch(&executor).unwrap_err();
        assert_eq!(no_entries, CampaignSpecError::NoEntries.into());

        let no_stands = Campaign::new(&entries, &[]).launch(&executor).unwrap_err();
        assert_eq!(no_stands, CampaignSpecError::NoStands.into());

        let dup = Campaign::new(&entries, &[&stand, &stand])
            .launch(&executor)
            .unwrap_err();
        assert_eq!(
            dup,
            CampaignSpecError::DuplicateStand {
                name: "HIL-A".into()
            }
            .into()
        );

        // validate() alone catches the same problems without an executor.
        assert!(Campaign::new(&entries, &[]).validate().is_err());
        assert!(Campaign::new(&entries, &[&stand]).validate().is_ok());
    }

    #[test]
    fn serial_and_pooled_executors_agree_cell_for_cell() {
        let suites = suites_pass_fail();
        let entries = entries(&suites);
        let stand_a = stand();
        let stand_b = stand_named("HIL-A2");
        let stands = [&stand_a, &stand_b];
        for granularity in [Granularity::Cell, Granularity::Test] {
            let campaign = Campaign::new(&entries, &stands).granularity(granularity);
            let serial = campaign.run(&SerialExecutor).unwrap();
            for workers in [1usize, 2, 4, 8] {
                let pooled = campaign.run(&PooledExecutor::new(workers)).unwrap();
                assert_eq!(
                    pooled, serial,
                    "granularity {granularity}, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn handle_streams_cell_events_and_joins() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let executor = PooledExecutor::new(2);
        let mut handle = Campaign::new(&entries, &stands).launch(&executor).unwrap();
        let stream = handle.events();
        let collector = std::thread::spawn(move || stream.collect::<Vec<EngineEvent>>());
        let outcome = handle.join().unwrap();
        let events = collector.join().unwrap();
        assert!(outcome.result.all_green());
        assert_eq!(outcome.cancelled, 0);
        let starts = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::JobStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::JobFinished { failed: false, .. }))
            .count();
        assert_eq!((starts, finishes), (1, 1));
        // The builder API has no terminal event; join() carries the totals.
        assert!(!events
            .iter()
            .any(|e| matches!(e, EngineEvent::CampaignDone { .. })));
    }

    #[test]
    fn serial_executor_buffers_events_for_later_draining() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let mut handle = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .launch(&SerialExecutor)
            .unwrap();
        // Single-threaded: drain events first, then join — no deadlock.
        let events: Vec<EngineEvent> = handle.events().collect();
        let started = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::TestStarted { .. }))
            .count();
        assert_eq!(started, 2);
        // A second take yields the empty stream.
        assert_eq!(handle.events().count(), 0);
        assert!(handle.join().unwrap().result.all_green());
    }

    #[test]
    fn stop_on_first_fail_truncates_to_the_same_prefix_everywhere() {
        // Failing suite first: the first cell fails and every later cell is
        // cancelled — identically for the serial executor and a 1-worker
        // pool, at cell granularity.
        let suites = vec![
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
        ];
        let entries = entries(&suites);
        let stand_a = stand();
        let stand_b = stand_named("HIL-A2");
        let stands = [&stand_a, &stand_b];
        let campaign = Campaign::new(&entries, &stands).stop_on_first_fail(true);

        let serial = campaign.launch(&SerialExecutor).unwrap().join().unwrap();
        assert_eq!(serial.result.cells.len(), 1, "{}", serial.result);
        assert!(!serial.result.cells[0].passed());
        assert_eq!(serial.cancelled, 3);

        let pooled = campaign
            .launch(&PooledExecutor::new(1))
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(pooled, serial, "1-worker pool must match serial truncation");
    }

    #[test]
    fn stop_on_first_fail_cancels_at_test_granularity() {
        let suites = vec![Workbook::parse_str("m.cts", WB_MIXED).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let campaign = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .stop_on_first_fail(true);
        for (label, outcome) in [
            ("serial", campaign.run(&SerialExecutor)),
            ("pooled", campaign.run(&PooledExecutor::new(1))),
        ] {
            // The interrupted cell keeps its finished prefix: the passing
            // test and the failing one, but not the cancelled third.
            let result = outcome.unwrap();
            assert_eq!(result.cells.len(), 1, "{label}");
            let suite_result = result.cells[0].outcome.as_ref().unwrap();
            assert_eq!(suite_result.results.len(), 2, "{label}: {result}");
            assert_eq!(suite_result.results[1].test, "fails_second", "{label}");
        }
    }

    #[test]
    fn failed_run_does_not_poison_a_relaunch() {
        // stop_on_first_fail trips a per-run latch, not the campaign's
        // external token: launching the same Campaign again runs everything.
        let suites = vec![Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let campaign = Campaign::new(&entries, &stands).stop_on_first_fail(true);
        let first = campaign.launch(&SerialExecutor).unwrap().join().unwrap();
        assert_eq!(first.result.cells.len(), 1);
        let second = campaign.launch(&SerialExecutor).unwrap().join().unwrap();
        assert_eq!(second, first, "second launch must re-run, not drain");
    }

    #[test]
    fn external_cancel_token_skips_every_job() {
        let suites = suites_pass_fail();
        let entries = entries(&suites);
        let stand = stand();
        let token = CancelToken::new();
        let stands = [&stand];
        let campaign = Campaign::new(&entries, &stands).cancel_token(token.clone());
        token.cancel();
        for (label, outcome) in [
            ("serial", campaign.launch(&SerialExecutor).unwrap().join()),
            (
                "pooled",
                campaign.launch(&PooledExecutor::new(2)).unwrap().join(),
            ),
        ] {
            let outcome = outcome.unwrap();
            assert_eq!(outcome.result.cells.len(), 0, "{label}");
            assert_eq!(outcome.cancelled, 2, "{label}");
        }
    }

    #[test]
    fn handle_cancel_skips_queued_jobs() {
        // Cancel through the handle before the single worker can drain the
        // queue: the outcome must account for every job either way.
        let suites = suites_pass_fail();
        let entries = entries(&suites);
        let stand = stand();
        let executor = PooledExecutor::new(1);
        let stands = [&stand];
        let handle = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .launch(&executor)
            .unwrap();
        handle.cancel();
        assert!(handle.cancel_token().is_cancelled());
        let outcome = handle.join().unwrap();
        let finished: usize = outcome
            .result
            .cells
            .iter()
            .map(|c| c.outcome.as_ref().map_or(1, |r| r.results.len()))
            .sum();
        assert_eq!(finished + outcome.cancelled, 3, "{}", outcome.result);
    }

    #[test]
    fn zero_workers_is_clamped_in_the_option_layers() {
        assert_eq!(EngineOptions::with_workers(0).workers, 1);
        // A hand-built options struct must not deadlock the engine either.
        let options = EngineOptions {
            workers: 0,
            ..EngineOptions::default()
        };
        assert_eq!(options.effective_workers(), 1);
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    /// `PooledExecutor::new(0)` is a caller bug, flagged the same way the
    /// CLI rejects `--workers 0` (the silent clamp survives only as the
    /// release-build safety net). `AsyncExecutor` follows the same policy
    /// for its concurrency and shard counts.
    #[cfg(debug_assertions)]
    mod zero_sizes_debug_assert {
        use super::*;

        #[test]
        #[should_panic(expected = "at least one worker")]
        fn pooled_executor_rejects_zero_workers() {
            let _ = PooledExecutor::new(0);
        }

        #[test]
        #[should_panic(expected = "at least one in-flight run")]
        fn async_executor_rejects_zero_concurrency() {
            let _ = AsyncExecutor::new(0);
        }

        #[test]
        #[should_panic(expected = "at least one shard thread")]
        fn async_executor_rejects_zero_shards() {
            let _ = AsyncExecutor::new(4).sharded(0);
        }
    }

    /// In release builds the constructors clamp instead of asserting, so a
    /// zero-sized executor still cannot deadlock a campaign.
    #[cfg(not(debug_assertions))]
    #[test]
    fn zero_sizes_are_clamped_in_release() {
        assert_eq!(PooledExecutor::new(0).workers(), 1);
        let executor = AsyncExecutor::new(0).sharded(0);
        assert_eq!((executor.concurrency(), executor.shards()), (1, 1));
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let result = Campaign::new(&entries, &[&stand])
            .run(&PooledExecutor::new(0))
            .unwrap();
        assert!(result.all_green());
    }

    #[test]
    fn async_executor_matches_serial_at_both_granularities() {
        let suites = suites_pass_fail();
        let entries = entries(&suites);
        let stand_a = stand();
        let stand_b = stand_named("HIL-A2");
        let stands = [&stand_a, &stand_b];
        for granularity in [Granularity::Cell, Granularity::Test] {
            let campaign = Campaign::new(&entries, &stands).granularity(granularity);
            let serial = campaign.run(&SerialExecutor).unwrap();
            for (concurrency, shards) in [(1, 1), (2, 1), (1024, 1), (2, 2), (1024, 3)] {
                let executor = AsyncExecutor::new(concurrency).sharded(shards);
                assert_eq!(
                    (executor.concurrency(), executor.shards()),
                    (concurrency, shards)
                );
                let outcome = campaign.run(&executor).unwrap();
                assert_eq!(
                    outcome, serial,
                    "granularity {granularity}, concurrency {concurrency}, {shards} shard(s)"
                );
            }
        }
    }

    #[test]
    fn async_executor_streams_test_events() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let mut handle = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .launch(&AsyncExecutor::new(16))
            .unwrap();
        let stream = handle.events();
        let collector = std::thread::spawn(move || stream.collect::<Vec<EngineEvent>>());
        let outcome = handle.join().unwrap();
        let events = collector.join().unwrap();
        assert!(outcome.result.all_green());
        let started = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::TestStarted { .. }))
            .count();
        let finished = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::TestFinished { failed: false, .. }))
            .count();
        assert_eq!((started, finished), (2, 2));
    }

    #[test]
    fn async_stop_on_first_fail_truncates_like_serial_at_concurrency_one() {
        let suites = vec![
            Workbook::parse_str("b.cts", WB_FAIL).unwrap().suite,
            Workbook::parse_str("a.cts", WB_PASS).unwrap().suite,
        ];
        let entries = entries(&suites);
        let stand_a = stand();
        let stand_b = stand_named("HIL-A2");
        let stands = [&stand_a, &stand_b];
        for granularity in [Granularity::Cell, Granularity::Test] {
            let campaign = Campaign::new(&entries, &stands)
                .granularity(granularity)
                .stop_on_first_fail(true);
            let serial = campaign.launch(&SerialExecutor).unwrap().join().unwrap();
            let async_one = campaign
                .launch(&AsyncExecutor::new(1))
                .unwrap()
                .join()
                .unwrap();
            assert_eq!(
                async_one, serial,
                "{granularity}: 1-in-flight async must match serial truncation"
            );
        }
    }

    #[test]
    fn async_cancellation_accounts_for_every_job() {
        // Cancel mid-flight: admitted runs are abandoned at their next step
        // boundary, everything else is skipped — and every planned job is
        // either in the result or counted cancelled, never lost.
        let suites = suites_pass_fail();
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let handle = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .launch(&AsyncExecutor::new(8))
            .unwrap();
        handle.cancel();
        let outcome = handle.join().unwrap();
        let finished: usize = outcome
            .result
            .cells
            .iter()
            .map(|c| c.outcome.as_ref().map_or(1, |r| r.results.len()))
            .sum();
        assert_eq!(finished + outcome.cancelled, 3, "{}", outcome.result);
    }

    #[test]
    fn async_executor_is_reusable_and_object_safe() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        let serial = campaign.run(&SerialExecutor).unwrap();
        let executor: Box<dyn CampaignExecutor> = Box::new(AsyncExecutor::new(64));
        for round in 0..2 {
            assert_eq!(
                campaign.run(executor.as_ref()).unwrap(),
                serial,
                "round {round}"
            );
        }
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|| panic!("task bug")));
        // The single worker must still be alive to run the next task.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(42u8).expect("receiver alive")));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)),
            Ok(42),
            "worker thread died on the panicking task"
        );
    }

    #[test]
    fn executors_are_reusable_across_campaigns() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let campaign = Campaign::new(&entries, &stands).granularity(Granularity::Test);
        let serial = campaign.run(&SerialExecutor).unwrap();
        // Successive campaigns on the same threads (replay mode) — both on
        // the owning executor and on a bare pool.
        let executor = PooledExecutor::with_pool(WorkerPool::new(3));
        assert_eq!(executor.workers(), 3);
        assert_eq!(executor.pool().workers(), 3);
        for round in 0..2 {
            assert_eq!(campaign.run(&executor).unwrap(), serial, "round {round}");
        }
        let pool = WorkerPool::new(2);
        assert_eq!(campaign.run(&pool).unwrap(), serial, "bare pool");
    }

    #[test]
    fn test_granular_events_cover_every_test() {
        let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
        let entries = entries(&suites);
        let stand = stand();
        let stands = [&stand];
        let executor = PooledExecutor::new(2);
        let mut handle = Campaign::new(&entries, &stands)
            .granularity(Granularity::Test)
            .launch(&executor)
            .unwrap();
        let stream = handle.events();
        let collector = std::thread::spawn(move || stream.collect::<Vec<EngineEvent>>());
        let outcome = handle.join().unwrap();
        let events = collector.join().unwrap();
        assert!(outcome.result.all_green());
        let started = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::TestStarted { .. }))
            .count();
        let mut names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::TestFinished {
                    name,
                    failed: false,
                    ..
                } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        names.sort_unstable();
        assert_eq!(started, 2);
        assert_eq!(names, ["day_off", "night_on"]);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, EngineEvent::JobStarted { .. })),
            "no per-cell events at test granularity"
        );
    }

    /// The deprecated entry points are shims over the builder API: same
    /// results, plus the historical synthesized `CampaignDone` event.
    #[allow(deprecated)]
    mod shims {
        use super::*;

        #[test]
        fn run_campaign_parallel_matches_the_builder_api() {
            let suites = suites_pass_fail();
            let entries = entries(&suites);
            let stand_a = stand();
            let stand_b = stand_named("HIL-A2");
            let stands = [&stand_a, &stand_b];
            let reference = Campaign::new(&entries, &stands)
                .run(&SerialExecutor)
                .unwrap();
            for granularity in [Granularity::Cell, Granularity::Test] {
                for workers in [1usize, 4] {
                    let shim = run_campaign_parallel(
                        &entries,
                        &stands,
                        &EngineOptions::with_workers(workers).granularity(granularity),
                        &ExecOptions::default(),
                        None,
                    )
                    .unwrap();
                    assert_eq!(
                        shim, reference,
                        "granularity {granularity}, {workers} workers"
                    );
                }
            }
        }

        #[test]
        fn run_campaign_with_pool_matches_and_reuses_the_pool() {
            let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
            let entries = entries(&suites);
            let stand = stand();
            let reference = Campaign::new(&entries, &[&stand])
                .run(&SerialExecutor)
                .unwrap();
            let pool = WorkerPool::new(3);
            for round in 0..2 {
                let shim = run_campaign_with_pool(
                    &pool,
                    &entries,
                    &[&stand],
                    &EngineOptions::default(),
                    &ExecOptions::default(),
                    None,
                )
                .unwrap();
                assert_eq!(shim, reference, "round {round}");
            }
        }

        #[test]
        fn shims_still_emit_the_terminal_campaign_done_event() {
            let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
            let entries = entries(&suites);
            let stand = stand();
            let (tx, rx) = mpsc::channel();
            let result = run_campaign_parallel(
                &entries,
                &[&stand],
                &EngineOptions::with_workers(2),
                &ExecOptions::default(),
                Some(&tx),
            )
            .unwrap();
            drop(tx);
            assert!(result.all_green());
            let events: Vec<EngineEvent> = rx.into_iter().collect();
            match events.last() {
                Some(EngineEvent::CampaignDone {
                    passed,
                    failed,
                    cancelled,
                    ..
                }) => assert_eq!((*passed, *failed, *cancelled), (2, 0, 0)),
                other => panic!("expected CampaignDone last, got {other:?}"),
            }
        }

        #[test]
        fn shims_validate_like_the_builder() {
            let suites = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
            let entries = entries(&suites);
            let stand = stand();
            // Duplicate stands were silently accepted by the PR-1 engine;
            // the shims now inherit the builder's validation.
            let err = run_campaign_parallel(
                &entries,
                &[&stand, &stand],
                &EngineOptions::default(),
                &ExecOptions::default(),
                None,
            )
            .unwrap_err();
            assert!(matches!(err, CoreError::InvalidCampaign(_)));
        }
    }

    /// Multi-tenant behaviour: the lane-fair pool queue and the additive
    /// gauges that the `comptest serve` daemon relies on when many
    /// campaigns share one [`WorkerPool`] and one [`Recorder`].
    mod multi_tenant {
        use super::*;
        use std::sync::{Arc, Mutex};

        /// With every task queued up front on one worker, the drain order
        /// alternates strictly between the two lanes — no lane waits for
        /// the other to finish.
        #[test]
        fn pool_lanes_interleave_round_robin() {
            let pool = WorkerPool::new(1);
            let (gate_tx, gate_rx) = mpsc::channel::<()>();
            // Park the only worker so the lane queues fill before any
            // task runs.
            pool.submit(move || {
                let _ = gate_rx.recv();
            });
            let order = Arc::new(Mutex::new(Vec::new()));
            for lane in [1u64, 1, 1, 2, 2, 2] {
                let order = Arc::clone(&order);
                pool.submit_to_lane(lane, move || {
                    order.lock().unwrap().push(lane);
                });
            }
            gate_tx.send(()).unwrap();
            // Dropping the pool drains the queue and joins the worker.
            drop(pool);
            assert_eq!(*order.lock().unwrap(), vec![1, 2, 1, 2, 1, 2]);
        }

        /// Two campaigns launched concurrently on one shared pool and one
        /// shared recorder: the job counters balance *summed* across both
        /// and every gauge returns to zero after both join — the
        /// counter-balance contract a multi-campaign `ObsCore` keeps.
        #[test]
        fn shared_recorder_balances_across_concurrent_campaigns() {
            let suites_a = vec![Workbook::parse_str("a.cts", WB_PASS).unwrap().suite];
            let suites_b = suites_pass_fail();
            let entries_a = entries(&suites_a);
            let entries_b = entries(&suites_b);
            let stand_a = stand();
            let stand_b = stand_named("HIL-B");
            let stands_a = [&stand_a];
            let stands_b = [&stand_b];

            let pool = WorkerPool::new(2);
            let obs = Recorder::enabled();
            let c1 = Campaign::new(&entries_a, &stands_a)
                .granularity(Granularity::Test)
                .recorder(obs.clone())
                .lane(1);
            let c2 = Campaign::new(&entries_b, &stands_b)
                .granularity(Granularity::Cell)
                .recorder(obs.clone())
                .lane(2);
            let planned = (c1.job_count() + c2.job_count()) as u64;

            let h1 = c1.launch(&pool).unwrap();
            let h2 = c2.launch(&pool).unwrap();
            let o1 = h1.join().unwrap();
            let o2 = h2.join().unwrap();
            assert!(o1.result.all_green());
            assert!(!o2.result.all_green());

            let m = obs.metrics().unwrap();
            assert_eq!(m.counter("jobs_planned"), planned);
            assert_eq!(
                m.counter("jobs_executed") + m.counter("jobs_cached") + m.counter("jobs_cancelled"),
                m.counter("jobs_planned"),
            );
            assert_eq!(m.counter("spans_opened"), m.counter("spans_closed"));
            for gauge in ["queue_depth", "inflight_jobs", "workers"] {
                assert_eq!(m.gauge(gauge), 0, "gauge {gauge} did not balance");
            }
        }
    }
}
